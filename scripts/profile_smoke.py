#!/usr/bin/env python
"""CI profiling smoke: cost attribution + a live /profile scrape.

Exercises the continuous-profiling path end to end:

1. run one serial SkNN_m query with the sampling profiler armed and a cost
   ledger attributing Paillier ops + wall time to protocol phases; assert
   the phase rows sum to the query wall time (within 1%) and write the
   phase cost table plus the collapsed stacks to ``benchmarks/results/``,
2. spawn the C1/C2 party daemons with ``--metrics-listen`` *and*
   ``--profile``, run a distributed SkNN_m query while scraping C1's
   ``/profile?seconds=N`` endpoint, and assert the capture contains a
   protocol frame,
3. assert the distributed report carries C2-attributed cost rows whose
   operation counts match the stitched run stats,
4. write the scraped collapsed stacks plus a JSON summary so CI uploads
   them as artifacts.

Exit code 0 on success; any assertion failure is a CI failure.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request
from pathlib import Path
from random import Random

from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_secure import SkNNSecure
from repro.crypto.paillier import generate_keypair
from repro.db.datasets import synthetic_uniform
from repro.telemetry.profiling import SamplingProfiler, format_cost_table
from repro.transport.supervisor import LocalSupervisor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: the serial phase rows must sum to the query wall time within this.
SUM_TOLERANCE = 0.01


def serial_profile() -> dict:
    """One serial SkNN_m query under the profiler; returns summary fields."""
    keypair = generate_keypair(256, Random(5150))
    table = synthetic_uniform(n_records=8, dimensions=2, distance_bits=7,
                              seed=5)
    owner = DataOwner(table, keypair=keypair, rng=Random(1))
    cloud = FederatedCloud.deploy(keypair, rng=Random(2))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, 2, rng=Random(3))
    protocol = SkNNSecure(cloud, distance_bits=7)

    with SamplingProfiler() as profiler:
        protocol.run_with_report(client.encrypt_query([3, 4]), 2,
                                 distance_bits=7)
        collapsed = profiler.collapsed()
    report = protocol.last_report
    rows = report.cost_breakdown
    assert rows, "serial query produced no cost rows"
    total = sum(row["seconds"] for row in rows)
    wall = report.wall_time_seconds
    assert abs(total - wall) <= SUM_TOLERANCE * wall, (
        f"phase seconds {total:.4f} != wall {wall:.4f} within "
        f"{SUM_TOLERANCE:.0%}")
    assert {row["party"] for row in rows} == {"C1", "C2"}, (
        "serial run must attribute phases to both parties")
    assert collapsed.strip(), "profiler captured no stacks during the query"
    assert "run_with_report" in collapsed or "sknn" in collapsed.lower(), (
        "collapsed stacks contain no protocol frame")

    table_text = format_cost_table(rows)
    print("serial SkNN_m cost breakdown:")
    print(table_text, end="")
    (RESULTS_DIR / "profile_cost_table.txt").write_text(
        table_text, encoding="utf-8")
    (RESULTS_DIR / "profile_sample.collapsed").write_text(
        collapsed, encoding="utf-8")
    return {"serial_phase_rows": len(rows),
            "serial_wall_s": wall,
            "serial_phase_sum_s": total,
            "serial_profile_samples": len(collapsed.splitlines())}


def distributed_profile() -> dict:
    """A distributed query while C1's /profile endpoint is being scraped."""
    dataset = synthetic_uniform(n_records=8, dimensions=2, distance_bits=7,
                                seed=9)
    owner = DataOwner(dataset, key_size=256, rng=Random(20140709))

    with LocalSupervisor(metrics=True, profile=True) as supervisor:
        remote = supervisor.provision_from_owner(owner, seed=17)
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(18))
        outcome: dict = {}

        def run_query() -> None:
            outcome["result"] = remote.query(
                client.encrypt_query([3, 4]), 2, mode="secure")

        worker = threading.Thread(target=run_query)
        worker.start()
        address = remote.stats()["c1"]["metrics_address"]
        with urllib.request.urlopen(f"{address}/profile?seconds=2",
                                    timeout=30) as response:
            assert response.status == 200, (
                f"/profile returned {response.status}")
            collapsed = response.read().decode("utf-8")
        worker.join(timeout=120)
        assert "result" in outcome, "distributed query did not finish"
        shares, report = outcome["result"]
        neighbors = client.reconstruct(shares)
        assert len(neighbors) == 2, "SkNN_m must return k records"

        assert collapsed.strip(), "/profile capture is empty"
        protocol_frames = [line for line in collapsed.splitlines()
                           if "daemon" in line or "protocol" in line
                           or "sknn" in line.lower()]
        assert protocol_frames, (
            "no protocol frame in the /profile capture taken during a query")
        (RESULTS_DIR / "profile_c1.collapsed").write_text(
            collapsed, encoding="utf-8")

        rows = report.cost_breakdown
        c2_rows = [row for row in rows if row["party"] == "C2"]
        assert c2_rows, "distributed report carries no C2 cost rows"
        c2_decryptions = sum(row["ops"].get("decryptions", 0)
                             for row in c2_rows)
        assert c2_decryptions == report.stats.c2_decryptions, (
            f"C2 ledger decryptions {c2_decryptions} != stitched stats "
            f"{report.stats.c2_decryptions}")
        print(f"/profile capture: {len(collapsed.splitlines())} stacks, "
              f"{len(protocol_frames)} protocol frames; "
              f"{len(c2_rows)} C2 cost rows "
              f"({c2_decryptions} decryptions)")
        return {"profile_stacks": len(collapsed.splitlines()),
                "protocol_frames": len(protocol_frames),
                "c2_cost_rows": len(c2_rows),
                "c2_ledger_decryptions": c2_decryptions}


def main() -> int:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    summary = serial_profile()
    summary.update(distributed_profile())
    (RESULTS_DIR / "profile_smoke.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print("profile smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
