#!/usr/bin/env python
"""CI telemetry smoke: two live daemons, one query, a real /metrics scrape.

Exercises the full observability path end to end:

1. spawn the C1/C2 party daemons with ``--metrics-listen 127.0.0.1:0``,
2. provision them and run one distributed SkNN_m query,
3. scrape both daemons' ``/metrics`` HTTP endpoints and assert the key
   series are present and nonzero,
4. assert the query produced a single stitched trace with spans from both
   clouds and nonzero C2 operation counts,
5. write the scraped exposition plus a JSON summary to
   ``benchmarks/results/`` so CI uploads them as artifacts.

Exit code 0 on success; any assertion failure is a CI failure.
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path
from random import Random

from repro.analysis.reporting import trace_timeline
from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.transport.supervisor import LocalSupervisor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: series that must be present and nonzero after one query, per daemon role.
REQUIRED_SERIES = {
    "c1": ("repro_queries_total", "repro_query_seconds_count"),
    "c2": ("repro_p2_steps_total",),
}


def scrape(url: str) -> str:
    with urllib.request.urlopen(url + "/metrics", timeout=10) as response:
        assert response.status == 200, f"{url}/metrics returned {response.status}"
        return response.read().decode("utf-8")


def series_total(exposition: str, name: str) -> float:
    """Sum every sample of one family in Prometheus text format."""
    total = 0.0
    for line in exposition.splitlines():
        if line.startswith("#"):
            continue
        sample, _, value = line.rpartition(" ")
        if sample == name or sample.startswith(name + "{"):
            total += float(value)
    return total


def main() -> int:
    dataset = synthetic_uniform(n_records=10, dimensions=2, distance_bits=7,
                                seed=9)
    owner = DataOwner(dataset, key_size=256, rng=Random(20140709))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    with LocalSupervisor(metrics=True) as supervisor:
        remote = supervisor.provision_from_owner(owner, seed=17)
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(18))
        shares, report = remote.query(client.encrypt_query([3, 4]), 2,
                                      mode="secure")
        neighbors = client.reconstruct(shares)
        assert len(neighbors) == 2, "SkNN_m must return k records"

        # -- stitched trace + C2 accounting ---------------------------------
        assert report is not None and report.trace, "query must carry a trace"
        spans = report.trace["spans"]
        parties = {span["party"] for span in spans}
        assert parties == {"C1", "C2"}, f"trace is not stitched: {parties}"
        assert {s["trace_id"] for s in spans} == {report.trace["trace_id"]}
        assert report.stats.c2_decryptions > 0, "C2 decryptions unaccounted"
        assert report.stats.c2_encryptions > 0, "C2 encryptions unaccounted"
        print(f"stitched trace: {len(spans)} spans from {sorted(parties)}, "
              f"c2_ops=({report.stats.c2_encryptions} enc, "
              f"{report.stats.c2_decryptions} dec, "
              f"{report.stats.c2_exponentiations} exp)")
        print(trace_timeline(report.trace))

        # -- live /metrics scrape -------------------------------------------
        stats = remote.stats()
        summary: dict = {"trace_spans": len(spans),
                         "c2_decryptions": report.stats.c2_decryptions,
                         "metrics": {}}
        for role in ("c1", "c2"):
            address = stats[role].get("metrics_address")
            assert address, f"{role} daemon reported no metrics listener"
            exposition = scrape(address)
            (RESULTS_DIR / f"telemetry_{role}.prom").write_text(
                exposition, encoding="utf-8")
            for name in REQUIRED_SERIES[role]:
                total = series_total(exposition, name)
                assert total > 0, (
                    f"{role}: series {name} is missing or zero after a query")
                summary["metrics"][f"{role}.{name}"] = total
                print(f"{role} {name} = {total:g}")

    (RESULTS_DIR / "telemetry_smoke.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print("telemetry smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
