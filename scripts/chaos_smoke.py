#!/usr/bin/env python
"""CI chaos smoke: two live daemons under seeded faults, one correct answer.

Exercises the resilience layer end to end against real OS processes:

1. spawn the C1/C2 party daemons with a short ``--io-deadline``,
2. route C1's peer link through a :class:`ChaosProxy` injecting seeded
   frame drops on both directions of the C1<->C2 protocol stream,
3. run a distributed SkNN_m query through the faults and assert the answer
   equals the plaintext oracle (bit-identical recovery, not approximation),
4. SIGKILL the C2 daemon mid-session, restart it via the supervisor, and
   run the second query — the client's idempotent retry layer must
   re-provision and recover transparently,
5. assert the retry/chaos/restart activity is visible in the telemetry
   registry (``repro_retries_total`` etc.), and
6. write the chaos event log plus a JSON summary to
   ``benchmarks/results/`` so CI uploads them as artifacts.

Exit code 0 on success; any assertion failure is a CI failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from random import Random

from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.resilience import ChaosProxy, ChaosSchedule, RetryPolicy
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.client import RemoteCloud
from repro.transport.supervisor import LocalSupervisor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

KEY_BITS = 256
QUERIES = ([3, 4], [6, 1])
K = 2
IO_DEADLINE = 5.0
#: default drop-schedule seed; the nightly chaos workflow passes a
#: randomized ``--seed`` so every night exercises a fresh fault placement
#: (the seed lands in chaos_smoke.json, so any failure replays exactly).
DEFAULT_SEED = 1401


def counter_total(name: str) -> float:
    entry = telemetry_metrics.get_registry().snapshot().get(name)
    return sum(entry["values"].values()) if entry else 0.0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="chaos drop-schedule seed (default: "
                             f"{DEFAULT_SEED}; the nightly job randomizes "
                             "it and the value is stamped into "
                             "chaos_smoke.json for exact replay)")
    args = parser.parse_args(argv)
    seed = args.seed
    print(f"chaos smoke: seed={seed}")
    dataset = synthetic_uniform(n_records=10, dimensions=2, distance_bits=7,
                                seed=5)
    owner = DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140709))
    oracle = LinearScanKNN(dataset)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()

    with LocalSupervisor(io_deadline=IO_DEADLINE) as supervisor:
        # Frame 0 in each direction is the provisioning hello (not retried);
        # the seeded drops land anywhere after it.
        forward = ChaosSchedule.from_seed(seed, window=16, drops=1,
                                          first_frame=2)
        backward = ChaosSchedule.from_seed(seed + 1, window=16, drops=1,
                                           first_frame=2)
        with ChaosProxy(supervisor.addresses["c2"], forward=forward,
                        backward=backward, label="c1-c2") as proxy:
            remote = RemoteCloud(
                supervisor.addresses["c1"], supervisor.addresses["c2"],
                retry=RetryPolicy(max_attempts=6, base_delay_seconds=0.05),
                request_deadline=60.0, rng=Random(7))
            # C1 dials C2 through the proxy; Bob's share fetches stay direct.
            remote.c2_address = proxy.address
            remote.provision(owner.keypair, owner.encrypt_database(),
                             distance_bits=owner.distance_bit_length(),
                             seed=11)
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(8))

            # -- phase 1: seeded frame drops on the peer link ---------------
            shares, _ = remote.query(client.encrypt_query(QUERIES[0]), K,
                                     mode="secure")
            neighbors = client.reconstruct(shares)
            expected = [r.record.values for r in oracle.query(QUERIES[0], K)]
            assert neighbors == expected, (
                f"chaos-exposed answer wrong: {neighbors} != {expected}")
            phase1_faults = len(proxy.events)
            assert phase1_faults > 0, (
                "the drop schedule never fired during the faulted query")
            print(f"frame-drop phase: correct answer after "
                  f"{phase1_faults} injected faults")

            # -- phase 2: SIGKILL C2, supervisor restart, second query ------
            supervisor.kill("c2")
            supervisor.restart_role("c2")
            shares, _ = remote.query(client.encrypt_query(QUERIES[1]), K,
                                     mode="secure")
            neighbors = client.reconstruct(shares)
            expected = [r.record.values for r in oracle.query(QUERIES[1], K)]
            assert neighbors == expected, (
                f"post-restart answer wrong: {neighbors} != {expected}")
            print("daemon-kill phase: correct answer after C2 restart "
                  f"(restarts={supervisor.restarts['c2']})")

            retries = counter_total("repro_retries_total")
            faults = counter_total("repro_chaos_faults_total")
            restarts = counter_total("repro_daemon_restarts_total")
            assert retries > 0, "recovery must have gone through the retry layer"
            assert faults > 0, "the chaos schedule never fired"
            assert restarts >= 1, "the supervisor restart was not counted"
            assert supervisor.restarts["c2"] == 1

            chaos_log = {
                "seed": seed,
                "io_deadline": IO_DEADLINE,
                "key_bits": KEY_BITS,
                "events": proxy.events,
                "repro_retries_total": retries,
                "repro_chaos_faults_total": faults,
                "repro_daemon_restarts_total": restarts,
                "client_reconnects": remote.c1.reconnects
                + remote.c2.reconnects,
                "wall_time_seconds": round(time.monotonic() - started, 3),
            }
            remote.close()

    (RESULTS_DIR / "chaos_smoke.json").write_text(
        json.dumps(chaos_log, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"chaos smoke: OK ({chaos_log['wall_time_seconds']}s, "
          f"{faults:g} faults, {retries:g} retries, {restarts:g} restarts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
