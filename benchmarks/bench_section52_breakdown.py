"""Section 5.2 spot measurements: SMIN_n's share of SkNN_m and Bob's cost.

Two quantitative claims from the prose of Section 5.2 are reproduced here:

* "around 69.7% of cost in SkNN_m is accounted due to SMIN_n ... increases
  from 69.7% to at least 75% when k is increased from 5 to 25" — reproduced as
  the phase breakdown of the operation-count model plus a measured breakdown
  on a reduced workload.  (Our SMIN_n share is lower in absolute terms because
  the record-extraction phase costs relatively more in this implementation;
  the *increasing-with-k* trend is what the assertion checks.)
* "Bob's computation costs are 4 and 17 milliseconds when K is 512 and 1024" —
  reproduced by measuring the attribute-wise encryption of a 6-attribute
  query at both key sizes.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import PAPER_K_VALUES, write_bench_json, write_result
from benchmarks.projections import sminn_share_series
from repro.analysis.reporting import format_table
from repro.core.roles import QueryClient
from repro.crypto.paillier import generate_keypair


def test_section52_sminn_share_projection(benchmark, results_dir):
    """SMIN_n's share of SkNN_m operations grows with k (paper: 69.7% -> 75%)."""
    def build():
        return sminn_share_series(PAPER_K_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = series.to_text()
    write_result(results_dir, "section52_sminn_share.txt", text)
    shares = series.series["SMINn share"]
    write_bench_json(results_dir, "section52_sminn_share", {
        "kind": "projected", "section": "5.2",
        "params": {"k_values": PAPER_K_VALUES},
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"section": "5.2", "kind": "projected",
                                 "share_k5": shares[0], "share_k25": shares[-1]})
    assert shares[-1] > shares[0]
    assert shares[0] > 30.0


@pytest.mark.parametrize("key_size", [512, 1024])
def test_section52_bob_query_encryption_cost(benchmark, key_size, results_dir):
    """Bob's end-user cost: encrypting a 6-attribute query (paper: 4 / 17 ms)."""
    import time

    keypair = generate_keypair(key_size, Random(key_size + 9))
    client = QueryClient(keypair.public_key, dimensions=6, rng=Random(1))
    query = [58, 1, 4, 133, 196, 1]

    result = benchmark(lambda: client.encrypt_query(query))
    assert result is not None

    started = time.perf_counter()
    client.encrypt_query(query)
    measured_ms = (time.perf_counter() - started) * 1000.0
    benchmark.extra_info.update({
        "section": "5.2", "kind": "measured", "key_size": key_size,
        "measured_ms": measured_ms,
        "paper_reported_ms": 4 if key_size == 512 else 17,
    })
    table = format_table([{
        "key_size": key_size,
        "measured encrypt-query (ms)": measured_ms,
        "paper reported (ms)": 4 if key_size == 512 else 17,
    }])
    write_result(results_dir, f"section52_bob_cost_K{key_size}.txt", table)
    write_bench_json(results_dir, f"section52_bob_cost_K{key_size}", {
        "kind": "measured", "section": "5.2",
        "params": {"m": 6, "key_size": key_size},
        "measured_ms": measured_ms,
        "paper_reported_ms": 4 if key_size == 512 else 17,
    })
