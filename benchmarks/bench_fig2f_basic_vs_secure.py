"""Figure 2(f): SkNN_b vs SkNN_m time vs. k, for n=2000, m=6, l=6, K=512.

Paper observation to reproduce: SkNN_b stays flat at ~0.73 minutes regardless
of k while SkNN_m grows from 11.93 to 55.65 minutes as k goes from 5 to 25 —
the two protocols are a security/efficiency trade-off.

Measured here: both protocols on the same reduced workload, showing the
order-of-magnitude gap directly.  Projected: the paper's k sweep for both
protocols at K=512.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    MEASURED_KEY_BITS,
    PAPER_K_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2f_series
from repro.analysis.reporting import ascii_plot
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure

MEASURED_N = 10
MEASURED_M = 3
MEASURED_L = 8
MEASURED_K = 2


@pytest.mark.parametrize("protocol_name", ["SkNNb", "SkNNm"])
def test_fig2f_measured_basic_vs_secure(benchmark, measured_keypair, protocol_name):
    """Measured head-to-head of the two protocols on one workload."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=MEASURED_L, seed=400)
    if protocol_name == "SkNNb":
        protocol = SkNNBasic(cloud)
    else:
        protocol = SkNNSecure(cloud, distance_bits=MEASURED_L)
    encrypted_query = client.encrypt_query([2] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "2f", "protocol": protocol_name, "n": MEASURED_N,
        "m": MEASURED_M, "k": MEASURED_K, "l": MEASURED_L,
        "key_size": MEASURED_KEY_BITS, "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, MEASURED_K),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2f_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(f): SkNN_b vs SkNN_m across k at n=2000, m=6, K=512."""
    def build():
        return figure_2f_series(calibrator, key_size=512, k_values=PAPER_K_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = series.to_text() + "\n" + ascii_plot(series)
    write_result(results_dir, "fig2f_basic_vs_secure_K512.txt", text)
    write_bench_json(results_dir, "fig2f_basic_vs_secure_K512", {
        "kind": "projected", "figure": "2f",
        "params": {"n": 2000, "m": 6, "l": 6, "key_size": 512,
                   "k_values": PAPER_K_VALUES},
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2f", "kind": "projected"})
    rows = series.rows()
    # SkNNb flat in k; SkNNm at least an order of magnitude above it everywhere.
    assert rows[-1]["SkNNb"] / rows[0]["SkNNb"] < 1.01
    assert all(row["SkNNm"] / row["SkNNb"] > 10 for row in rows)
    # SkNNm grows several-fold over the k range.
    assert rows[-1]["SkNNm"] / rows[0]["SkNNm"] > 3.5
