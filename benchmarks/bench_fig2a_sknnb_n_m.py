"""Figure 2(a): SkNN_b computation time vs. n and m, for k=5 and K=512.

Paper observation to reproduce: the cost of SkNN_b grows linearly with both
the number of records ``n`` and the number of attributes ``m`` (e.g. 44.08 s
at n=2000, m=6 growing to 87.91 s at n=4000, m=6 on the authors' machine).

Measured here: real SkNN_b runs at reduced scale (n in {30, 60}, m in {3, 6},
256-bit keys) demonstrating the same linear scaling.  Projected: the full
paper grid (n = 2000..10000, m = 6/12/18) at K = 512.
"""

from __future__ import annotations

from benchmarks.conftest import (
    MEASURED_KEY_BITS,
    PAPER_M_VALUES,
    PAPER_N_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2a_series
from repro.analysis.reporting import ascii_plot
from repro.core.sknn_basic import SkNNBasic

import pytest

MEASURED_CONFIGS = [(30, 3), (30, 6), (60, 3), (60, 6)]


@pytest.mark.parametrize("n_records,dimensions", MEASURED_CONFIGS)
def test_fig2a_measured_sknnb(benchmark, measured_keypair, n_records, dimensions):
    """Measured SkNN_b query time at reduced scale (shape check for Fig 2a)."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=n_records, dimensions=dimensions,
        distance_bits=10, seed=n_records + dimensions)
    protocol = SkNNBasic(cloud)
    encrypted_query = client.encrypt_query([1] * dimensions)

    benchmark.extra_info.update({
        "figure": "2a", "protocol": "SkNNb", "n": n_records, "m": dimensions,
        "k": 5, "key_size": MEASURED_KEY_BITS, "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, 5),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2a_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(a): full paper grid at K=512 via the calibrated model."""
    def build():
        return figure_2a_series(calibrator, key_size=512,
                                n_values=PAPER_N_VALUES, m_values=PAPER_M_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = series.to_text() + "\n" + ascii_plot(series)
    write_result(results_dir, "fig2a_sknnb_n_m_K512.txt", text)
    write_bench_json(results_dir, "fig2a_sknnb_n_m_K512", {
        "kind": "projected", "figure": "2a",
        "params": {"key_size": 512, "k": 5, "n_values": PAPER_N_VALUES,
                   "m_values": PAPER_M_VALUES},
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2a", "kind": "projected"})
    # Shape assertions mirroring the paper's observations.
    rows = series.rows()
    assert rows[-1]["m=6"] > rows[0]["m=6"] * 4.0  # linear growth in n (5x range)
    assert rows[0]["m=18"] > rows[0]["m=6"] * 2.5  # linear growth in m (3x range)
