"""Service throughput: queries/sec for the sharded serving layer vs the seed path.

The serving subsystem (:mod:`repro.service`) claims three wins over the
seed's one-query-at-a-time serial path:

1. **Sharding + pooled workers** — the distance phase is scatter-gathered
   over N shards on a *persistent* worker pool (no per-query pool creation).
2. **Batched scheduling** — queries sharing a scan pass amortize per-record
   task serialization and key-object reconstruction across the batch.
3. **Ciphertext precomputation** — a :class:`~repro.crypto.RandomnessPool`
   moves the ``r^N mod N^2`` exponentiations of query encryption and
   delivery-phase masking off the hot path.

This bench measures queries/sec for the seed's per-query serial SkNN_b path
and a grid of service configurations (shards x workers x batch size, with and
without the randomness pool) over the *same* table and the same query set,
writes the comparison table to ``benchmarks/results/``, and asserts the full
service configuration beats the serial baseline.

The distributed rows measure the *cross-machine* data plane: real shard
daemon subprocesses scatter-gathered by a coordinator C1 against one C2,
first one query at a time and then with concurrent in-flight queries
pipelined over the coordinator's pooled C1↔C2 connections.  Those rows are
informational (no hard assert — subprocess startup dominates at smoke
scale); their answers are still checked bit-identical to the oracle.

Set ``REPRO_BENCH_QUICK=1`` for a reduced smoke workload (used by CI).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from random import Random

from benchmarks.conftest import (deploy_measured_system, write_bench_json,
                                 write_result)
from repro.analysis.reporting import format_table
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.randomness_pool import RandomnessPool
from repro.db.knn import LinearScanKNN
from repro.service.scheduler import QueryServer
from repro.service.sharding import ShardedCloud
from repro.transport.supervisor import LocalSupervisor

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

BENCH_N = 24 if QUICK else 64
BENCH_M = 3 if QUICK else 4
BENCH_QUERIES = 4 if QUICK else 8
BENCH_K = 2
BENCH_WORKERS = min(os.cpu_count() or 2, 4)

#: (label, shards, workers, backend, batch_size, pool_size) service configs.
SERVICE_CONFIGS = [
    ("sharded s2 batch1", 2, BENCH_WORKERS, "process", 1, 0),
    ("sharded s2 batched", 2, BENCH_WORKERS, "process", BENCH_QUERIES, 0),
    ("sharded s2 batched + pool", 2, BENCH_WORKERS, "process",
     BENCH_QUERIES, 4 * BENCH_QUERIES * BENCH_M),
]


def _workload(measured_keypair):
    """One deployment plus a fixed query set shared by every configuration."""
    cloud, client, table = deploy_measured_system(
        measured_keypair, n_records=BENCH_N, dimensions=BENCH_M,
        distance_bits=10, seed=700)
    rng = Random(701)
    max_value = max(a.maximum for a in table.schema)
    queries = [[rng.randint(0, max_value) for _ in range(BENCH_M)]
               for _ in range(BENCH_QUERIES)]
    return cloud, client, table, queries


def _serial_queries_per_second(cloud, client, queries) -> float:
    """The seed path: one serial SkNN_b execution per query."""
    protocol = SkNNBasic(cloud)
    started = time.perf_counter()
    for query in queries:
        protocol.run(client.encrypt_query(query), BENCH_K)
    elapsed = time.perf_counter() - started
    return len(queries) / elapsed


def _service_queries_per_second(cloud, queries, shards, workers, backend,
                                batch_size, pool_size) -> float:
    """One service configuration: sessions submit, the server drains batches."""
    randomness_pool = (RandomnessPool(cloud.c1.public_key, size=pool_size,
                                      rng=Random(702))
                       if pool_size else None)
    sharded = ShardedCloud(cloud, shards=shards, workers=workers,
                           backend=backend, randomness_pool=randomness_pool)
    server = QueryServer(sharded, batch_size=batch_size, rng=Random(703),
                         session_pool_size=4 * BENCH_M if pool_size else 0)
    session = server.open_session("bench-bob")
    try:
        started = time.perf_counter()
        pending = [session.submit(query, BENCH_K) for query in queries]
        server.flush()
        answers = [p.result(timeout=600) for p in pending]
        elapsed = time.perf_counter() - started
    finally:
        server.close()
    assert all(len(answer.neighbors) == BENCH_K for answer in answers)
    return len(queries) / elapsed


def _distributed_rows(measured_keypair, table, queries, oracle) -> list[dict]:
    """Queries/sec through real shard-daemon subprocesses, serial vs pipelined.

    One supervisor (2 C1 shard daemons + coordinator + C2, pooled peer
    connections) serves both measurements; the pipelined row issues every
    query concurrently from its own client connection, so the in-flight
    queries overlap on the daemons' multiplexed C1↔C2 links.
    """
    owner = DataOwner(table, keypair=measured_keypair, rng=Random(705))
    client = QueryClient(measured_keypair.public_key, table.dimensions,
                         rng=Random(707))
    encrypted = [client.encrypt_query(query) for query in queries]
    expected = [[tuple(r.record.values) for r in oracle.query(query, BENCH_K)]
                for query in queries]
    rows = []
    with LocalSupervisor(shards=2, peer_connections=BENCH_QUERIES,
                         io_deadline=120.0) as supervisor:
        remote = supervisor.provision_from_owner(owner, seed=706)
        clones = [remote] + [remote.clone()
                             for _ in range(len(queries) - 1)]

        def run(index: int, concurrency_slot: int) -> list:
            shares, _ = clones[concurrency_slot].query(
                encrypted[index], BENCH_K, mode="basic")
            return [tuple(values) for values in client.reconstruct(shares)]

        try:
            started = time.perf_counter()
            serial_answers = [run(index, 0) for index in range(len(queries))]
            serial_elapsed = time.perf_counter() - started

            with ThreadPoolExecutor(max_workers=len(queries)) as pool:
                started = time.perf_counter()
                futures = [pool.submit(run, index, index)
                           for index in range(len(queries))]
                pipelined_answers = [future.result() for future in futures]
                pipelined_elapsed = time.perf_counter() - started
        finally:
            for clone in clones[1:]:
                clone.close()
    assert serial_answers == expected, "distributed answers diverged"
    assert pipelined_answers == expected, "pipelined answers diverged"
    rows.append({
        "configuration": "distributed 2-shard daemons",
        "shards": 2, "workers": 1, "batch": 1, "pool": 0,
        "queries/s": len(queries) / serial_elapsed,
    })
    rows.append({
        "configuration": "distributed 2-shard pipelined",
        "shards": 2, "workers": len(queries), "batch": 1, "pool": 0,
        "queries/s": len(queries) / pipelined_elapsed,
    })
    return rows


def test_service_throughput_vs_seed_serial(benchmark, measured_keypair,
                                           results_dir):
    """The full service config must out-serve the seed's serial path."""
    cloud, client, table, queries = _workload(measured_keypair)
    oracle = LinearScanKNN(table)

    def run_grid():
        rows = [{
            "configuration": "seed serial per-query",
            "shards": 1, "workers": 1, "batch": 1, "pool": 0,
            "queries/s": _serial_queries_per_second(cloud, client, queries),
        }]
        for label, shards, workers, backend, batch, pool in SERVICE_CONFIGS:
            rows.append({
                "configuration": label,
                "shards": shards, "workers": workers, "batch": batch,
                "pool": pool,
                "queries/s": _service_queries_per_second(
                    cloud, queries, shards, workers, backend, batch, pool),
            })
        rows.extend(_distributed_rows(measured_keypair, table, queries,
                                      oracle))
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1,
                              warmup_rounds=0)
    text = (f"service throughput (n={BENCH_N}, m={BENCH_M}, k={BENCH_K}, "
            f"queries={BENCH_QUERIES}, K=256, {os.cpu_count()} cores)\n"
            + format_table(rows))
    write_result(results_dir, "service_throughput.txt", text)
    write_bench_json(results_dir, "service_throughput", {
        "kind": "measured", "subsystem": "service",
        "params": {"n": BENCH_N, "m": BENCH_M, "k": BENCH_K,
                   "queries": BENCH_QUERIES, "quick": QUICK},
        "rows": rows,
    })
    benchmark.extra_info.update({
        "subsystem": "service", "kind": "measured", "n": BENCH_N,
        "m": BENCH_M, "k": BENCH_K, "queries": BENCH_QUERIES,
        "quick": QUICK,
    })

    serial_qps = rows[0]["queries/s"]
    full_service_qps = rows[len(SERVICE_CONFIGS)]["queries/s"]
    assert full_service_qps > serial_qps, (
        f"service path ({full_service_qps:.2f} q/s) did not beat the seed "
        f"serial path ({serial_qps:.2f} q/s)")

    # Sanity: the served answers must match the plaintext oracle.
    sharded = ShardedCloud(cloud, shards=2, workers=1, backend="serial")
    server = QueryServer(sharded, batch_size=BENCH_QUERIES, rng=Random(704))
    session = server.open_session("oracle-check")
    try:
        for query in queries:
            expected = [r.record.values for r in oracle.query(query, BENCH_K)]
            assert session.query(query, BENCH_K).neighbors == expected
    finally:
        server.close()
