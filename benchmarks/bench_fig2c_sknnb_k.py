"""Figure 2(c): SkNN_b computation time vs. k, for n=2000, m=6, K in {512, 1024}.

Paper observation to reproduce: SkNN_b is essentially independent of k (44.08 s
to 44.14 s as k goes from 5 to 25 at K=512), because the SSED distance phase
dominates and does not depend on k.

Measured here: real SkNN_b runs at reduced scale for k in {1, 5, 10} showing a
flat curve.  Projected: the paper grid k = 5..25 for both key sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    MEASURED_KEY_BITS,
    PAPER_K_VALUES,
    PAPER_KEY_SIZES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2c_series
from repro.analysis.reporting import ascii_plot
from repro.core.sknn_basic import SkNNBasic

MEASURED_N = 40
MEASURED_M = 6


@pytest.mark.parametrize("k", [1, 5, 10])
def test_fig2c_measured_sknnb_vs_k(benchmark, measured_keypair, k):
    """Measured SkNN_b at several k values — the curve must stay flat."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=10, seed=900 + k)
    protocol = SkNNBasic(cloud)
    encrypted_query = client.encrypt_query([2] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "2c", "protocol": "SkNNb", "n": MEASURED_N, "m": MEASURED_M,
        "k": k, "key_size": MEASURED_KEY_BITS, "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, k),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2c_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(c): k sweep at n=2000, m=6 for K=512 and K=1024."""
    def build():
        return figure_2c_series(calibrator, key_sizes=PAPER_KEY_SIZES,
                                k_values=PAPER_K_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = series.to_text() + "\n" + ascii_plot(series)
    write_result(results_dir, "fig2c_sknnb_k.txt", text)
    write_bench_json(results_dir, "fig2c_sknnb_k", {
        "kind": "projected", "figure": "2c",
        "params": {"n": 2000, "m": 6, "key_sizes": PAPER_KEY_SIZES,
                   "k_values": PAPER_K_VALUES},
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2c", "kind": "projected"})
    rows = series.rows()
    # Flatness in k: less than 1% change across the whole sweep.
    assert rows[-1]["K=512"] / rows[0]["K=512"] < 1.01
    # Key-size gap: K=1024 is several times slower at every k.
    assert rows[0]["K=1024"] / rows[0]["K=512"] > 4.0
