"""Micro-benchmarks of the cryptographic and protocol primitives.

Not a figure of the paper, but the foundation of the calibrated projections:
the per-operation costs of Paillier encryption/decryption/exponentiation and
the per-invocation costs of the Section 3 sub-protocols (SM, SSED, SBD, SMIN).
Comparing these against the operation-count model is what justifies using the
model to extrapolate the paper-scale figures.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import MEASURED_KEY_BITS
from repro.crypto.paillier import generate_keypair
from repro.network.party import TwoPartySetting
from repro.protocols.encoding import encrypt_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.smin import SecureMinimum
from repro.protocols.sm import SecureMultiplication
from repro.protocols.ssed import SecureSquaredEuclideanDistance


@pytest.fixture(scope="module")
def primitive_setting(measured_keypair):
    return TwoPartySetting.create(measured_keypair, rng=Random(4242))


@pytest.mark.parametrize("key_size", [256, 512, 1024])
def test_paillier_encryption(benchmark, key_size):
    """One Paillier encryption at each key size the suite uses."""
    keypair = generate_keypair(key_size, Random(key_size + 2))
    benchmark.extra_info.update({"primitive": "encrypt", "key_size": key_size})
    benchmark(lambda: keypair.public_key.encrypt(123456789))


@pytest.mark.parametrize("key_size", [256, 512, 1024])
def test_paillier_decryption(benchmark, key_size):
    """One CRT-accelerated Paillier decryption at each key size."""
    keypair = generate_keypair(key_size, Random(key_size + 3))
    ciphertext = keypair.public_key.encrypt(987654321)
    benchmark.extra_info.update({"primitive": "decrypt", "key_size": key_size})
    benchmark(lambda: keypair.private_key.decrypt(ciphertext))


def test_paillier_homomorphic_addition(benchmark, measured_keypair):
    """Homomorphic addition is a single modular multiplication (cheap)."""
    public = measured_keypair.public_key
    a, b = public.encrypt(1), public.encrypt(2)
    benchmark.extra_info.update({"primitive": "homomorphic_add",
                                 "key_size": MEASURED_KEY_BITS})
    benchmark(lambda: a + b)


def test_paillier_scalar_multiplication(benchmark, measured_keypair):
    """Ciphertext exponentiation by a full-size scalar."""
    public = measured_keypair.public_key
    cipher = public.encrypt(7)
    scalar = public.n - 12345
    benchmark.extra_info.update({"primitive": "scalar_mul",
                                 "key_size": MEASURED_KEY_BITS})
    benchmark(lambda: cipher * scalar)


def test_protocol_sm(benchmark, primitive_setting):
    """One Secure Multiplication invocation."""
    public = primitive_setting.public_key
    enc_a, enc_b = public.encrypt(59), public.encrypt(58)
    protocol = SecureMultiplication(primitive_setting)
    benchmark.extra_info.update({"primitive": "SM", "key_size": MEASURED_KEY_BITS})
    benchmark(lambda: protocol.run(enc_a, enc_b))


@pytest.mark.parametrize("dimensions", [6, 12])
def test_protocol_ssed(benchmark, primitive_setting, dimensions):
    """One SSED invocation at the paper's attribute counts."""
    public = primitive_setting.public_key
    enc_x = public.encrypt_vector(list(range(dimensions)))
    enc_y = public.encrypt_vector(list(range(dimensions, 2 * dimensions)))
    protocol = SecureSquaredEuclideanDistance(primitive_setting)
    benchmark.extra_info.update({"primitive": "SSED", "m": dimensions,
                                 "key_size": MEASURED_KEY_BITS})
    benchmark(lambda: protocol.run(enc_x, enc_y))


@pytest.mark.parametrize("bit_length", [6, 12])
def test_protocol_sbd(benchmark, primitive_setting, bit_length):
    """One SBD invocation at the paper's l values."""
    public = primitive_setting.public_key
    enc_z = public.encrypt(37 % (1 << bit_length))
    protocol = SecureBitDecomposition(primitive_setting, bit_length)
    benchmark.extra_info.update({"primitive": "SBD", "l": bit_length,
                                 "key_size": MEASURED_KEY_BITS})
    benchmark.pedantic(lambda: protocol.run(enc_z), rounds=3, iterations=1)


@pytest.mark.parametrize("bit_length", [6, 12])
def test_protocol_smin(benchmark, primitive_setting, bit_length):
    """One SMIN invocation at the paper's l values."""
    public = primitive_setting.public_key
    enc_u = encrypt_bits(public, 21 % (1 << bit_length), bit_length)
    enc_v = encrypt_bits(public, 42 % (1 << bit_length), bit_length)
    protocol = SecureMinimum(primitive_setting)
    benchmark.extra_info.update({"primitive": "SMIN", "l": bit_length,
                                 "key_size": MEASURED_KEY_BITS})
    benchmark.pedantic(lambda: protocol.run(enc_u, enc_v), rounds=3, iterations=1)
