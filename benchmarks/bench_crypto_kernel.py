"""Crypto-kernel micro-benchmark: per-call scalar vs. vectorized batch paths.

Every protocol of the paper bottoms out in three Paillier primitives —
encryption, decryption and ciphertext exponentiation (Section 4.4) — so this
bench measures exactly those, comparing

* the **scalar path**: one Python call per operation, textbook ``r**N``
  obfuscators and ``c**(N-1)`` negations, against
* the **batch path**: ``encrypt_batch`` / ``decrypt_batch`` /
  ``scalar_mul_batch``, with fixed-base windowed obfuscator generation and
  the modular-inverse negation shortcut,

on identical workloads (same plaintexts, same scalar mix).  The scalar-mul
workload mirrors the protocols' real mix — one homomorphic negation plus two
uniform-scalar exponentiations per SSED attribute (the SM unmask pair).

A second test compares an end-to-end SkNN_b query through the batched scan
against the seed's per-record serial scan on the same table and key.

Key size defaults to the paper's K=512; CI smoke runs set
``REPRO_BENCH_KERNEL_BITS=256`` (the vectorized path must still win there,
just by a smaller margin).  Results go to ``benchmarks/results/`` as both a
txt table and machine-readable ``BENCH_*.json``.
"""

from __future__ import annotations

import os
import time
from random import Random

import pytest

from benchmarks.conftest import write_bench_json, write_result
from repro.analysis.reporting import format_table
from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.backend import available_backends, get_backend, set_backend
from repro.crypto.paillier import generate_keypair
from repro.db.datasets import synthetic_uniform
from repro.protocols.ssed import SecureSquaredEuclideanDistance

KERNEL_KEY_BITS = int(os.environ.get("REPRO_BENCH_KERNEL_BITS", "512"))
#: operations per primitive class (encrypt / decrypt / scalar-mul triples)
KERNEL_OPS = int(os.environ.get("REPRO_BENCH_KERNEL_OPS", "96"))
#: speedup the batch path must reach; the windowed-obfuscator and inverse
#: shortcuts grow with the modulus, so the bar is higher at paper scale.
MIN_SPEEDUP = 1.5 if KERNEL_KEY_BITS >= 512 else 1.05
#: below paper scale the per-path totals are tens of milliseconds, so take
#: the best of several repeats to keep the CI gate stable on noisy runners.
MEASURE_REPEATS = 1 if KERNEL_KEY_BITS >= 512 else 3

E2E_N = 24
E2E_M = 3


@pytest.fixture(scope="module")
def kernel_keypair():
    """One key pair shared by every kernel measurement."""
    return generate_keypair(KERNEL_KEY_BITS, Random(4242))


def _measure(fn, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds of one callable."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _kernel_workload(public_key, rng: Random):
    """Plaintexts, ciphertexts and the protocol-mix scalar list."""
    n = public_key.n
    values = [rng.randrange(1 << 16) for _ in range(KERNEL_OPS)]
    ciphertexts = [public_key.encrypt(v, rng=rng) for v in values]
    # Protocol mix: one negation + two uniform scalars per SSED attribute.
    scalars = []
    for index in range(KERNEL_OPS):
        scalars.append(-1 if index % 3 == 0 else rng.randrange(1, n))
    return values, ciphertexts, scalars


def _run_kernel(public_key, private_key, rng: Random) -> dict[str, float]:
    """Time the three primitive classes through both paths."""
    values, ciphertexts, scalars = _kernel_workload(public_key, rng)
    repeats = MEASURE_REPEATS

    # Warm the fixed-base table outside the throughput measurement (one-time
    # per-key cost, reported separately below).
    table_build = _measure(
        lambda: public_key.encrypt_batch(values[:1], rng=rng))
    scalar_encrypt = _measure(
        lambda: [public_key.encrypt(v, rng=rng) for v in values], repeats)
    batch_encrypt = _measure(
        lambda: public_key.encrypt_batch(values, rng=rng), repeats)

    scalar_decrypt = _measure(
        lambda: [private_key.decrypt(c) for c in ciphertexts], repeats)
    batch_decrypt = _measure(
        lambda: private_key.decrypt_batch(ciphertexts), repeats)

    scalar_mul = _measure(
        lambda: [c * s for c, s in zip(ciphertexts, scalars)], repeats)
    batch_mul = _measure(
        lambda: public_key.scalar_mul_batch(ciphertexts, scalars), repeats)

    scalar_total = scalar_encrypt + scalar_decrypt + scalar_mul
    batch_total = batch_encrypt + batch_decrypt + batch_mul
    return {
        "scalar_encrypt_s": scalar_encrypt,
        "batch_encrypt_s": batch_encrypt,
        "window_table_build_s": table_build,
        "scalar_decrypt_s": scalar_decrypt,
        "batch_decrypt_s": batch_decrypt,
        "scalar_mul_s": scalar_mul,
        "batch_mul_s": batch_mul,
        "scalar_total_s": scalar_total,
        "batch_total_s": batch_total,
        "speedup": scalar_total / batch_total,
    }


def test_kernel_scalar_vs_batch(benchmark, kernel_keypair, results_dir):
    """The batched path must beat the per-call path on the combined workload."""
    public_key, private_key = (kernel_keypair.public_key,
                               kernel_keypair.private_key)
    public_key.counter.reset()
    private_key.counter.reset()

    timings = benchmark.pedantic(
        lambda: _run_kernel(public_key, private_key, Random(77)),
        rounds=1, iterations=1, warmup_rounds=0)

    counters = {
        "encryptions": public_key.counter.encryptions,
        "decryptions": private_key.counter.decryptions,
        "exponentiations": public_key.counter.exponentiations,
        "homomorphic_additions": public_key.counter.homomorphic_additions,
    }
    rows = [{
        "op": op,
        "scalar (ms)": timings[f"scalar_{key}_s"] * 1000,
        "batch (ms)": timings[f"batch_{key}_s"] * 1000,
        "speedup": timings[f"scalar_{key}_s"] / timings[f"batch_{key}_s"],
    } for op, key in [("encrypt", "encrypt"), ("decrypt", "decrypt"),
                      ("scalar-mul", "mul")]]
    rows.append({
        "op": "combined",
        "scalar (ms)": timings["scalar_total_s"] * 1000,
        "batch (ms)": timings["batch_total_s"] * 1000,
        "speedup": timings["speedup"],
    })
    text = (f"crypto kernel: scalar vs batch (K={KERNEL_KEY_BITS}, "
            f"{KERNEL_OPS} ops/class, backend={get_backend().name})\n"
            + format_table(rows)
            + f"window table build (one-time): "
              f"{timings['window_table_build_s'] * 1000:.1f} ms\n")
    write_result(results_dir, f"crypto_kernel_K{KERNEL_KEY_BITS}.txt", text)
    write_bench_json(results_dir, f"crypto_kernel_K{KERNEL_KEY_BITS}", {
        "kind": "measured",
        "params": {"key_size": KERNEL_KEY_BITS, "ops_per_class": KERNEL_OPS},
        "timings": timings,
        "op_counters": counters,
    })
    benchmark.extra_info.update({
        "subsystem": "crypto-kernel", "key_size": KERNEL_KEY_BITS,
        "backend": get_backend().name, "speedup": timings["speedup"],
    })

    assert timings["speedup"] >= MIN_SPEEDUP, (
        f"vectorized kernel ({timings['batch_total_s']:.3f}s) must be at "
        f">= {MIN_SPEEDUP}x faster than the scalar path "
        f"({timings['scalar_total_s']:.3f}s); got {timings['speedup']:.2f}x")


@pytest.mark.skipif("gmpy2" not in available_backends(),
                    reason="gmpy2 not importable on this machine")
def test_kernel_gmpy2_backend(kernel_keypair, results_dir):
    """When gmpy2 is present, its backend must win on the same workload."""
    public_key, private_key = (kernel_keypair.public_key,
                               kernel_keypair.private_key)
    try:
        set_backend("python")
        python_timings = _run_kernel(public_key, private_key, Random(78))
        set_backend("gmpy2")
        gmpy2_timings = _run_kernel(public_key, private_key, Random(78))
    finally:
        set_backend(None)
    write_bench_json(results_dir, f"crypto_kernel_gmpy2_K{KERNEL_KEY_BITS}", {
        "kind": "measured",
        "params": {"key_size": KERNEL_KEY_BITS, "ops_per_class": KERNEL_OPS},
        "python_batch_total_s": python_timings["batch_total_s"],
        "gmpy2_batch_total_s": gmpy2_timings["batch_total_s"],
    })
    assert gmpy2_timings["batch_total_s"] < python_timings["batch_total_s"]


def test_kernel_end_to_end_sknnb(benchmark, kernel_keypair, results_dir):
    """A full SkNN_b query through the batched scan vs the seed serial scan."""
    table = synthetic_uniform(n_records=E2E_N, dimensions=E2E_M,
                              distance_bits=10, seed=900)
    owner = DataOwner(table, keypair=kernel_keypair, rng=Random(901))
    cloud = FederatedCloud.deploy(kernel_keypair, rng=Random(902))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(kernel_keypair.public_key, E2E_M, rng=Random(903))
    encrypted_query = client.encrypt_query([1] * E2E_M)

    protocol = SkNNBasic(cloud)
    ssed = SecureSquaredEuclideanDistance(cloud.setting)

    def seed_style_distance_scan():
        """The seed's per-record scan: n sequential SSED runs + n decrypts."""
        encrypted = [ssed.run(list(encrypted_query), list(r.ciphertexts))
                     for r in cloud.c1.encrypted_table]
        return [cloud.c2.decrypt_residue(c) for c in encrypted]

    def measure():
        batched = _measure(lambda: protocol.run(encrypted_query, 2))
        serial = _measure(seed_style_distance_scan)
        return {"batched_full_query_s": batched,
                "seed_distance_scan_s": serial}

    timings = benchmark.pedantic(measure, rounds=1, iterations=1,
                                 warmup_rounds=0)
    write_bench_json(results_dir, f"sknnb_end_to_end_K{KERNEL_KEY_BITS}", {
        "kind": "measured",
        "params": {"key_size": KERNEL_KEY_BITS, "n": E2E_N, "m": E2E_M,
                   "k": 2},
        "timings": timings,
    })
    benchmark.extra_info.update({
        "subsystem": "crypto-kernel", "kind": "end-to-end",
        "key_size": KERNEL_KEY_BITS,
    })
    # The batched *full query* (scan + selection + delivery) must beat the
    # seed's distance scan alone — a strictly conservative comparison.
    assert timings["batched_full_query_s"] < timings["seed_distance_scan_s"]
