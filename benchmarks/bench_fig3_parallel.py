"""Figure 3: serial vs. parallel SkNN_b, for m=6, k=5, K=512.

Paper observation to reproduce: because the per-record computations of SkNN_b
are independent, a 6-thread OpenMP implementation is roughly 6x faster than
the serial one (e.g. 40 s vs 215.59 s at n=10000).

Measured here: the serial and process-pool backends of
:class:`repro.core.parallel.ParallelSkNNBasic` on the same reduced workload;
the speedup is bounded by the machine's core count and the pool start-up
overhead at small n.  Projected: the paper's n sweep for serial and parallel
(6 workers) at K=512.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import (
    MEASURED_KEY_BITS,
    PAPER_N_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_3_series
from repro.analysis.reporting import ascii_plot, format_table
from repro.core.parallel import ParallelSkNNBasic

MEASURED_N = 60
MEASURED_M = 6
MEASURED_WORKERS = min(os.cpu_count() or 2, 4)


@pytest.mark.parametrize("backend,workers", [
    ("serial", 1),
    ("process", MEASURED_WORKERS),
])
def test_fig3_measured_serial_vs_parallel(benchmark, measured_keypair, backend,
                                          workers):
    """Measured SkNN_b distance phase: serial vs process-pool execution."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=10, seed=500)
    encrypted_query = client.encrypt_query([3] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "3", "protocol": "SkNNb-parallel", "backend": backend,
        "workers": workers, "n": MEASURED_N, "m": MEASURED_M, "k": 5,
        "key_size": MEASURED_KEY_BITS, "kind": "measured",
    })
    with ParallelSkNNBasic(cloud, workers=workers, backend=backend) as runner:
        benchmark.pedantic(lambda: runner.run(encrypted_query, 5),
                           rounds=1, iterations=1, warmup_rounds=0)


def test_fig3_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 3: serial vs 6-worker parallel SkNN_b across n."""
    def build():
        return figure_3_series(calibrator, key_size=512, n_values=PAPER_N_VALUES,
                               workers=6)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = series.rows()
    comparison = format_table([{
        "n": row["n"],
        "serial (s)": row["serial"],
        "parallel 6w (s)": row["parallel"],
        "speedup": row["serial"] / row["parallel"],
    } for row in rows])
    text = series.to_text() + "\n" + ascii_plot(series) + "\n" + comparison
    write_result(results_dir, "fig3_parallel_vs_serial_K512.txt", text)
    write_bench_json(results_dir, "fig3_parallel_vs_serial_K512", {
        "kind": "projected", "figure": "3",
        "params": {"m": 6, "k": 5, "key_size": 512, "workers": 6,
                   "n_values": PAPER_N_VALUES},
        "rows": rows,
    })
    benchmark.extra_info.update({"figure": "3", "kind": "projected"})
    assert all(abs(row["serial"] / row["parallel"] - 6.0) < 0.01 for row in rows)
