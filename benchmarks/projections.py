"""Paper-scale projection builders (re-exported from the library).

The series builders live in :mod:`repro.analysis.projections` so that the CLI
(``python -m repro project --figure 2a``) and the benchmark harness share one
implementation; this module keeps the original import path used by the bench
modules.
"""

from repro.analysis.projections import (
    figure_2a_series,
    figure_2c_series,
    figure_2d_series,
    figure_2f_series,
    figure_3_series,
    sminn_share_series,
)

__all__ = [
    "figure_2a_series",
    "figure_2c_series",
    "figure_2d_series",
    "figure_2f_series",
    "figure_3_series",
    "sminn_share_series",
]
