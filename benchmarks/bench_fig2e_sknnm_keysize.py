"""Figure 2(e): SkNN_m computation time vs. k and l at K = 1024 bits.

Paper observation to reproduce: the same near-linear growth in k and l as
Figure 2(d), shifted up by roughly 7x because of the larger key (e.g. 22.85
minutes at K=512 vs 157.17 minutes at K=1024 for k=10, l=6).

Measured here: one reduced-scale SkNN_m run at 256-bit and one at 512-bit keys
to exhibit the key-size slowdown on the secure protocol itself.  Projected:
the paper grid at K=1024 plus the projected K=512 vs K=1024 ratio at k=10.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import (
    PAPER_K_VALUES,
    PAPER_L_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2d_series
from repro.analysis.cost_model import sknn_secure_counts
from repro.analysis.reporting import ascii_plot, format_table
from repro.core.sknn_secure import SkNNSecure
from repro.crypto.paillier import generate_keypair

MEASURED_N = 8
MEASURED_M = 3
MEASURED_L = 8


@pytest.mark.parametrize("key_size", [256, 512])
def test_fig2e_measured_sknnm_key_size(benchmark, key_size):
    """Measured SkNN_m at two key sizes on the same tiny workload."""
    keypair = generate_keypair(key_size, Random(key_size + 1))
    cloud, client, _ = deploy_measured_system(
        keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=MEASURED_L, seed=300 + key_size)
    protocol = SkNNSecure(cloud, distance_bits=MEASURED_L)
    encrypted_query = client.encrypt_query([1] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "2e", "protocol": "SkNNm", "n": MEASURED_N, "m": MEASURED_M,
        "k": 1, "l": MEASURED_L, "key_size": key_size, "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, 1),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2e_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(e): k and l sweep at n=2000, m=6, K=1024."""
    def build():
        return figure_2d_series(calibrator, key_size=1024,
                                k_values=PAPER_K_VALUES, l_values=PAPER_L_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)

    # Paper's spot check: k=10, l=6 at K=512 vs K=1024 (22.85 vs 157.17 min).
    counts = sknn_secure_counts(2000, 6, 10, 6)
    minutes_512 = calibrator.predict_seconds(counts, 512) / 60.0
    minutes_1024 = calibrator.predict_seconds(counts, 1024) / 60.0
    comparison = format_table([{
        "config": "n=2000, m=6, k=10, l=6",
        "projected K=512 (min)": minutes_512,
        "projected K=1024 (min)": minutes_1024,
        "ratio": minutes_1024 / minutes_512,
        "paper ratio": 157.17 / 22.85,
    }])
    text = series.to_text() + "\n" + ascii_plot(series) + "\n" + comparison
    write_result(results_dir, "fig2e_sknnm_k_l_K1024.txt", text)
    write_bench_json(results_dir, "fig2e_sknnm_k_l_K1024", {
        "kind": "projected", "figure": "2e",
        "params": {"n": 2000, "m": 6, "key_size": 1024,
                   "k_values": PAPER_K_VALUES, "l_values": PAPER_L_VALUES},
        "ratio_1024_over_512": minutes_1024 / minutes_512,
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2e", "kind": "projected",
                                 "ratio_1024_over_512": minutes_1024 / minutes_512})
    assert 4.0 < minutes_1024 / minutes_512 < 12.0
