"""Shared fixtures and helpers for the benchmark harness.

Every figure and table of the paper's evaluation (Section 5) has one module in
this directory.  Each module does two things:

1. **Measured runs** — pytest-benchmark measurements of the real protocols at
   reduced scale (small ``n``, 256-bit keys) that validate the constant
   factors on this machine, and
2. **Projected series** — the full parameter grid of the corresponding paper
   figure, obtained by combining the exact operation-count model
   (:mod:`repro.analysis.cost_model`) with per-operation timings calibrated at
   the paper's key sizes (512/1024 bits).  The projected tables are written to
   ``benchmarks/results/`` and summarized in EXPERIMENTS.md.

Rationale: the paper's own numbers come from a C implementation on a 6-core
Xeon; a pure-Python rerun of, e.g., SkNN_m at n=2000, k=25 would take days.
The projection preserves the quantities the figures are about — the *scaling*
with n, m, k, l and K — while the measured runs pin down absolute constants.
"""

from __future__ import annotations

import json
from pathlib import Path
from random import Random

import pytest

from repro.analysis.calibration import Calibrator
from repro.bench import BenchHistory, numeric_leaves, provenance_block
from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.crypto.paillier import PaillierKeyPair, generate_keypair
from repro.db.datasets import synthetic_uniform
from repro.telemetry import get_registry

#: Directory where every bench writes its paper-style result tables.
RESULTS_DIR = Path(__file__).parent / "results"

#: Append-only benchmark-history trajectories (one JSONL per bench).
HISTORY_DIR = Path(__file__).parent / "history"

#: Key size used for the *measured* (reduced-scale) benchmark runs.
MEASURED_KEY_BITS = 256

#: Paper parameter grids (Section 5).
PAPER_N_VALUES = [2000, 4000, 6000, 8000, 10000]
PAPER_M_VALUES = [6, 12, 18]
PAPER_K_VALUES = [5, 10, 15, 20, 25]
PAPER_L_VALUES = [6, 12]
PAPER_KEY_SIZES = [512, 1024]


@pytest.fixture(scope="session")
def calibrator() -> Calibrator:
    """Session-wide calibrator; key generation and timing happen once."""
    return Calibrator(samples=15)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """The benchmarks/results directory (created on first use)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def measured_keypair() -> PaillierKeyPair:
    """Key pair used by all measured (reduced-scale) runs."""
    return generate_keypair(MEASURED_KEY_BITS, Random(5150))


def write_result(results_dir: Path, name: str, text: str) -> Path:
    """Write one result table to ``benchmarks/results/<name>`` and return its path."""
    path = results_dir / name
    path.write_text(text, encoding="utf-8")
    return path


def write_bench_json(results_dir: Path, name: str, payload: dict) -> Path:
    """Write machine-readable benchmark output ``BENCH_<name>.json``.

    Every bench emits one of these alongside its human-readable txt table so
    the performance trajectory is trackable across PRs (and diffable in CI
    artifacts).  The common provenance block (git sha, crypto backend,
    interpreter, key size) is stamped automatically; ``payload`` carries the
    bench-specific params, wall-clock numbers and operation counters.  The
    numeric timings are additionally appended as one record to the
    append-only ``benchmarks/history/<name>.jsonl`` trajectory, which
    ``repro bench check`` gates against its rolling baseline.
    """
    params = payload.get("params") or {}
    key_size = params.get("key_size", MEASURED_KEY_BITS)
    provenance = provenance_block(
        key_size=key_size if isinstance(key_size, int) else None)
    record = {
        "bench": name,
        "provenance": provenance,
        "telemetry": {
            family_name: family["values"]
            for family_name, family in get_registry().snapshot().items()
            if family["values"]
        },
    }
    record.update(payload)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    metrics = numeric_leaves(payload.get("timings") or {})
    if metrics:
        BenchHistory(HISTORY_DIR).append(name, {
            "bench": name,
            "provenance": provenance,
            "params": params,
            "metrics": metrics,
        })
    return path


def deploy_measured_system(keypair: PaillierKeyPair, n_records: int,
                           dimensions: int, distance_bits: int, seed: int = 0):
    """Stand up a federated cloud + client over a synthetic table.

    Returns ``(cloud, client, table)`` ready for protocol benchmarking.
    """
    table = synthetic_uniform(n_records=n_records, dimensions=dimensions,
                              distance_bits=distance_bits, seed=seed)
    owner = DataOwner(table, keypair=keypair, rng=Random(seed + 1))
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed + 2))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, table.dimensions, rng=Random(seed + 3))
    return cloud, client, table
