"""Ablation benchmarks for design choices called out in DESIGN.md.

* **CRT decryption** — Paillier decryption via the Chinese Remainder Theorem
  vs. the textbook formula (the paper's C implementation would use CRT; this
  quantifies how much the choice matters).
* **SMIN_n topology** — the paper's binary tournament (Algorithm 4) vs. a
  sequential chain of SMINs: the same number of SMIN calls, but the tournament
  halves the number of *sequential rounds*, which matters once the two clouds
  are separated by real network latency.
* **SkNN_m re-expansion** — Algorithm 6 step 3(b) re-derives ``E(d_i)`` from
  the updated bit vectors every iteration; the ablation measures what that
  step costs (the correctness consequence of skipping it is covered by the
  test-suite).
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import MEASURED_KEY_BITS, deploy_measured_system
from repro.crypto.paillier import generate_keypair
from repro.network.party import TwoPartySetting
from repro.core.sknn_secure import SkNNSecure
from repro.protocols.encoding import encrypt_bits
from repro.protocols.sminn import SecureMinimumOfN


@pytest.mark.parametrize("use_crt", [True, False])
def test_ablation_crt_decryption(benchmark, use_crt):
    """CRT-accelerated vs. naive Paillier decryption at 512-bit keys."""
    keypair = generate_keypair(512, Random(31337))
    ciphertext = keypair.public_key.encrypt(123456789)
    benchmark.extra_info.update({"ablation": "crt_decryption", "use_crt": use_crt,
                                 "key_size": 512})
    benchmark(lambda: keypair.private_key.raw_decrypt(ciphertext.value,
                                                      use_crt=use_crt))


@pytest.mark.parametrize("topology", ["tournament", "chain"])
def test_ablation_sminn_topology(benchmark, measured_keypair, topology):
    """Tournament vs. chain SMIN_n over 8 values (same work, different depth)."""
    setting = TwoPartySetting.create(measured_keypair, rng=Random(606))
    values = [13, 4, 55, 9, 22, 4, 61, 30]
    encrypted = [encrypt_bits(setting.public_key, v, 6) for v in values]
    protocol = SecureMinimumOfN(setting, topology=topology)
    benchmark.extra_info.update({
        "ablation": "sminn_topology", "topology": topology, "n": len(values),
        "l": 6, "key_size": MEASURED_KEY_BITS,
        "sequential_rounds": (SecureMinimumOfN.tree_depth(len(values))
                              if topology == "tournament" else len(values) - 1),
    })
    benchmark.pedantic(lambda: protocol.run(encrypted), rounds=1, iterations=1)


@pytest.mark.parametrize("reexpand", [True, False])
def test_ablation_sknnm_reexpansion(benchmark, measured_keypair, reexpand):
    """Cost of Algorithm 6's per-iteration re-expansion of E(d_i)."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=8, dimensions=2, distance_bits=7, seed=700)
    protocol = SkNNSecure(cloud, distance_bits=7,
                          reexpand_each_iteration=reexpand)
    encrypted_query = client.encrypt_query([1, 1])
    benchmark.extra_info.update({"ablation": "sknnm_reexpansion",
                                 "reexpand": reexpand, "n": 8, "k": 2,
                                 "key_size": MEASURED_KEY_BITS})
    benchmark.pedantic(lambda: protocol.run(encrypted_query, 2),
                       rounds=1, iterations=1)
