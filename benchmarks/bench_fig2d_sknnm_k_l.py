"""Figure 2(d): SkNN_m computation time vs. k and l, for n=2000, m=6, K=512.

Paper observation to reproduce: SkNN_m grows almost linearly with both k (the
number of neighbors) and l (the bit length of the distance domain); e.g. at
l=6 the time grows from 11.93 to 55.65 minutes as k goes from 5 to 25.

Measured here: real SkNN_m runs at reduced scale (n=10, m=3) for two k values
and two l values.  Projected: the paper grid k = 5..25, l in {6, 12} at K=512.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    MEASURED_KEY_BITS,
    PAPER_K_VALUES,
    PAPER_L_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2d_series
from repro.analysis.reporting import ascii_plot
from repro.core.sknn_secure import SkNNSecure

MEASURED_N = 10
MEASURED_M = 3

MEASURED_CONFIGS = [
    (1, 8),   # k=1, l=8
    (2, 8),   # k=2, l=8  — roughly double the iteration cost
    (1, 10),  # k=1, l=10 — larger distance domain
]


@pytest.mark.parametrize("k,distance_bits", MEASURED_CONFIGS)
def test_fig2d_measured_sknnm(benchmark, measured_keypair, k, distance_bits):
    """Measured SkNN_m runs at reduced scale (shape check for Fig 2d)."""
    cloud, client, _ = deploy_measured_system(
        measured_keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=distance_bits, seed=200 + k + distance_bits)
    protocol = SkNNSecure(cloud, distance_bits=distance_bits)
    encrypted_query = client.encrypt_query([1] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "2d", "protocol": "SkNNm", "n": MEASURED_N, "m": MEASURED_M,
        "k": k, "l": distance_bits, "key_size": MEASURED_KEY_BITS,
        "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, k),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2d_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(d): k and l sweep at n=2000, m=6, K=512."""
    def build():
        return figure_2d_series(calibrator, key_size=512,
                                k_values=PAPER_K_VALUES, l_values=PAPER_L_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    text = series.to_text() + "\n" + ascii_plot(series)
    write_result(results_dir, "fig2d_sknnm_k_l_K512.txt", text)
    write_bench_json(results_dir, "fig2d_sknnm_k_l_K512", {
        "kind": "projected", "figure": "2d",
        "params": {"n": 2000, "m": 6, "key_size": 512,
                   "k_values": PAPER_K_VALUES, "l_values": PAPER_L_VALUES},
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2d", "kind": "projected"})
    rows = series.rows()
    # Roughly linear in k: the k=25 point is ~4-5x the k=5 point.
    assert 3.5 < rows[-1]["l=6"] / rows[0]["l=6"] < 5.5
    # Larger l costs more at every k.
    assert all(row["l=12"] > row["l=6"] for row in rows)
