"""Figure 2(b): SkNN_b computation time vs. n and m at K = 1024 bits.

Paper observation to reproduce: the same linear scaling as Figure 2(a) but
roughly 7x slower because the Paillier key size doubles from 512 to 1024 bits.

Measured here: one SkNN_b run at 256-bit and one at 512-bit keys on the same
reduced workload, giving the measured slowdown factor for a key-size doubling
on this machine.  Projected: the full paper grid at K = 1024 plus the
512-vs-1024 slowdown factor derived from calibration.
"""

from __future__ import annotations

from random import Random

import pytest

from benchmarks.conftest import (
    PAPER_M_VALUES,
    PAPER_N_VALUES,
    deploy_measured_system,
    write_bench_json,
    write_result,
)
from benchmarks.projections import figure_2a_series
from repro.analysis.reporting import ascii_plot, format_table
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.paillier import generate_keypair

MEASURED_N = 30
MEASURED_M = 6


@pytest.mark.parametrize("key_size", [256, 512])
def test_fig2b_measured_key_size_scaling(benchmark, key_size):
    """Measured SkNN_b run at two key sizes (the doubling gives the ~7x factor)."""
    keypair = generate_keypair(key_size, Random(key_size))
    cloud, client, _ = deploy_measured_system(
        keypair, n_records=MEASURED_N, dimensions=MEASURED_M,
        distance_bits=10, seed=key_size)
    protocol = SkNNBasic(cloud)
    encrypted_query = client.encrypt_query([1] * MEASURED_M)

    benchmark.extra_info.update({
        "figure": "2b", "protocol": "SkNNb", "n": MEASURED_N, "m": MEASURED_M,
        "k": 5, "key_size": key_size, "kind": "measured",
    })
    benchmark.pedantic(lambda: protocol.run(encrypted_query, 5),
                       rounds=1, iterations=1, warmup_rounds=0)


def test_fig2b_projected_paper_scale(benchmark, calibrator, results_dir):
    """Projected Figure 2(b): paper grid at K=1024, plus the slowdown factor."""
    def build():
        return figure_2a_series(calibrator, key_size=1024,
                                n_values=PAPER_N_VALUES, m_values=PAPER_M_VALUES)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    slowdown = calibrator.key_size_slowdown(512, 1024)
    factor_table = format_table([{
        "K=512 -> K=1024 measured per-op slowdown": round(slowdown, 2),
        "paper reports": "about 7x",
    }])
    text = series.to_text() + "\n" + ascii_plot(series) + "\n" + factor_table
    write_result(results_dir, "fig2b_sknnb_n_m_K1024.txt", text)
    write_bench_json(results_dir, "fig2b_sknnb_n_m_K1024", {
        "kind": "projected", "figure": "2b",
        "params": {"key_size": 1024, "k": 5, "n_values": PAPER_N_VALUES,
                   "m_values": PAPER_M_VALUES},
        "slowdown_512_to_1024": slowdown,
        "rows": series.rows(),
    })
    benchmark.extra_info.update({"figure": "2b", "kind": "projected",
                                 "slowdown_512_to_1024": slowdown})
    # The paper's "factor of 7" observation: accept anything clearly super-linear.
    assert 4.0 < slowdown < 12.0
