"""Online-latency benchmark: warm precompute pools vs. the inline batched path.

PR 2 made the crypto kernel fast per call; the precomputation engine makes
the *online* path nearly powmod-free by moving the query-independent
exponentiations (obfuscators, mask encryptions, constant ciphertexts) into
idle time.  This bench quantifies that offline/online split on a full
SkNN_b query:

* **inline** — :class:`~repro.core.sknn_basic.SkNNBasic` without an engine:
  the PR 2 vectorized path (comb obfuscators, generic batched SM), paying
  every exponentiation inside the query.
* **warm** — the same protocol instance with warmed per-cloud
  :class:`~repro.crypto.precompute.PrecomputeEngine`s attached (one per
  cloud, each filled with its own randomness, as the non-colluding model
  requires): scan and delivery masks come from C1's precomputed tuples,
  C2's re-encryptions from C2's pooled obfuscators, and the scan runs the
  squaring specialization (1 decryption + 1 exponentiation per attribute
  online).

Pools are refilled **between** timed runs (that is the engine's contract:
refills happen off the critical path), and the refill cost is reported
separately as the offline price of one warm query.

The gate asserts the warm online path is at least ``MIN_SPEEDUP`` times
faster than the inline path and that both paths return identical neighbor
records.  Key size defaults to the paper's K=512; CI smoke runs set
``REPRO_BENCH_ONLINE_BITS=256`` (smaller margin required, same direction).
Results go to ``benchmarks/results/`` as a txt table and machine-readable
``BENCH_online_latency_K<bits>.json``.
"""

from __future__ import annotations

import os
import time
from itertools import count
from random import Random

import pytest

from benchmarks.conftest import write_bench_json, write_result
from repro.analysis.cost_model import (OfflineOnlineCounts, sknn_basic_counts,
                                       sknn_basic_split_counts)
from repro.analysis.reporting import format_table
from repro.telemetry import tracing
from repro.telemetry import profiling as tprofiling
from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.backend import get_backend
from repro.crypto.paillier import generate_keypair
from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.resilience import (Deadline, DurableReplyCache, ReplyCache,
                              RetryPolicy, retry_call)

ONLINE_KEY_BITS = int(os.environ.get("REPRO_BENCH_ONLINE_BITS", "512"))
ONLINE_N = int(os.environ.get("REPRO_BENCH_ONLINE_N", "16"))
ONLINE_M = 3
ONLINE_K = 2
#: measured repeats per path (best-of, to damp scheduler noise)
REPEATS = int(os.environ.get("REPRO_BENCH_ONLINE_REPEATS",
                             "2" if ONLINE_KEY_BITS >= 512 else "5"))
#: required warm-vs-inline speedup; the acceptance bar of 1.5x applies at
#: paper scale, smaller keys keep a direction-only gate for CI smoke runs.
MIN_SPEEDUP = 1.5 if ONLINE_KEY_BITS >= 512 else 1.1
#: tracing a query (span per protocol round) must cost <= 5% wall clock.
TELEMETRY_OVERHEAD_GATE = 0.05
#: arming the resilience stack (shared deadline, retry wrapper, idempotent
#: reply memo) on the happy path must also cost <= 5% wall clock.
RESILIENCE_OVERHEAD_GATE = 0.05
#: swapping the reply memo for its durable variant (one CRC-framed,
#: fsync-ed journal append per completed query) must also cost <= 5%.
DURABILITY_OVERHEAD_GATE = 0.05
#: arming the ~100 Hz sampling profiler plus the per-query cost ledger on
#: the warm online path must also cost <= 5% wall clock.
PROFILING_OVERHEAD_GATE = 0.05


@pytest.fixture(scope="module")
def online_keypair():
    """One key pair shared by both measured paths."""
    return generate_keypair(ONLINE_KEY_BITS, Random(6464))


def _best_of(fn, repeats: int, between=None) -> float:
    best = None
    for index in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        if between is not None and index + 1 < repeats:
            between()
    return best


def _paired_overhead(wrapped: list, baseline: list) -> float:
    """Median of per-round wrapped/baseline ratios.

    Each round's samples run back to back, so machine drift cancels within
    a pair, and the median sheds the occasional scheduler-outlier round
    that a best-of comparison would amplify.
    """
    ratios = sorted(w / b for w, b in zip(wrapped, baseline))
    mid = len(ratios) // 2
    median = (ratios[mid] if len(ratios) % 2
              else (ratios[mid - 1] + ratios[mid]) / 2.0)
    return median - 1.0


def _engine_window(before: dict, after: dict) -> dict:
    """Delta of two :meth:`PrecomputeEngine.stats` snapshots."""
    return {
        "offline_encryptions": (after["offline_encryptions"]
                                - before["offline_encryptions"]),
        "obfuscator_hits": after["obfuscator_hits"] - before["obfuscator_hits"],
        "hits": {name: count - before["hits"].get(name, 0)
                 for name, count in after["hits"].items()},
    }


def test_online_latency_warm_pools_vs_inline(benchmark, online_keypair,
                                             results_dir, tmp_path):
    """Warm pools must make the online SkNN_b query >= MIN_SPEEDUP faster."""
    public_key = online_keypair.public_key
    table = synthetic_uniform(n_records=ONLINE_N, dimensions=ONLINE_M,
                              distance_bits=10, seed=777)
    owner = DataOwner(table, keypair=online_keypair, rng=Random(778))
    cloud = FederatedCloud.deploy(online_keypair, rng=Random(779))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(public_key, ONLINE_M, rng=Random(780))
    query = [4, 9, 2]
    encrypted_query = client.encrypt_query(query)
    protocol = SkNNBasic(cloud)

    def measure():
        # Warm the per-key comb table outside both measurements (the inline
        # path builds it lazily on the first batch encryption).
        protocol.run(encrypted_query, ONLINE_K)

        inline_seconds = _best_of(
            lambda: protocol.run(encrypted_query, ONLINE_K), REPEATS)
        inline_shares = protocol.run(encrypted_query, ONLINE_K)

        c1_engine = PrecomputeEngine(
            public_key, rng=Random(781),
            config=PrecomputeConfig.for_query_load(
                ONLINE_N, ONLINE_M, ONLINE_K, queries=1))
        c2_engine = PrecomputeEngine(
            public_key, rng=Random(782),
            config=PrecomputeConfig.for_decryptor_load(
                ONLINE_N, ONLINE_M, ONLINE_K, queries=1))

        def refill_all():
            c1_engine.warm()
            c2_engine.warm()

        refill_started = time.perf_counter()
        refill_all()
        refill_seconds = time.perf_counter() - refill_started
        cloud.attach_engine(c1_engine, c2_engine)
        try:
            def warm_run():
                protocol.run(encrypted_query, ONLINE_K)

            # Telemetry overhead: the same warm path with a live trace
            # collecting every protocol-round span.  The acceptance bar is
            # <= 5% on the latency-critical (warm) path.
            def traced_run():
                with tracing.trace("bench.telemetry_overhead",
                                   party="C1") as root:
                    protocol.run(encrypted_query, ONLINE_K)
                tracing.get_tracer().take(root.trace_id)

            # Resilience overhead: the same warm path with the full client
            # resilience stack armed — one shared absolute deadline, the
            # retry wrapper and a per-query idempotency memo — on a run
            # where nothing fails.  Every query uses a fresh key, so the
            # memo does bookkeeping (insert + evict), never a replay.
            reply_cache = ReplyCache(capacity=8, name="bench")
            retry_policy = RetryPolicy()
            retry_rng = Random(783)
            query_ids = count(1)

            def resilient_run():
                key = f"bench-q-{next(query_ids)}"
                retry_call(
                    lambda: reply_cache.run(
                        key,
                        lambda: protocol.run(encrypted_query, ONLINE_K)),
                    retry_policy, op="bench.resilience", rng=retry_rng,
                    deadline=Deadline(60.0))

            # Durability overhead: the same armed stack, but the reply memo
            # is the durable variant — every completed query appends one
            # CRC-framed record to an fsync-ed journal before the reply
            # becomes visible (the crash-recovery write path, on a run
            # where nothing crashes).
            durable_cache = DurableReplyCache(
                tmp_path / "bench-replies.journal", capacity=8,
                name="bench-durable")

            def durable_wire_reply():
                # The daemon journals the wire-shaped reply payload (plain
                # ints and lists), not the ResultShares object — mirror that
                # so the journal write is representative.
                shares = protocol.run(encrypted_query, ONLINE_K)
                return {"masks": shares.masks_from_c1,
                        "masked": shares.masked_values_from_c2,
                        "modulus": shares.modulus,
                        "delivery_id": shares.delivery_id}

            def durable_run():
                key = f"bench-dq-{next(query_ids)}"
                retry_call(
                    lambda: durable_cache.run(key, durable_wire_reply),
                    retry_policy, op="bench.durability", rng=retry_rng,
                    deadline=Deadline(60.0))

            # Profiling overhead: the same warm path with the ~100 Hz
            # sampling profiler armed and a per-query cost ledger
            # attributing Paillier ops + wall time to protocol phases —
            # the exact instrumentation a `--profile` daemon runs per
            # query.  The profiler is always-on in the daemon, so its
            # thread is started/stopped outside the timed window; the
            # in-query cost under test is the sampling itself plus the
            # ledger's snapshot/flush work.
            profiler = tprofiling.SamplingProfiler()

            def profiled_run():
                ledger = tprofiling.CostLedger.for_cloud(cloud, party="C1")
                with ledger.activate():
                    protocol.run(encrypted_query, ONLINE_K)
                ledger.finish()

            def timed(fn):
                refill_all()
                started = time.perf_counter()
                fn()
                return time.perf_counter() - started

            # The three warm variants are sampled interleaved, one of each
            # per round, so slow drift (CPU frequency, allocator state)
            # lands on all of them equally instead of penalizing whichever
            # path happens to run last; the overhead gates then compare
            # best-of samples taken under the same conditions.
            samples = {"warm": [], "traced": [], "resilient": [],
                       "durable": [], "profiled": []}
            for _ in range(REPEATS):
                samples["warm"].append(timed(warm_run))
                samples["traced"].append(timed(traced_run))
                samples["resilient"].append(timed(resilient_run))
                samples["durable"].append(timed(durable_run))
                profiler.start()
                samples["profiled"].append(timed(profiled_run))
                profiler.stop()
            # The profiling delta (a ~100 Hz sampler + ledger snapshots) is
            # small relative to scheduler noise, so its gate gets twice the
            # paired rounds to stabilize the median.
            for _ in range(REPEATS):
                samples["warm"].append(timed(warm_run))
                profiler.start()
                samples["profiled"].append(timed(profiled_run))
                profiler.stop()
            durable_cache.close()
            warm_seconds = min(samples["warm"])
            traced_seconds = min(samples["traced"])
            resilient_seconds = min(samples["resilient"])
            durable_seconds = min(samples["durable"])
            profiled_seconds = min(samples["profiled"])
            telemetry_overhead = _paired_overhead(samples["traced"],
                                                  samples["warm"])
            resilience_overhead = _paired_overhead(samples["resilient"],
                                                   samples["warm"])
            durability_overhead = _paired_overhead(samples["durable"],
                                                   samples["warm"])
            profiling_overhead = _paired_overhead(samples["profiled"],
                                                  samples["warm"])

            # Measured offline/online split over one windowed warm query:
            # the refill is the offline price, the reported run the online
            # one (pool hits subtracted from the encryption counter).
            before = {"c1": c1_engine.stats(), "c2": c2_engine.stats()}
            refill_all()
            warm_shares = protocol.run_with_report(encrypted_query, ONLINE_K)
            measured_split = OfflineOnlineCounts.from_measurements(
                protocol.last_report.stats,
                _engine_window(before["c1"], c1_engine.stats()),
                _engine_window(before["c2"], c2_engine.stats()))
            stats = {"c1": c1_engine.stats(), "c2": c2_engine.stats()}
        finally:
            cloud.attach_engine(None)
        return (inline_seconds, warm_seconds, traced_seconds,
                resilient_seconds, durable_seconds, profiled_seconds,
                telemetry_overhead, resilience_overhead,
                durability_overhead, profiling_overhead,
                refill_seconds, inline_shares, warm_shares, stats,
                measured_split)

    (inline_seconds, warm_seconds, traced_seconds, resilient_seconds,
     durable_seconds, profiled_seconds, telemetry_overhead,
     resilience_overhead, durability_overhead, profiling_overhead,
     refill_seconds, inline_shares,
     warm_shares, stats, measured_split) = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0)
    speedup = inline_seconds / warm_seconds

    # Protocol outputs must be bit-identical across the two paths (the
    # ciphertext randomness differs; the delivered plaintext records do not).
    inline_neighbors = client.reconstruct(inline_shares)
    warm_neighbors = client.reconstruct(warm_shares)
    assert inline_neighbors == warm_neighbors
    oracle = [r.record.values for r in LinearScanKNN(table).query(query,
                                                                 ONLINE_K)]
    assert warm_neighbors == oracle

    split = sknn_basic_split_counts(ONLINE_N, ONLINE_M, ONLINE_K)
    inline_model = sknn_basic_counts(ONLINE_N, ONLINE_M, ONLINE_K,
                                     batched=True)
    rows = [{
        "path": "inline (PR 2 batched)",
        "online (ms)": inline_seconds * 1000,
        "offline (ms)": 0.0,
    }, {
        "path": "warm pools",
        "online (ms)": warm_seconds * 1000,
        "offline (ms)": refill_seconds * 1000,
    }, {
        "path": "warm pools + tracing",
        "online (ms)": traced_seconds * 1000,
        "offline (ms)": refill_seconds * 1000,
    }, {
        "path": "warm pools + resilience",
        "online (ms)": resilient_seconds * 1000,
        "offline (ms)": refill_seconds * 1000,
    }, {
        "path": "warm pools + durability",
        "online (ms)": durable_seconds * 1000,
        "offline (ms)": refill_seconds * 1000,
    }, {
        "path": "warm pools + profiling",
        "online (ms)": profiled_seconds * 1000,
        "offline (ms)": refill_seconds * 1000,
    }]
    text = (f"SkNN_b online latency (K={ONLINE_KEY_BITS}, n={ONLINE_N}, "
            f"m={ONLINE_M}, k={ONLINE_K}, backend={get_backend().name})\n"
            + format_table(rows)
            + f"warm-pool speedup: {speedup:.2f}x (gate {MIN_SPEEDUP}x)\n"
            + f"telemetry overhead: {telemetry_overhead * 100:+.2f}% "
            + f"(gate {TELEMETRY_OVERHEAD_GATE * 100:.0f}%)\n"
            + f"resilience overhead: {resilience_overhead * 100:+.2f}% "
            + f"(gate {RESILIENCE_OVERHEAD_GATE * 100:.0f}%)\n"
            + f"durability overhead: {durability_overhead * 100:+.2f}% "
            + f"(gate {DURABILITY_OVERHEAD_GATE * 100:.0f}%)\n"
            + f"profiling overhead: {profiling_overhead * 100:+.2f}% "
            + f"(gate {PROFILING_OVERHEAD_GATE * 100:.0f}%)\n")
    write_result(results_dir, f"online_latency_K{ONLINE_KEY_BITS}.txt", text)
    write_bench_json(results_dir, f"online_latency_K{ONLINE_KEY_BITS}", {
        "kind": "measured",
        "params": {"key_size": ONLINE_KEY_BITS, "n": ONLINE_N, "m": ONLINE_M,
                   "k": ONLINE_K, "repeats": REPEATS},
        "timings": {
            "inline_query_s": inline_seconds,
            "warm_query_s": warm_seconds,
            "traced_query_s": traced_seconds,
            "resilient_query_s": resilient_seconds,
            "durable_query_s": durable_seconds,
            "profiled_query_s": profiled_seconds,
            "offline_refill_s": refill_seconds,
            "speedup": speedup,
            "telemetry_overhead": telemetry_overhead,
            "resilience_overhead": resilience_overhead,
            "durability_overhead": durability_overhead,
            "profiling_overhead": profiling_overhead,
        },
        "model": {
            "inline_counts": inline_model.as_dict(),
            "split": split.as_dict(),
            "measured_split": measured_split.as_dict(),
        },
        "engine_stats": stats,
    })
    benchmark.extra_info.update({
        "subsystem": "precompute", "key_size": ONLINE_KEY_BITS,
        "backend": get_backend().name, "speedup": speedup,
        "telemetry_overhead": telemetry_overhead,
        "resilience_overhead": resilience_overhead,
        "durability_overhead": durability_overhead,
        "profiling_overhead": profiling_overhead,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"warm-pool online path ({warm_seconds:.3f}s) must be >= "
        f"{MIN_SPEEDUP}x faster than the inline path "
        f"({inline_seconds:.3f}s); got {speedup:.2f}x")
    assert telemetry_overhead <= TELEMETRY_OVERHEAD_GATE, (
        f"tracing the warm path ({traced_seconds:.3f}s) must stay within "
        f"{TELEMETRY_OVERHEAD_GATE:.0%} of the untraced run "
        f"({warm_seconds:.3f}s); got {telemetry_overhead:+.2%}")
    assert resilience_overhead <= RESILIENCE_OVERHEAD_GATE, (
        f"arming deadlines+retry+idempotency ({resilient_seconds:.3f}s) "
        f"must stay within {RESILIENCE_OVERHEAD_GATE:.0%} of the bare warm "
        f"run ({warm_seconds:.3f}s); got {resilience_overhead:+.2%}")
    assert durability_overhead <= DURABILITY_OVERHEAD_GATE, (
        f"the durable reply journal ({durable_seconds:.3f}s) must stay "
        f"within {DURABILITY_OVERHEAD_GATE:.0%} of the bare warm run "
        f"({warm_seconds:.3f}s); got {durability_overhead:+.2%}")
    assert profiling_overhead <= PROFILING_OVERHEAD_GATE, (
        f"profiler + cost ledger ({profiled_seconds:.3f}s) must stay "
        f"within {PROFILING_OVERHEAD_GATE:.0%} of the bare warm run "
        f"({warm_seconds:.3f}s); got {profiling_overhead:+.2%}")
