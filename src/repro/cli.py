"""Command-line interface for the SkNN reproduction library.

Usage (after installation)::

    python -m repro demo                        # run the paper's Example 1
    python -m repro query --n 50 --m 4 --k 3    # secure query on synthetic data
    python -m repro calibrate --key-size 512    # per-operation Paillier costs
    python -m repro project --figure 2a         # paper-scale projected series
    python -m repro inventory                   # list figures / bench targets

The CLI is a thin veneer over the library: each subcommand maps onto the same
public API the examples and the benchmark harness use, so it doubles as a
smoke test of the end-to-end system on any machine.
"""

from __future__ import annotations

import argparse
import sys
from random import Random
from typing import Sequence

from repro.analysis.calibration import Calibrator
from repro.analysis.reporting import format_table
from repro.core.system import SkNNSystem
from repro.db.datasets import (
    heart_disease_example_query,
    heart_disease_table,
    synthetic_uniform,
)
from repro.db.knn import LinearScanKNN

__all__ = ["main", "build_parser"]

#: Experiment inventory printed by ``repro inventory`` (mirrors DESIGN.md §4).
EXPERIMENT_INVENTORY: tuple[dict[str, str], ...] = (
    {"figure": "Table 1/2", "description": "heart-disease running example (k=2 -> t4, t5)",
     "bench": "tests/integration/test_paper_example.py"},
    {"figure": "2a", "description": "SkNNb vs n and m (k=5, K=512)",
     "bench": "benchmarks/bench_fig2a_sknnb_n_m.py"},
    {"figure": "2b", "description": "SkNNb vs n and m (k=5, K=1024)",
     "bench": "benchmarks/bench_fig2b_sknnb_keysize.py"},
    {"figure": "2c", "description": "SkNNb vs k (n=2000, m=6)",
     "bench": "benchmarks/bench_fig2c_sknnb_k.py"},
    {"figure": "2d", "description": "SkNNm vs k and l (K=512)",
     "bench": "benchmarks/bench_fig2d_sknnm_k_l.py"},
    {"figure": "2e", "description": "SkNNm vs k and l (K=1024)",
     "bench": "benchmarks/bench_fig2e_sknnm_keysize.py"},
    {"figure": "2f", "description": "SkNNb vs SkNNm (n=2000, m=6, l=6, K=512)",
     "bench": "benchmarks/bench_fig2f_basic_vs_secure.py"},
    {"figure": "3", "description": "serial vs parallel SkNNb (m=6, k=5, K=512)",
     "bench": "benchmarks/bench_fig3_parallel.py"},
    {"figure": "5.2", "description": "SMINn share and Bob's cost",
     "bench": "benchmarks/bench_section52_breakdown.py"},
    {"figure": "beyond-paper", "description": "sharded serving throughput "
     "(shards x workers x batch x randomness pool)",
     "bench": "benchmarks/bench_service_throughput.py"},
    {"figure": "beyond-paper", "description": "offline/online split: warm "
     "precompute pools vs inline SkNN_b latency",
     "bench": "benchmarks/bench_online_latency.py"},
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure k-nearest neighbor query over encrypted data "
                    "(Elmehdwi, Samanthula & Jiang, ICDE 2014).",
    )
    parser.add_argument(
        "--crypto-backend", choices=["auto", "python", "gmpy2"], default=None,
        help="bigint backend for all Paillier arithmetic (default: the "
             "REPRO_CRYPTO_BACKEND environment variable, else auto — gmpy2 "
             "when importable, pure Python otherwise)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run the paper's Example 1 on the heart-disease sample")
    demo.add_argument("--key-size", type=int, default=256,
                      help="Paillier key size in bits (default: 256)")
    demo.add_argument("--mode", choices=["basic", "secure"], default="secure",
                      help="protocol to run (default: secure)")

    query = subparsers.add_parser(
        "query", help="answer a kNN query over an encrypted synthetic table")
    query.add_argument("--n", type=int, default=30, help="number of records")
    query.add_argument("--m", type=int, default=3, help="number of attributes")
    query.add_argument("--k", type=int, default=3, help="neighbors to return")
    query.add_argument("--l", type=int, default=8,
                       help="distance domain bit length")
    query.add_argument("--key-size", type=int, default=256,
                       help="Paillier key size in bits")
    query.add_argument("--mode",
                       choices=["basic", "secure", "parallel", "sharded",
                                "distributed"],
                       default="basic",
                       help="protocol to run (distributed spawns a local "
                            "C1+C2 daemon pair and queries them over TCP)")
    query.add_argument("--connect-c1", metavar="HOST:PORT", default=None,
                       help="address of an already-running C1 daemon; with "
                            "--connect-c2, the command provisions the pair "
                            "and queries over TCP instead of simulating")
    query.add_argument("--connect-c2", metavar="HOST:PORT", default=None,
                       help="address of an already-running C2 daemon")
    query.add_argument("--precompute", type=int, default=0,
                       help="warm a precomputation engine sized for this many "
                            "queries before answering (0 disables); moves the "
                            "obfuscator/mask exponentiations off the online "
                            "path")
    query.add_argument("--seed", type=int, default=0, help="workload seed")
    query.add_argument("--retries", type=int, default=4,
                       help="max attempts per remote operation in connected/"
                            "distributed mode (1 disables retries)")
    query.add_argument("--request-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="bound on each remote request/reply round trip; "
                            "an unreachable daemon then fails fast with a "
                            "typed error instead of hanging (default: wait)")

    calibrate = subparsers.add_parser(
        "calibrate", help="measure Paillier per-operation costs on this machine")
    calibrate.add_argument("--key-size", type=int, action="append",
                           dest="key_sizes", default=None,
                           help="key size(s) to calibrate (repeatable; "
                                "default: 512 and 1024)")
    calibrate.add_argument("--samples", type=int, default=15,
                           help="operations timed per primitive")

    project = subparsers.add_parser(
        "project", help="print a paper-scale projected series for one figure")
    project.add_argument("--figure", required=True,
                         choices=["2a", "2b", "2c", "2d", "2e", "2f", "3"],
                         help="paper figure to project")
    project.add_argument("--samples", type=int, default=10,
                         help="calibration samples per primitive")

    serve = subparsers.add_parser(
        "serve", help="serve concurrent kNN queries over a sharded encrypted "
                      "table and verify every answer against the plaintext oracle")
    serve.add_argument("--n", type=int, default=48, help="number of records")
    serve.add_argument("--m", type=int, default=3, help="number of attributes")
    serve.add_argument("--k", type=int, default=2, help="neighbors per query")
    serve.add_argument("--l", type=int, default=9,
                       help="distance domain bit length")
    serve.add_argument("--key-size", type=int, default=256,
                       help="Paillier key size in bits")
    serve.add_argument("--shards", type=int, default=2,
                       help="number of C1 shards")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent worker pool size")
    serve.add_argument("--backend", choices=["process", "thread", "serial"],
                       default="process", help="worker pool backend")
    serve.add_argument("--batch-size", type=int, default=4,
                       help="max queries grouped into one scan pass")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent Bob sessions")
    serve.add_argument("--queries", type=int, default=8,
                       help="total queries across all sessions")
    serve.add_argument("--pool-size", type=int, default=64,
                       help="precomputed randomness pool size (0 disables)")
    serve.add_argument("--precompute", type=int, default=0,
                       help="size the sharded store's precomputation engine "
                            "for this many queries (0 disables); the server "
                            "refills it in idle scheduler slots")
    serve.add_argument("--precompute-producer", action="store_true",
                       help="also run the engine's background producer thread")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")

    party = subparsers.add_parser(
        "party", help="run one cloud party (C1 or C2) as a network daemon")
    party.add_argument("--role", choices=["c1", "c2"], required=True,
                       help="which cloud this process plays")
    party.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="listen address (port 0 = ephemeral; "
                            "default: 127.0.0.1:0)")
    party.add_argument("--port-file", default=None,
                       help="write the bound 'host port' here once listening "
                            "(how supervisors discover ephemeral ports)")
    party.add_argument("--pool-cache", default=None,
                       help="persist warmed precompute pools to this file at "
                            "shutdown and reload them at startup, so a "
                            "restarted party starts hot")
    party.add_argument("--state-dir", default=None, metavar="DIR",
                       help="persist daemon state (C2 share mailbox, C1 "
                            "reply cache, provision manifest) under this "
                            "directory via crash-consistent journals, so a "
                            "killed-and-restarted party replays pending "
                            "deliveries and serves retried fetches without "
                            "re-provisioning (disabled by default)")
    party.add_argument("--journal-compact-every", type=int, default=512,
                       metavar="N",
                       help="rewrite a state journal once it exceeds N "
                            "records (default: 512)")
    party.add_argument("--no-state-fsync", action="store_true",
                       help="skip fsync on state-journal appends and "
                            "snapshot writes (faster, but a power loss may "
                            "drop the latest records; process crashes are "
                            "still covered)")
    party.add_argument("--log-level", default="info",
                       choices=["debug", "info", "warning", "error"],
                       help="daemon log verbosity (default: info)")
    party.add_argument("--metrics-listen", default=None, metavar="HOST:PORT",
                       help="serve Prometheus /metrics and JSON /stats on a "
                            "side HTTP listener (port 0 = ephemeral; "
                            "disabled by default)")
    party.add_argument("--slow-query-seconds", type=float, default=1.0,
                       help="log queries slower than this wall time as "
                            "structured warnings (default: 1.0; <=0 disables)")
    party.add_argument("--json-logs", action="store_true",
                       help="emit one JSON object per log line (trace-aware) "
                            "instead of the plain text format")
    party.add_argument("--io-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="bound on every mid-protocol read/write on the "
                            "C1<->C2 peer channel; a dead peer surfaces as a "
                            "typed retriable error instead of a hung query "
                            "(default: 120; <=0 disables)")
    party.add_argument("--profile", action="store_true",
                       help="arm an always-on ~100 Hz sampling profiler; "
                            "collapsed stacks are scrapeable at the metrics "
                            "listener's /profile endpoint and via "
                            "'repro stats --profile'")
    party.add_argument("--peer-connections", type=int, default=1,
                       metavar="N",
                       help="size of a C1 daemon's pool of persistent "
                            "multiplexed connections to C2; concurrent "
                            "queries pipeline across the pool (default: 1)")
    party.add_argument("--shard-index", type=int, default=None, metavar="I",
                       help="run this C1 daemon as shard I of a horizontally "
                            "partitioned table (holds one slice, answers "
                            "transport.scan from a coordinator)")
    party.add_argument("--shard-count", type=int, default=None, metavar="N",
                       help="total number of shard daemons in the deployment "
                            "(required with --shard-index)")

    stats = subparsers.add_parser(
        "stats", help="pretty-print a running daemon's live statistics")
    stats.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="control address of the daemon to inspect")
    stats.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                       help="refresh every N seconds until interrupted")
    stats.add_argument("--metrics", action="store_true",
                       help="also dump the raw Prometheus exposition text")
    stats.add_argument("--profile", type=float, default=None,
                       metavar="SECONDS",
                       help="capture N seconds of sampling-profiler stacks "
                            "from the daemon and print them collapsed "
                            "(flamegraph.pl input format)")

    bench = subparsers.add_parser(
        "bench", help="run the benchmark-history suite and its regression "
                      "gate (benchmarks/history/*.jsonl)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="run registered benches and append provenance-stamped "
                    "records to the history")
    bench_run.add_argument("--quick", action="store_true",
                           help="smallest problem sizes (CI default)")
    bench_run.add_argument("--filter", default=None, metavar="NAME",
                           help="only benches whose name contains NAME")
    bench_run.add_argument("--history-dir", default="benchmarks/history",
                           help="history directory (default: "
                                "benchmarks/history)")
    bench_report = bench_sub.add_parser(
        "report", help="render ASCII trend reports from the history")
    bench_report.add_argument("--bench", default=None,
                              help="one benchmark (default: all)")
    bench_report.add_argument("--last", type=int, default=30,
                              help="runs shown per trend (default: 30)")
    bench_report.add_argument("--history-dir", default="benchmarks/history")
    bench_check = bench_sub.add_parser(
        "check", help="fail (exit 1) if the latest run of any benchmark "
                      "regressed beyond its median±MAD baseline")
    bench_check.add_argument("--bench", default=None,
                             help="one benchmark (default: all)")
    bench_check.add_argument("--history-dir", default="benchmarks/history")

    subparsers.add_parser(
        "inventory", help="list every reproduced table/figure and its bench target")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _run_demo(args: argparse.Namespace) -> int:
    table = heart_disease_table(include_diagnosis=False)
    query = heart_disease_example_query()
    print("Heart-disease sample (Table 1), query of Example 1, k=2")
    system = SkNNSystem.setup(table, key_size=args.key_size, mode=args.mode,
                              rng=Random(2014))
    answer = system.query_with_report(list(query), 2)
    for rank, record in enumerate(answer.neighbors, start=1):
        print(f"  neighbor {rank}: {record}")
    expected = [r.record.values for r in LinearScanKNN(table).query(query, 2)]
    matches = answer.neighbors == expected
    print(f"matches plaintext answer: {matches}")
    if answer.report is not None:
        print(f"cloud wall time: {answer.report.wall_time_seconds:.2f} s, "
              f"encryptions: {answer.report.stats.total_encryptions}, "
              f"decryptions: {answer.report.stats.total_decryptions}")
    return 0 if matches else 1


def _run_query(args: argparse.Namespace) -> int:
    table = synthetic_uniform(n_records=args.n, dimensions=args.m,
                              distance_bits=args.l, seed=args.seed)
    rng = Random(args.seed + 1)
    query = [rng.randint(0, max(a.maximum for a in table.schema))
             for _ in range(args.m)]
    if (args.connect_c1 is None) != (args.connect_c2 is None):
        print("--connect-c1 and --connect-c2 must be given together",
              file=sys.stderr)
        return 2
    if args.connect_c1 is not None:
        return _run_query_connected(args, table, query)
    print(f"{table.describe()}; query={query}, k={args.k}, mode={args.mode}"
          + (f", precompute={args.precompute}" if args.precompute else ""))
    with SkNNSystem.setup(table, key_size=args.key_size, mode=args.mode,
                          k_default=args.k, rng=Random(args.seed + 2),
                          precompute=args.precompute) as system:
        answer = system.query_with_report(query, args.k)
        engines = [engine for engine in (system.precompute_engine,
                                         system.decryptor_precompute_engine)
                   if engine is not None]
        if engines:
            offline = sum(e.offline.encryptions for e in engines)
            pooled = sum(e.pool_hit_total() for e in engines)
            print(f"precompute: {offline} offline exponentiations across "
                  f"{len(engines)} per-cloud engines, "
                  f"{pooled} pooled items consumed")
    for rank, record in enumerate(answer.neighbors, start=1):
        print(f"  neighbor {rank}: {record}")
    expected_distances = sorted(
        r.squared_distance for r in LinearScanKNN(table).query(query, args.k))
    from repro.db.knn import squared_euclidean
    returned_distances = sorted(squared_euclidean(record, query)
                                for record in answer.neighbors)
    matches = returned_distances == expected_distances
    print(f"matches plaintext answer: {matches}")
    return 0 if matches else 1


def _run_query_connected(args: argparse.Namespace, table, query) -> int:
    """Provision a running daemon pair and answer one query over TCP."""
    from repro.core.roles import DataOwner, QueryClient
    from repro.resilience import RetryPolicy
    from repro.transport.client import RemoteCloud
    from repro.transport.daemon import parse_address

    protocol_mode = args.mode if args.mode in ("basic", "secure") else "secure"
    owner = DataOwner(table, key_size=args.key_size, rng=Random(args.seed + 2))
    client = QueryClient(owner.public_key, table.dimensions,
                         rng=Random(args.seed + 3))
    print(f"{table.describe()}; query={query}, k={args.k}, "
          f"protocol={protocol_mode}, C1={args.connect_c1}, "
          f"C2={args.connect_c2}")
    retry = (RetryPolicy(max_attempts=args.retries) if args.retries > 1
             else RetryPolicy.none())
    remote = RemoteCloud(parse_address(args.connect_c1),
                         parse_address(args.connect_c2),
                         retry=retry,
                         request_deadline=args.request_deadline,
                         rng=Random(args.seed + 5))
    try:
        remote.provision(owner.keypair, owner.encrypt_database(),
                         distance_bits=max(args.l,
                                           owner.distance_bit_length()),
                         seed=args.seed + 4,
                         precompute_queries=1 if args.precompute else 0)
        shares, report = remote.query(client.encrypt_query(query), args.k,
                                      mode=protocol_mode)
    finally:
        remote.close()
    neighbors = client.reconstruct(shares)
    for rank, record in enumerate(neighbors, start=1):
        print(f"  neighbor {rank}: {record}")
    if report is not None:
        print(f"cloud wall time: {report.wall_time_seconds:.2f} s, "
              f"bytes on the wire: {report.stats.bytes_transferred}")
    expected = [r.record.values
                for r in LinearScanKNN(table).query(query, args.k)]
    matches = neighbors == expected
    print(f"matches plaintext answer: {matches}")
    return 0 if matches else 1


def _run_party(args: argparse.Namespace) -> int:
    """Run one cloud party daemon until SIGTERM/SIGINT."""
    import logging

    from repro.transport.daemon import (
        DEFAULT_IO_DEADLINE,
        PartyDaemon,
        parse_address,
    )

    level = getattr(logging, args.log_level.upper())
    if args.json_logs:
        from repro.telemetry import configure_json_logging

        logging.basicConfig(level=level)
        configure_json_logging(level)
    else:
        logging.basicConfig(
            level=level,
            format="%(asctime)s %(name)s %(levelname)s %(message)s")
    host, port = parse_address(args.listen)
    slow = args.slow_query_seconds if args.slow_query_seconds > 0 else None
    if args.io_deadline is None:
        io_deadline: float | None = DEFAULT_IO_DEADLINE
    else:
        io_deadline = args.io_deadline if args.io_deadline > 0 else None
    daemon = PartyDaemon(args.role, host=host, port=port,
                         port_file=args.port_file,
                         pool_cache=args.pool_cache,
                         metrics_listen=args.metrics_listen,
                         slow_query_seconds=slow,
                         io_deadline=io_deadline,
                         state_dir=args.state_dir,
                         state_fsync=not args.no_state_fsync,
                         journal_compact_every=args.journal_compact_every,
                         profile=args.profile,
                         peer_connections=args.peer_connections,
                         shard_index=args.shard_index,
                         shard_count=args.shard_count)
    daemon.serve_forever()
    return 0


def _render_daemon_stats(stats: dict) -> str:
    """Human-readable rendering of one daemon's ``transport.stats`` payload."""
    lines = [f"role: {stats.get('role', '?')}  "
             f"provisioned: {stats.get('provisioned', False)}  "
             f"pending shares: {stats.get('pending_shares', 0)}  "
             f"inflight queries: {stats.get('inflight_queries', 0)}"]
    shard = stats.get("shard")
    if shard:
        lines.append(f"shard: {shard['index']}/{shard['count']} "
                     f"(records from global index {shard['start_index']})")
    if stats.get("shards"):
        lines.append(f"coordinating shards: {', '.join(stats['shards'])}")
    if stats.get("pending_scans"):
        lines.append(f"pending shard scans: {stats['pending_scans']}")
    if stats.get("metrics_address"):
        lines.append(f"metrics: {stats['metrics_address']}/metrics")
    resilience = stats.get("resilience")
    if resilience:
        deadline = resilience.get("io_deadline")
        lines.append(
            f"resilience: uptime={resilience.get('uptime_seconds', 0):.0f}s  "
            f"io-deadline={'off' if deadline is None else f'{deadline:g}s'}  "
            f"reply-cache={resilience.get('reply_cache_entries', 0)}  "
            f"peer-connected={resilience.get('peer_connected', False)}")
        events = resilience.get("events") or {}
        for family, total in sorted(events.items()):
            lines.append(f"  {family}: {total:g}")
    traffic = stats.get("traffic")
    if traffic:
        lines.append(f"peer link: {traffic['messages']} messages, "
                     f"{traffic['ciphertexts']} ciphertexts, "
                     f"{traffic['bytes_transferred']} bytes")
    connections = stats.get("peer_connections")
    if connections:
        target = stats.get("peer_connections_target")
        lines.append("peer connections"
                     + (f" (target {target})" if target else "") + ":")
        rows = [{"conn": entry["index"],
                 "alive": entry["alive"],
                 "contexts": entry["active_contexts"],
                 "messages": entry["messages"],
                 "bytes": entry["bytes_transferred"]}
                for entry in connections]
        lines.append(format_table(rows).rstrip("\n"))
    by_tag = stats.get("traffic_by_tag")
    if by_tag:
        rows = [{"tag": tag, "messages": counts["messages"],
                 "bytes": counts["bytes"]}
                for tag, counts in sorted(
                    by_tag.items(), key=lambda item: -item[1]["bytes"])[:12]]
        lines.append(format_table(rows).rstrip("\n"))
    engine = stats.get("engine")
    if engine:
        remaining = engine.get("remaining", {})
        pools = ", ".join(f"{pool}={count}"
                          for pool, count in sorted(remaining.items()))
        lines.append(f"precompute pools: hits={engine.get('hits', 0)} "
                     f"misses={engine.get('misses', 0)}"
                     + (f"  [{pools}]" if pools else ""))
    slow = stats.get("slow_queries")
    if slow:
        lines.append(f"slow queries (>{slow['threshold_seconds']}s): "
                     f"{slow['total_slow']} total")
        for entry in slow.get("recent", [])[-3:]:
            lines.append(f"  {entry.get('protocol', '?')}: "
                         f"{entry.get('wall_time_seconds', 0):.3f}s "
                         f"trace={entry.get('trace_id', '-')[:16]}")
    profiler = stats.get("profiler")
    if profiler:
        lines.append(f"profiler: running={profiler.get('running', False)}  "
                     f"interval={profiler.get('interval', 0):g}s  "
                     f"samples={profiler.get('samples', 0)}")
    return "\n".join(lines)


def _render_histogram_quantiles(snapshot: dict) -> str:
    """p50/p95/p99 table for every histogram family in a registry snapshot."""
    rows = []
    for name, family in sorted(snapshot.items()):
        if family.get("type") != "histogram":
            continue
        for labels, values in sorted(family.get("values", {}).items()):
            if not values.get("count"):
                continue
            rows.append({
                "histogram": f"{name}{{{labels}}}" if labels else name,
                "count": values["count"],
                "p50": f"{values.get('p50', 0):.4g}",
                "p95": f"{values.get('p95', 0):.4g}",
                "p99": f"{values.get('p99', 0):.4g}",
            })
    if not rows:
        return ""
    return format_table(rows).rstrip("\n")


def _run_stats(args: argparse.Namespace) -> int:
    """Inspect a running party daemon over its control connection."""
    import time

    from repro.transport.client import DaemonClient
    from repro.transport.daemon import parse_address
    from repro.transport.wire import WireCodec

    client = DaemonClient(parse_address(args.connect), WireCodec())
    try:
        if args.profile is not None:
            result = client.request("transport.profile",
                                    {"seconds": args.profile})
            if not result.get("armed"):
                print("note: daemon has no armed profiler (--profile); "
                      "sampled with an ephemeral one", file=sys.stderr)
            print(result.get("collapsed", ""), end="")
            return 0
        while True:
            stats = client.request("transport.stats", None)
            print(_render_daemon_stats(stats))
            metrics = client.request("transport.metrics", None)
            quantiles = _render_histogram_quantiles(
                metrics.get("snapshot") or {})
            if quantiles:
                print(quantiles)
            if args.metrics:
                print(metrics.get("prometheus", ""), end="")
            if args.watch is None:
                return 0
            print()
            time.sleep(args.watch)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0
    finally:
        client.close()


def _run_calibrate(args: argparse.Namespace) -> int:
    key_sizes = args.key_sizes or [512, 1024]
    calibrator = Calibrator(samples=args.samples)
    rows = []
    for key_size in key_sizes:
        timings = calibrator.timings_for(key_size)
        rows.append({
            "key_size": key_size,
            "encrypt (ms)": timings.encryption_seconds * 1000,
            "decrypt (ms)": timings.decryption_seconds * 1000,
            "exponentiation (ms)": timings.exponentiation_seconds * 1000,
        })
    print(format_table(rows), end="")
    if len(key_sizes) >= 2:
        slowdown = calibrator.key_size_slowdown(key_sizes[0], key_sizes[-1])
        print(f"slowdown {key_sizes[0]} -> {key_sizes[-1]} bits: {slowdown:.2f}x")
    return 0


def _run_project(args: argparse.Namespace) -> int:
    # Imported lazily: calibration-dependent and only needed by this command.
    from repro.analysis.projections import (
        figure_2a_series,
        figure_2c_series,
        figure_2d_series,
        figure_2f_series,
        figure_3_series,
    )

    calibrator = Calibrator(samples=args.samples)
    n_values = [2000, 4000, 6000, 8000, 10000]
    k_values = [5, 10, 15, 20, 25]
    if args.figure == "2a":
        series = figure_2a_series(calibrator, 512, n_values, [6, 12, 18])
    elif args.figure == "2b":
        series = figure_2a_series(calibrator, 1024, n_values, [6, 12, 18])
    elif args.figure == "2c":
        series = figure_2c_series(calibrator, [512, 1024], k_values)
    elif args.figure == "2d":
        series = figure_2d_series(calibrator, 512, k_values, [6, 12])
    elif args.figure == "2e":
        series = figure_2d_series(calibrator, 1024, k_values, [6, 12])
    elif args.figure == "2f":
        series = figure_2f_series(calibrator, 512, k_values)
    else:
        series = figure_3_series(calibrator, 512, n_values)
    print(series.to_text(), end="")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import threading
    import time

    table = synthetic_uniform(n_records=args.n, dimensions=args.m,
                              distance_bits=args.l, seed=args.seed)
    oracle = LinearScanKNN(table)
    workload_rng = Random(args.seed + 1)
    max_value = max(a.maximum for a in table.schema)
    queries = [[workload_rng.randint(0, max_value) for _ in range(args.m)]
               for _ in range(args.queries)]

    print(f"{table.describe()}; {args.shards} shards, {args.workers} "
          f"{args.backend} workers, batch size {args.batch_size}, "
          f"{args.clients} concurrent clients, {args.queries} queries")
    system = SkNNSystem.setup(table, key_size=args.key_size, mode="sharded",
                              shards=args.shards, workers=args.workers,
                              parallel_backend=args.backend,
                              rng=Random(args.seed + 2))
    server = system.serve(batch_size=args.batch_size,
                          randomness_pool_size=args.pool_size,
                          session_pool_size=min(args.pool_size, 4 * args.m),
                          precompute=args.precompute,
                          precompute_producer=args.precompute_producer)

    answers: dict[int, object] = {}

    def run_client(client_index: int) -> None:
        session = server.open_session(f"client-{client_index}")
        for query_index in range(client_index, args.queries, args.clients):
            answers[query_index] = session.query(queries[query_index], args.k,
                                                 timeout=120)

    started = time.perf_counter()
    with server:
        threads = [threading.Thread(target=run_client, args=(index,))
                   for index in range(args.clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started

    matches = all(
        answers[index].neighbors
        == [r.record.values for r in oracle.query(queries[index], args.k)]
        for index in range(args.queries)
    )
    stats = server.stats
    print(format_table([{
        "queries": stats.queries_served,
        "batches": stats.batches_served,
        "mean batch": stats.mean_batch_size,
        "wall (s)": elapsed,
        "queries/s": stats.queries_served / elapsed if elapsed else 0.0,
    }]), end="")
    print(f"all answers match plaintext oracle: {matches}")
    system.close()
    return 0 if matches else 1


def _run_bench(args: argparse.Namespace) -> int:
    """``repro bench run|report|check`` — the benchmark-history workflow."""
    from repro.bench import (
        REGISTRY,
        BenchHistory,
        check_history,
        render_trend,
        run_suite,
    )

    history = BenchHistory(args.history_dir)

    if args.bench_command == "run":
        names = sorted(REGISTRY)
        if args.filter:
            names = [name for name in names if args.filter in name]
            if not names:
                print(f"no bench matches {args.filter!r}; available: "
                      f"{', '.join(sorted(REGISTRY))}", file=sys.stderr)
                return 2
        for record in run_suite(names, quick=args.quick):
            path = history.append(record["bench"], record)
            metrics = record["metrics"]
            timing = metrics.get("query_s", metrics.get("encrypt_batch_s"))
            print(f"{record['bench']}: "
                  + (f"{timing:.4f}s, " if timing is not None else "")
                  + f"{len(metrics)} metrics -> {path}")
        return 0

    names = [args.bench] if args.bench else history.names()
    if not names:
        print(f"no history under {history.root} — run 'repro bench run' "
              "first", file=sys.stderr)
        return 2

    if args.bench_command == "report":
        for name in names:
            print(render_trend(name, history.load(name), last=args.last),
                  end="")
        return 0

    # check: exit nonzero iff any benchmark's latest run regressed.
    failures = 0
    for name in names:
        records = history.load(name)
        findings = check_history(name, records)
        if findings:
            failures += len(findings)
            for finding in findings:
                print(f"REGRESSION: {finding.describe()}")
        else:
            print(f"ok: {name} ({len(records)} runs)")
    if failures:
        print(f"{failures} regression(s) detected", file=sys.stderr)
        return 1
    return 0


def _run_inventory(_: argparse.Namespace) -> int:
    print(format_table(list(EXPERIMENT_INVENTORY)), end="")
    return 0


_HANDLERS = {
    "demo": _run_demo,
    "query": _run_query,
    "calibrate": _run_calibrate,
    "project": _run_project,
    "serve": _run_serve,
    "party": _run_party,
    "stats": _run_stats,
    "bench": _run_bench,
    "inventory": _run_inventory,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.crypto_backend is not None:
        from repro.crypto.backend import set_backend

        set_backend(args.crypto_backend)
    handler = _HANDLERS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
