"""Structured JSON logging and the slow-query log.

``configure_json_logging()`` installs a formatter that emits one JSON
object per line with the timestamp, level, logger name, message, the
active trace/query id (pulled from the ambient trace context so call
sites never thread it through), and any ``extra=`` fields.

:class:`SlowQueryLog` records queries whose wall time exceeds a
configurable threshold: each entry is logged as JSON at WARNING level and
kept in a bounded in-memory ring so ``transport.stats`` / ``repro stats``
can show the most recent offenders.
"""

from __future__ import annotations

import collections
import json
import logging
import threading
import time
from typing import Any, Mapping

from repro.telemetry import tracing

__all__ = ["JsonLogFormatter", "SlowQueryLog", "configure_json_logging"]

# logging.LogRecord attributes that are plumbing, not user payload.
_RESERVED = frozenset(vars(logging.makeLogRecord({}))) | {"message"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line, trace-aware."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        context = tracing.current_wire_context()
        if context is not None:
            entry["trace_id"] = context[0]
        for name, value in record.__dict__.items():
            if name not in _RESERVED and not name.startswith("_"):
                entry[name] = value
        if record.exc_info and record.exc_info[0] is not None:
            entry["exception"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str, separators=(",", ":"))


def configure_json_logging(level: int | str = logging.INFO,
                           logger: logging.Logger | None = None,
                           stream: Any = None) -> logging.Handler:
    """Attach a JSON-formatting stream handler (idempotent per logger)."""
    target = logger if logger is not None else logging.getLogger("repro")
    for handler in target.handlers:
        if getattr(handler, "_repro_json", False):
            target.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    target.addHandler(handler)
    target.setLevel(level)
    return handler


class SlowQueryLog:
    """Bounded record of queries slower than ``threshold_seconds``.

    ``observe()`` is called once per finished query; entries above the
    threshold are logged (JSON, WARNING) and retained for introspection.
    A threshold of ``None`` disables the log entirely.
    """

    def __init__(self, threshold_seconds: float | None = 1.0,
                 capacity: int = 32,
                 logger: logging.Logger | None = None) -> None:
        self.threshold_seconds = threshold_seconds
        self._entries: collections.deque[dict] = collections.deque(
            maxlen=capacity)
        self._lock = threading.Lock()
        self._logger = logger or logging.getLogger("repro.telemetry.slow")
        self.total_slow = 0

    def observe(self, wall_time_seconds: float, protocol: str = "",
                trace_id: str | None = None,
                **details: Any) -> bool:
        """Record one query; returns True when it crossed the threshold."""
        if (self.threshold_seconds is None
                or wall_time_seconds < self.threshold_seconds):
            return False
        entry = {
            "ts": round(time.time(), 6),
            "wall_time_seconds": round(wall_time_seconds, 6),
            "threshold_seconds": self.threshold_seconds,
            "protocol": protocol,
        }
        if trace_id:
            entry["trace_id"] = trace_id
        entry.update(details)
        with self._lock:
            self._entries.append(entry)
            self.total_slow += 1
        self._logger.warning("slow query: %.3fs %s", wall_time_seconds,
                             protocol, extra={"slow_query": entry})
        return True

    def entries(self) -> list[dict]:
        """Most recent slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "total_slow": self.total_slow,
                "recent": list(self._entries),
            }
