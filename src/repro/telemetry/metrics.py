"""Typed, labelled, lock-safe metrics with Prometheus text exposition.

The registry is deliberately small: three instrument types (counter, gauge,
histogram), each a *family* keyed by a label tuple, all guarded by per-family
locks so concurrent protocol threads can increment without torn updates.

Two usage patterns:

* **Push** — hot-path code calls ``registry.counter("name", "help").inc()``.
  ``counter()`` is idempotent: repeated calls return the existing family, so
  call sites never coordinate declaration order.
* **Pull** — state that already lives elsewhere (pool fill levels, mailbox
  depth, key operation counters) registers a *collector* callback which is
  invoked only at scrape time, keeping the hot path untouched.

Exposition follows the Prometheus text format (``# HELP`` / ``# TYPE``
comments, ``name{label="value"} 1234`` samples, ``_bucket``/``_sum``/
``_count`` series for histograms) so any Prometheus-compatible scraper can
consume ``/metrics`` directly.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "get_registry",
    "reset_registry",
]

# Latency-oriented default buckets: 1ms .. 60s, roughly x2.5 per step.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

LabelValues = tuple[str, ...]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(names: Sequence[str], values: LabelValues,
                   extra: Sequence[tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(names, values)]
    pairs += [f'{name}="{_escape_label_value(value)}"'
              for name, value in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Family:
    """Base for one named metric family holding per-label-set children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: dict[LabelValues, object] = {}

    def labels(self, *values: str, **kwargs: str):
        """The child instrument for one concrete label-value tuple."""
        if kwargs:
            if values:
                raise ValueError("pass labels positionally or by name, "
                                 "not both")
            values = tuple(kwargs[name] for name in self.label_names)
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {key}")
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _new_child(self):
        raise NotImplementedError

    def _samples(self) -> list[tuple[str, str, float]]:
        """``(suffix, label_block, value)`` rows for exposition."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def _items(self) -> list[tuple[LabelValues, object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """Monotonically increasing count (queries served, rounds, bytes)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    @property
    def value(self) -> float:
        """Sum over every label combination (convenience for tests)."""
        return sum(child.value for _, child in self._items())

    def _samples(self) -> list[tuple[str, str, float]]:
        return [("", _render_labels(self.label_names, values), child.value)
                for values, child in self._items()]

    def snapshot(self) -> dict:
        return {",".join(values) or "": child.value
                for values, child in self._items()}


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Family):
    """A value that can go up and down (queue depth, pool fill level)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    @property
    def value(self) -> float:
        children = self._items()
        return children[0][1].value if len(children) == 1 else \
            sum(child.value for _, child in children)

    def _samples(self) -> list[tuple[str, str, float]]:
        return [("", _render_labels(self.label_names, values), child.value)
                for values, child in self._items()]

    def snapshot(self) -> dict:
        return {",".join(values) or "": child.value
                for values, child in self._items()}


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf bucket last
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.total += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def state(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self.counts), self.total, self.count


def bucket_quantile(buckets: Sequence[float], counts: Sequence[int],
                    count: int, q: float) -> float:
    """Estimate the ``q`` quantile from cumulative histogram buckets.

    Linear interpolation within the containing bucket, the same estimate
    Prometheus' ``histogram_quantile`` produces: the first bucket
    interpolates from 0, and observations landing in the ``+Inf`` bucket
    report the highest finite bound (the best available lower bound).
    """
    if count <= 0:
        return 0.0
    target = q * count
    bounds = list(buckets) + [float("inf")]
    cumulative = 0.0
    lower = 0.0
    for bound, bucket_count in zip(bounds, counts):
        if bucket_count > 0 and cumulative + bucket_count >= target:
            if bound == float("inf"):
                return lower
            fraction = (target - cumulative) / bucket_count
            return lower + (bound - lower) * fraction
        cumulative += bucket_count
        if bound != float("inf"):
            lower = bound
    return lower


class Histogram(_Family):
    """Distribution of observations (query latency, batch seconds)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(buckets))

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)

    def _samples(self) -> list[tuple[str, str, float]]:
        rows: list[tuple[str, str, float]] = []
        for values, child in self._items():
            counts, total, count = child.state()
            cumulative = 0
            for bound, bucket_count in zip(
                    list(self.buckets) + [float("inf")], counts):
                cumulative += bucket_count
                rows.append(("_bucket", _render_labels(
                    self.label_names, values,
                    extra=[("le", _format_value(bound))]), cumulative))
            rows.append(("_sum", _render_labels(self.label_names, values),
                         total))
            rows.append(("_count", _render_labels(self.label_names, values),
                         count))
        return rows

    def snapshot(self) -> dict:
        out = {}
        for values, child in self._items():
            counts, total, count = child.state()
            out[",".join(values) or ""] = {
                "count": count, "sum": total,
                "mean": (total / count) if count else 0.0,
                "p50": bucket_quantile(self.buckets, counts, count, 0.50),
                "p95": bucket_quantile(self.buckets, counts, count, 0.95),
                "p99": bucket_quantile(self.buckets, counts, count, 0.99),
            }
        return out


class MetricsRegistry:
    """A named collection of metric families plus pull-collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    registers the family, later calls return it (and reject a conflicting
    re-registration with a different type or label set — a programming
    error worth failing loudly on).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- declaration -----------------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (type(family) is not cls
                        or family.label_names != tuple(label_names)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}")
                return family
            family = cls(name, help_text, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, label_names,
                                   buckets=buckets)

    def add_collector(
            self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at scrape time to refresh pull-style
        metrics (gauges mirroring external state)."""
        with self._lock:
            self._collectors.append(collect)

    def remove_collector(
            self, collect: Callable[["MetricsRegistry"], None]) -> None:
        with self._lock:
            if collect in self._collectors:
                self._collectors.remove(collect)

    # -- exposition ------------------------------------------------------------
    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            try:
                collect(self)
            except Exception:  # a broken collector must not break scraping
                continue

    def families(self) -> Iterable[_Family]:
        with self._lock:
            return [family for _, family in sorted(self._families.items())]

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        self._run_collectors()
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for suffix, label_block, value in family._samples():
                lines.append(f"{family.name}{suffix}{label_block} "
                             f"{_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, dict]:
        """JSON-able ``{family: {type, help, values}}`` view."""
        self._run_collectors()
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "values": family.snapshot(),
            }
            for family in self.families()
        }


_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh one (test isolation)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = MetricsRegistry()
        return _REGISTRY
