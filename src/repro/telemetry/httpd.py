"""A tiny stdlib HTTP listener exposing the metrics registry.

Each :class:`~repro.transport.daemon.PartyDaemon` (and the
:class:`~repro.service.scheduler.QueryServer`) can start one of these on a
side port:

* ``GET /metrics`` — Prometheus text exposition of the registry.
* ``GET /stats``   — JSON: the registry snapshot plus any extra
  provider-supplied sections (daemon stats, slow-query log).
* ``GET /healthz`` — liveness probe, returns ``ok``.
* ``GET /profile?seconds=N`` — collapsed stacks from the sampling profiler
  over an N-second window (flamegraph.pl input format); uses the armed
  profiler when the owner has one, else an ephemeral sampler.

Unknown paths get a 404 with a JSON error body.  The registry is resolved
per request (not bound at construction) so a ``reset_registry()`` — e.g.
test isolation inside the same process — never leaves the listener serving
a stale, half-cleared snapshot.

Built on :class:`http.server.ThreadingHTTPServer`; no dependencies, no
access logging noise, daemon threads only — closing the owner tears the
listener down with it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs

from repro.telemetry.metrics import MetricsRegistry, get_registry

__all__ = ["MetricsHTTPServer", "parse_listen_address"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def parse_listen_address(listen: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; port 0 binds an ephemeral port."""
    host, _, port = listen.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {listen!r}")
    return host, int(port)


class _Handler(BaseHTTPRequestHandler):
    server: "MetricsHTTPServer"

    # Quiet: metrics scrapes must not spam the daemon log.
    def log_message(self, format: str, *args) -> None:
        return None

    def do_GET(self) -> None:
        path, _, query = self.path.partition("?")
        owner: MetricsHTTPServer = self.server.owner  # type: ignore[attr-defined]
        if path == "/metrics":
            body = owner.registry.render_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/stats":
            body = json.dumps(owner.stats_document(), default=str,
                              indent=2).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        elif path == "/profile":
            params = parse_qs(query)
            try:
                seconds = float(params.get("seconds", ["1.0"])[0])
            except ValueError:
                self._reply(400, "application/json", json.dumps(
                    {"error": "seconds must be a number",
                     "path": self.path}).encode("utf-8") + b"\n")
                return
            body = owner.profile_document(seconds).encode("utf-8")
            self._reply(200, "text/plain; charset=utf-8", body)
        else:
            body = json.dumps({
                "error": "not found", "path": path,
                "endpoints": ["/metrics", "/stats", "/healthz", "/profile"],
            }).encode("utf-8") + b"\n"
            self._reply(404, "application/json", body)

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsHTTPServer:
    """Serves ``/metrics`` and ``/stats`` for one process on a side port.

    Args:
        listen: ``HOST:PORT`` (port 0 for ephemeral).
        registry: metrics registry to expose; when omitted the *current*
            process-wide registry is resolved at request time, so scrapes
            straddling a ``reset_registry()`` see a consistent fresh
            registry instead of the discarded one.
        extra_stats: optional callback contributing additional JSON
            sections to ``/stats`` (e.g. the daemon's transport stats).
        profiler: optional armed :class:`SamplingProfiler` backing
            ``/profile``; without one each scrape runs an ephemeral
            sampler for its window.
    """

    def __init__(self, listen: str = "127.0.0.1:0",
                 registry: MetricsRegistry | None = None,
                 extra_stats: Callable[[], Mapping] | None = None,
                 profiler: Any | None = None) -> None:
        host, port = parse_listen_address(listen)
        self._registry = registry
        self.profiler = profiler
        self._extra_stats = extra_stats
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> MetricsRegistry:
        """The registry to serve — resolved per access, never stale."""
        return self._registry if self._registry is not None else get_registry()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stats_document(self) -> dict:
        document: dict = {"metrics": self.registry.snapshot()}
        if self._extra_stats is not None:
            try:
                document.update(self._extra_stats())
            except Exception as exc:  # stats must never take the page down
                document["stats_error"] = repr(exc)
        return document

    def profile_document(self, seconds: float) -> str:
        from repro.telemetry.profiling import profile_window
        return profile_window(self.profiler, seconds)["collapsed"]

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.2},
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
