"""A tiny stdlib HTTP listener exposing the metrics registry.

Each :class:`~repro.transport.daemon.PartyDaemon` (and the
:class:`~repro.service.scheduler.QueryServer`) can start one of these on a
side port:

* ``GET /metrics`` — Prometheus text exposition of the registry.
* ``GET /stats``   — JSON: the registry snapshot plus any extra
  provider-supplied sections (daemon stats, slow-query log).
* ``GET /healthz`` — liveness probe, returns ``ok``.

Built on :class:`http.server.ThreadingHTTPServer`; no dependencies, no
access logging noise, daemon threads only — closing the owner tears the
listener down with it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.telemetry.metrics import MetricsRegistry, get_registry

__all__ = ["MetricsHTTPServer", "parse_listen_address"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def parse_listen_address(listen: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; port 0 binds an ephemeral port."""
    host, _, port = listen.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {listen!r}")
    return host, int(port)


class _Handler(BaseHTTPRequestHandler):
    server: "MetricsHTTPServer"

    # Quiet: metrics scrapes must not spam the daemon log.
    def log_message(self, format: str, *args) -> None:
        return None

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        owner: MetricsHTTPServer = self.server.owner  # type: ignore[attr-defined]
        if path == "/metrics":
            body = owner.registry.render_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/stats":
            body = json.dumps(owner.stats_document(), default=str,
                              indent=2).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsHTTPServer:
    """Serves ``/metrics`` and ``/stats`` for one process on a side port.

    Args:
        listen: ``HOST:PORT`` (port 0 for ephemeral).
        registry: metrics registry to expose (default: process-wide).
        extra_stats: optional callback contributing additional JSON
            sections to ``/stats`` (e.g. the daemon's transport stats).
    """

    def __init__(self, listen: str = "127.0.0.1:0",
                 registry: MetricsRegistry | None = None,
                 extra_stats: Callable[[], Mapping] | None = None) -> None:
        host, port = parse_listen_address(listen)
        self.registry = registry if registry is not None else get_registry()
        self._extra_stats = extra_stats
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stats_document(self) -> dict:
        document: dict = {"metrics": self.registry.snapshot()}
        if self._extra_stats is not None:
            try:
                document.update(self._extra_stats())
            except Exception as exc:  # stats must never take the page down
                document["stats_error"] = repr(exc)
        return document

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.2},
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
