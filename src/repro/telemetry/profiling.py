"""Phase-level cost attribution and low-overhead continuous profiling.

Two complementary instruments live here, both built for the "where does the
SkNN hot path spend its time" question that the ROADMAP's perf waves (CRT
decryption, packing, native powmod, pre-filtering) depend on:

* :class:`CostLedger` + :func:`cost_scope` — a **deterministic** ledger that
  attributes Paillier operation counts (encryptions, decryptions, scalar-mul
  exponentiations, homomorphic additions, pool hits) and wall time to named
  protocol phases, per party.  Scopes nest (``scan/SSED/SM``) and attribution
  is *exclusive*: each bucket owns exactly the counter deltas and clock time
  observed while it was the innermost scope, so the flat bucket sums equal
  the total deltas over the ledger window — the invariant the acceptance
  tests pin down.  Like tracing spans, an un-armed ``cost_scope`` costs one
  contextvar read and returns a shared no-op.

* :class:`SamplingProfiler` — a **statistical** stack sampler
  (:func:`sys._current_frames` at ~100 Hz from a daemon thread) accumulating
  collapsed-stack counts in the flamegraph.pl text format
  (``frame;frame;leaf count``).  Cheap enough to leave always-on behind
  ``repro party --profile``; scraped via ``/profile?seconds=N`` on the
  metrics listener or the ``transport.profile`` control tag.

The ledger's clock and the sampler's clock/frame source are injectable, so
the unit tests drive both deterministically.
"""

from __future__ import annotations

import contextvars
import sys
import threading
import time
from os.path import basename
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.telemetry import metrics as _metrics

__all__ = [
    "CostLedger",
    "SamplingProfiler",
    "cost_scope",
    "record_phase_metrics",
    "wrap_span",
]

#: Paillier operation names, in the order reports print them.
OP_NAMES = ("encryptions", "decryptions", "exponentiations",
            "homomorphic_additions")

#: bucket for work observed inside the ledger window but outside any scope
#: (setup, result assembly, background producer encryptions on a daemon).
OTHER_PHASE = "other"


# ---------------------------------------------------------------------------
# Cost ledger
# ---------------------------------------------------------------------------

_ACTIVE_LEDGER: contextvars.ContextVar["CostLedger | None"] = (
    contextvars.ContextVar("repro_cost_ledger", default=None))


class _NoopScope:
    """Shared do-nothing context manager returned when no ledger is armed."""

    __slots__ = ()

    def __enter__(self) -> "_NoopScope":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NOOP_SCOPE = _NoopScope()


class _CostScope:
    """Context manager charging one phase while it is the innermost scope."""

    __slots__ = ("_ledger", "_phase", "_party")

    def __init__(self, ledger: "CostLedger", phase: str,
                 party: str | None) -> None:
        self._ledger = ledger
        self._phase = phase
        self._party = party

    def __enter__(self) -> "_CostScope":
        self._ledger._push(self._phase, self._party)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._ledger._pop()


class _Activation:
    """Context manager binding a ledger to the current execution context."""

    __slots__ = ("_ledger", "_token")

    def __init__(self, ledger: "CostLedger") -> None:
        self._ledger = ledger
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "CostLedger":
        self._ledger._resume()
        self._token = _ACTIVE_LEDGER.set(self._ledger)
        return self._ledger

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _ACTIVE_LEDGER.reset(self._token)
            self._token = None
        self._ledger._suspend()


class _SpanWithCost:
    """A tracing span and a cost scope entered/exited as one unit.

    Forwards the span surface (``set_attribute``, ids) so call sites built
    for plain spans keep working.
    """

    __slots__ = ("_span", "_scope")

    def __init__(self, span: Any, scope: _CostScope) -> None:
        self._span = span
        self._scope = scope

    def __enter__(self) -> "_SpanWithCost":
        self._scope.__enter__()
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        try:
            self._span.__exit__(*exc_info)
        finally:
            self._scope.__exit__(*exc_info)

    def set_attribute(self, name: str, value: Any) -> None:
        self._span.set_attribute(name, value)

    @property
    def span_id(self) -> str:
        return getattr(self._span, "span_id", "")

    @property
    def trace_id(self) -> str:
        return getattr(self._span, "trace_id", "")


class CostLedger:
    """Attributes counter deltas and wall time to nested phase scopes.

    Args:
        sources: counter-like objects exposing ``snapshot() -> {op: count}``
            (e.g. :class:`~repro.crypto.paillier.OperationCounter`); their
            per-op values are summed into one running total.
        extras: named callables sampled alongside the counters (e.g.
            ``{"pool_hits": engine.pool_hit_total}``); resolved at snapshot
            time so engines attached after construction still count.
        party: default attribution party for scopes that do not override it.
        clock: monotonic time source (injectable for deterministic tests).

    Attribution is exclusive: on every scope transition the deltas since the
    previous transition are charged to the scope that was innermost *before*
    the transition.  Deltas observed while no scope is open — including the
    window before :meth:`activate` and between daemon handler dispatches —
    land in the ``"other"`` bucket (operations always; seconds only while
    the ledger is activated, so a daemon's idle time never counts).
    Consequently ``sum(bucket ops) == counter deltas over the window``
    exactly, and ``sum(bucket seconds) == activated wall time``.
    """

    def __init__(self, sources: Sequence[Any] = (),
                 extras: Mapping[str, Callable[[], float]] | None = None,
                 party: str = "C1",
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.party = party
        self._sources = list(sources)
        self._extras = dict(extras or {})
        self._clock = clock
        self._lock = threading.Lock()
        #: (path, party) -> [seconds, {op: count}]
        self._buckets: dict[tuple[str, str], list] = {}
        self._stack: list[tuple[str, str]] = []
        self._last_ops = self._snapshot()
        self._last_time = clock()
        self._active = False

    @classmethod
    def for_cloud(cls, cloud: Any, party: str = "C1",
                  clock: Callable[[], float] = time.perf_counter
                  ) -> "CostLedger":
        """A ledger over a federated cloud's key counters and engine pools.

        In the serial runtime both parties' keys (and thus all four op
        counters) are local; on a C1 daemon the remote private key carries
        an always-zero counter, so only C1-local work is ledgered here and
        C2's rows arrive through the ``telemetry.collect`` exchange.

        When the calling thread has an active *counting scope* (a daemon
        running pipelined queries wraps each query thread in one, see
        :func:`repro.crypto.paillier.counting_scope`), the scope counter is
        the sole source: the shared key counters mix every in-flight
        query's operations, while the scope tees off exactly this thread's.
        """
        from repro.crypto import paillier as _paillier

        scope = _paillier.active_counting_scope()
        if scope is not None:
            sources: list[Any] = [scope]
        else:
            sources = []
            for key in (getattr(getattr(cloud, "c1", None), "public_key",
                                None),
                        getattr(getattr(cloud, "c2", None), "private_key",
                                None)):
                counter = (getattr(key, "counter", None)
                           if key is not None else None)
                if counter is not None and counter not in sources:
                    sources.append(counter)

        def pool_hits() -> int:
            total = 0
            for cloud_party in (getattr(cloud, "c1", None),
                                getattr(cloud, "c2", None)):
                engine = getattr(cloud_party, "engine", None)
                if engine is not None:
                    total += engine.pool_hit_total()
            return total

        return cls(sources, extras={"pool_hits": pool_hits}, party=party,
                   clock=clock)

    # -- sampling --------------------------------------------------------------
    def _snapshot(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for source in self._sources:
            for op, value in source.snapshot().items():
                totals[op] = totals.get(op, 0) + value
        for name, sample in self._extras.items():
            try:
                totals[name] = totals.get(name, 0) + sample()
            except Exception:
                continue  # a broken extra must never break a query
        return totals

    def _charge(self, key: tuple[str, str], seconds: float,
                deltas: dict[str, float]) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = [0.0, {}]
        bucket[0] += seconds
        ops = bucket[1]
        for op, delta in deltas.items():
            if delta:
                ops[op] = ops.get(op, 0) + delta

    def _flush_locked(self, charge_time: bool = True) -> None:
        """Charge everything since the last transition to the current top."""
        now = self._clock()
        current = self._snapshot()
        deltas = {op: current[op] - self._last_ops.get(op, 0)
                  for op in current
                  if current[op] != self._last_ops.get(op, 0)}
        key = self._stack[-1] if self._stack else (OTHER_PHASE, self.party)
        elapsed = (now - self._last_time) if charge_time else 0.0
        if elapsed or deltas:
            self._charge(key, elapsed, deltas)
        self._last_ops = current
        self._last_time = now

    # -- scope stack (called by _CostScope) ------------------------------------
    def _push(self, phase: str, party: str | None) -> None:
        with self._lock:
            self._flush_locked(charge_time=self._active)
            if self._stack:
                parent_path, parent_party = self._stack[-1]
                path = f"{parent_path}/{phase}"
                owner = party or parent_party
            else:
                path = phase
                owner = party or self.party
            self._stack.append((path, owner))

    def _pop(self) -> None:
        with self._lock:
            self._flush_locked(charge_time=self._active)
            if self._stack:
                self._stack.pop()

    # -- activation ------------------------------------------------------------
    def activate(self) -> _Activation:
        """Bind this ledger to the calling context (``with`` statement).

        Reentrant across dispatches: a daemon activates one per-trace ledger
        around every handler it runs for that trace; operations performed
        between activations are still counted (into ``"other"``) but the
        idle wall time between them is not.
        """
        return _Activation(self)

    def _resume(self) -> None:
        with self._lock:
            # Operations since the last transition happened outside any
            # scope; the elapsed idle time is deliberately dropped.
            self._flush_locked(charge_time=False)
            self._active = True

    def _suspend(self) -> None:
        with self._lock:
            self._flush_locked(charge_time=True)
            self._active = False

    # -- results ---------------------------------------------------------------
    def finish(self) -> list[dict[str, Any]]:
        """Close the window and return the per-phase rollup rows.

        Rows are ``{"phase", "party", "seconds", "ops"}`` dictionaries with
        nested scopes rolled up into their outermost phase, sorted by
        descending seconds.  Trailing counter deltas (operations after the
        last deactivation) are charged to ``"other"`` first, so the rows'
        op totals equal the full counter deltas since construction.
        """
        with self._lock:
            self._flush_locked(charge_time=self._active)
            self._active = False
        return self.breakdown()

    def breakdown(self) -> list[dict[str, Any]]:
        """The rollup rows accumulated so far (see :meth:`finish`)."""
        merged: dict[tuple[str, str], list] = {}
        with self._lock:
            items = [(key, bucket[0], dict(bucket[1]))
                     for key, bucket in self._buckets.items()]
        for (path, party), seconds, ops in items:
            root = path.split("/", 1)[0]
            bucket = merged.setdefault((root, party), [0.0, {}])
            bucket[0] += seconds
            for op, count in ops.items():
                bucket[1][op] = bucket[1].get(op, 0) + count
        rows = [
            {"phase": phase, "party": party, "seconds": seconds, "ops": ops}
            for (phase, party), (seconds, ops) in merged.items()
            if seconds > 1e-9 or any(ops.values())
        ]
        rows.sort(key=lambda row: -row["seconds"])
        return rows

    def detail(self) -> list[dict[str, Any]]:
        """Un-rolled rows, one per full nested scope path."""
        with self._lock:
            items = [(key, bucket[0], dict(bucket[1]))
                     for key, bucket in self._buckets.items()]
        rows = [
            {"phase": path, "party": party, "seconds": seconds, "ops": ops}
            for (path, party), seconds, ops in items
            if seconds > 1e-9 or any(ops.values())
        ]
        rows.sort(key=lambda row: -row["seconds"])
        return rows

    def total_ops(self) -> dict[str, float]:
        """Summed operation deltas across every bucket (parity checks)."""
        totals: dict[str, float] = {}
        with self._lock:
            buckets = [dict(bucket[1]) for bucket in self._buckets.values()]
        for ops in buckets:
            for op, count in ops.items():
                totals[op] = totals.get(op, 0) + count
        return totals


def cost_scope(phase: str, party: str | None = None):
    """A phase scope on the ambient ledger, or a shared no-op without one."""
    ledger = _ACTIVE_LEDGER.get()
    if ledger is None:
        return _NOOP_SCOPE
    return _CostScope(ledger, phase, party)


def wrap_span(span: Any, phase: str, party: str | None = None):
    """Pair a tracing span with a cost scope when a ledger is armed.

    Returns ``span`` unchanged otherwise, so instrumented hot paths pay one
    contextvar read and nothing else when profiling is off.
    """
    ledger = _ACTIVE_LEDGER.get()
    if ledger is None:
        return span
    return _SpanWithCost(span, _CostScope(ledger, phase, party))


def record_phase_metrics(rows: Iterable[Mapping[str, Any]],
                         registry: _metrics.MetricsRegistry | None = None
                         ) -> None:
    """Export ledger rollup rows as ``repro_phase_*`` metric families."""
    registry = registry if registry is not None else _metrics.get_registry()
    seconds = registry.histogram(
        "repro_phase_seconds",
        "Wall time attributed to each protocol phase by the cost ledger.",
        ("phase", "party"))
    ops = registry.counter(
        "repro_phase_ops_total",
        "Paillier operations (and pool hits) attributed to each phase.",
        ("phase", "party", "op"))
    for row in rows:
        seconds.observe(row["seconds"], phase=row["phase"],
                        party=row["party"])
        for op, count in row["ops"].items():
            if count > 0:
                ops.inc(count, phase=row["phase"], party=row["party"], op=op)


def phase_seconds_of(rows: Iterable[Mapping[str, Any]]) -> dict[str, float]:
    """Per-phase seconds summed across parties (``report.phase_seconds``)."""
    out: dict[str, float] = {}
    for row in rows:
        out[row["phase"]] = out.get(row["phase"], 0.0) + row["seconds"]
    return out


def format_cost_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Aligned text rendering of rollup rows (CLI / smoke scripts)."""
    if not rows:
        return "(no cost attribution recorded)\n"
    header = (f"{'phase':<12} {'party':<5} {'seconds':>9} "
              f"{'enc':>7} {'dec':>7} {'exp':>7} {'add':>8} {'pool':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        ops = row["ops"]
        lines.append(
            f"{row['phase']:<12} {row['party']:<5} {row['seconds']:>9.4f} "
            f"{int(ops.get('encryptions', 0)):>7} "
            f"{int(ops.get('decryptions', 0)):>7} "
            f"{int(ops.get('exponentiations', 0)):>7} "
            f"{int(ops.get('homomorphic_additions', 0)):>8} "
            f"{int(ops.get('pool_hits', 0)):>6}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------

class SamplingProfiler:
    """A low-overhead statistical stack sampler with collapsed-stack output.

    A daemon thread wakes every ``interval`` seconds, snapshots every
    thread's Python stack via :func:`sys._current_frames` (its own thread
    excluded) and increments one counter per collapsed stack.  The
    accumulated counts render in the flamegraph.pl text format, one
    ``frame;frame;leaf count`` line per distinct stack — pipe the output of
    ``/profile`` straight into ``flamegraph.pl``.

    ``frames`` and ``clock`` are injectable so tests can drive
    :meth:`sample_once` with handcrafted frames and a fake clock.
    """

    def __init__(self, interval: float = 0.01, max_depth: int = 64,
                 frames: Callable[[], Mapping[int, Any]] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._frames = frames if frames is not None else sys._current_frames
        self._clock = clock
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # -- sampling --------------------------------------------------------------
    def _collapse(self, frame: Any) -> str:
        parts: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            parts.append(f"{basename(code.co_filename)}:{code.co_name}")
            frame = frame.f_back
            depth += 1
        parts.reverse()  # root first, leaf last — the flamegraph convention
        return ";".join(parts)

    def sample_once(self, frames: Mapping[int, Any] | None = None,
                    skip_thread: int | None = None) -> int:
        """Record one sample of every thread's stack; returns stacks seen."""
        snapshot = frames if frames is not None else self._frames()
        collapsed = [self._collapse(frame)
                     for thread_id, frame in snapshot.items()
                     if thread_id != skip_thread]
        with self._lock:
            self._samples += 1
            for stack in collapsed:
                if stack:
                    self._counts[stack] = self._counts.get(stack, 0) + 1
        return len(collapsed)

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            try:
                self.sample_once(skip_thread=own)
            except Exception:  # sampling must never take the process down
                continue

    # -- lifecycle -------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._stop.clear()
            self._started_at = self._clock()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- output ----------------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def snapshot_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0

    def collapsed(self, since: Mapping[str, int] | None = None) -> str:
        """The accumulated stacks (optionally minus a prior snapshot)."""
        current = self.snapshot_counts()
        if since:
            current = {stack: count - since.get(stack, 0)
                       for stack, count in current.items()
                       if count - since.get(stack, 0) > 0}
        lines = [f"{stack} {count}" for stack, count in
                 sorted(current.items(), key=lambda item: -item[1])]
        return "\n".join(lines) + ("\n" if lines else "")

    def collect_window(self, seconds: float) -> str:
        """Collapsed stacks observed over the next ``seconds`` (blocking).

        Requires the sampler to be running; callers without an armed
        profiler use :func:`profile_window` which spins up an ephemeral one.
        """
        before = self.snapshot_counts()
        time.sleep(max(seconds, 0.0))
        return self.collapsed(since=before)


def profile_window(profiler: SamplingProfiler | None, seconds: float,
                   max_seconds: float = 60.0) -> dict[str, Any]:
    """One profile scrape: collapsed stacks over a bounded window.

    Uses the armed ``profiler`` when one is running, otherwise arms an
    ephemeral sampler just for the window — ``/profile`` therefore works on
    every daemon, armed or not.
    """
    window = min(max(float(seconds), 0.05), max_seconds)
    if profiler is not None and profiler.running:
        text = profiler.collect_window(window)
        armed = True
        interval = profiler.interval
    else:
        with SamplingProfiler() as ephemeral:
            time.sleep(window)
            text = ephemeral.collapsed()
        armed = False
        interval = 0.01
    return {"collapsed": text, "seconds": window, "armed": armed,
            "interval": interval,
            "samples": sum(int(line.rsplit(" ", 1)[1])
                           for line in text.splitlines() if " " in line)}
