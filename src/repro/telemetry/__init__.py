"""Process-wide observability: metrics, distributed tracing, structured logs.

``repro.telemetry`` is the single instrumentation layer the rest of the
package reports into:

* :mod:`repro.telemetry.metrics` — a process-wide :class:`MetricsRegistry`
  of typed counters / gauges / histograms with label support, lock-safe
  increments, pull-collectors and Prometheus text exposition.
* :mod:`repro.telemetry.tracing` — per-query distributed traces.  Each
  protocol round opens a :class:`Span`; the trace context rides inside the
  ``repro.transport`` wire envelope so spans recorded by the C2 daemon are
  stitched back into C1's :class:`~repro.core.sknn_base.SkNNRunReport`.
* :mod:`repro.telemetry.logs` — structured JSON logging with query ids and
  a configurable slow-query log.
* :mod:`repro.telemetry.httpd` — a tiny stdlib HTTP listener serving
  ``/metrics`` (Prometheus text) and ``/stats`` (JSON snapshot).

Every instrument is a no-op-cheap operation on the hot path: counters are a
dict lookup plus a locked integer add, and spans cost a single contextvar
read when no trace is active.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.telemetry.tracing import (
    Span,
    Tracer,
    current_wire_context,
    get_tracer,
    new_trace_id,
    span,
)
from repro.telemetry.logs import SlowQueryLog, configure_json_logging
from repro.telemetry.httpd import MetricsHTTPServer
from repro.telemetry.profiling import (
    CostLedger,
    SamplingProfiler,
    cost_scope,
    record_phase_metrics,
)

__all__ = [
    "CostLedger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "SamplingProfiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "configure_json_logging",
    "cost_scope",
    "current_wire_context",
    "get_registry",
    "get_tracer",
    "new_trace_id",
    "record_phase_metrics",
    "reset_registry",
    "span",
]
