"""Per-query distributed tracing across the two-cloud protocol stack.

A *trace* is one query's end-to-end timeline; a *span* is one timed
operation inside it (a protocol round, a phase, a daemon-side handler
dispatch).  Spans nest through a :mod:`contextvars` context variable, so the
instrumentation composes naturally with the scheduler's worker threads and
with the daemon's per-connection serving threads.

Design constraints, in order:

1. **Free when off.**  ``span()`` costs a single contextvar read when no
   trace is active and returns a shared no-op context manager.  Protocol
   hot loops can therefore be instrumented unconditionally.
2. **Distributed stitching.**  ``current_wire_context()`` returns the
   ``[trace_id, span_id]`` pair the transport layer rides inside the wire
   envelope; the receiving daemon calls ``remote_span()`` /
   ``activate_remote()`` so its spans carry the same trace id and parent
   them under the originating span.  Finished spans accumulate in a
   bounded per-trace collector; ``take()`` drains a trace's spans so C1
   can merge C2's into one report.
3. **JSON-able.**  A finished span serialises to a flat dict of
   primitives — it crosses the wire inside the existing codec and lands
   in ``SkNNRunReport.trace`` payloads untouched.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "Span",
    "Tracer",
    "current_wire_context",
    "get_tracer",
    "new_trace_id",
    "span",
    "trace",
]

# A runaway trace (e.g. a span leak in a long-lived daemon) must not grow
# without bound; 4096 spans is far beyond any real query's round count.
MAX_SPANS_PER_TRACE = 4096
MAX_TRACKED_TRACES = 64

_ID_COUNTER_LOCK = threading.Lock()
_ID_COUNTER = 0


def _new_id(bits: int = 64) -> str:
    """A unique hex id: urandom entropy plus a process-local counter so
    ids stay unique even under a seeded/monkeypatched ``os.urandom``."""
    global _ID_COUNTER
    with _ID_COUNTER_LOCK:
        _ID_COUNTER += 1
        counter = _ID_COUNTER
    raw = int.from_bytes(os.urandom(bits // 8), "big")
    raw ^= counter * 0x9E3779B97F4A7C15
    return format(raw & ((1 << bits) - 1), f"0{bits // 4}x")


def new_trace_id() -> str:
    return _new_id(128)


@dataclass
class Span:
    """One timed operation inside a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    party: str
    start: float
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "party": self.party,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            party=str(payload.get("party", "")),
            start=float(payload.get("start", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            attributes=dict(payload.get("attributes") or {}),
        )


@dataclass(frozen=True)
class _Context:
    """The active trace position for the current thread of execution."""

    trace_id: str
    span_id: str
    party: str


_CURRENT: contextvars.ContextVar[_Context | None] = contextvars.ContextVar(
    "repro_trace_context", default=None)


class _NoopSpan:
    """Shared do-nothing context manager returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attribute(self, name: str, value: Any) -> None:
        return None

    span_id = ""
    trace_id = ""


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span into the tracer's collector."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, context: _Context,
                 party: str | None, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(
            name=name,
            trace_id=context.trace_id,
            span_id=_new_id(64),
            parent_id=context.span_id or None,
            party=party or context.party,
            start=0.0,
            attributes=attributes,
        )
        self._token: contextvars.Token | None = None

    @property
    def span_id(self) -> str:
        return self._span.span_id

    @property
    def trace_id(self) -> str:
        return self._span.trace_id

    def set_attribute(self, name: str, value: Any) -> None:
        self._span.attributes[name] = value

    def __enter__(self) -> "_ActiveSpan":
        self._token = _CURRENT.set(_Context(
            self._span.trace_id, self._span.span_id, self._span.party))
        self._span.start = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.duration = time.time() - self._span.start
        if exc_type is not None:
            self._span.attributes["error"] = exc_type.__name__
        if self._token is not None:
            _CURRENT.reset(self._token)
        self._tracer._record(self._span)


class Tracer:
    """Creates spans and collects finished ones, keyed by trace id."""

    def __init__(self, party: str = "") -> None:
        self.party = party
        self._lock = threading.Lock()
        self._finished: dict[str, list[Span]] = {}
        self._order: list[str] = []

    # -- span creation ---------------------------------------------------------
    def span(self, name: str, party: str | None = None,
             **attributes: Any):
        """A child span of the ambient context, or a no-op without one."""
        context = _CURRENT.get()
        if context is None:
            return _NOOP_SPAN
        return _ActiveSpan(self, name, context, party, attributes)

    def trace(self, name: str, trace_id: str | None = None,
              party: str | None = None, **attributes: Any) -> _ActiveSpan:
        """Start a new trace rooted at ``name`` (always records; on exit
        the previous — usually empty — ambient context is restored, so
        traces never leak across queries)."""
        root_context = _Context(trace_id or new_trace_id(), "",
                                party or self.party)
        return _ActiveSpan(self, name, root_context, party, attributes)

    def remote_span(self, name: str,
                    wire_context: Sequence[str] | None,
                    party: str | None = None, **attributes: Any):
        """A span parented under a context received over the wire; no-op
        when the frame carried no trace context."""
        if not wire_context:
            return _NOOP_SPAN
        context = _Context(str(wire_context[0]), str(wire_context[1]),
                           party or self.party)
        return _ActiveSpan(self, name, context, party, attributes)

    def activate_remote(self, trace_id: str, parent_span_id: str,
                        party: str | None = None) -> contextvars.Token:
        """Adopt a remote trace as the ambient context for this thread
        (daemon-side; pair with ``deactivate``)."""
        return _CURRENT.set(_Context(trace_id, parent_span_id,
                                     party or self.party))

    @staticmethod
    def deactivate(token: contextvars.Token) -> None:
        _CURRENT.reset(token)

    # -- collection ------------------------------------------------------------
    def _record(self, span: Span) -> None:
        with self._lock:
            spans = self._finished.get(span.trace_id)
            if spans is None:
                if len(self._order) >= MAX_TRACKED_TRACES:
                    evicted = self._order.pop(0)
                    self._finished.pop(evicted, None)
                spans = self._finished[span.trace_id] = []
                self._order.append(span.trace_id)
            if len(spans) < MAX_SPANS_PER_TRACE:
                spans.append(span)

    def take(self, trace_id: str) -> list[Span]:
        """Drain and return the finished spans of one trace."""
        with self._lock:
            if trace_id in self._finished:
                self._order.remove(trace_id)
            return self._finished.pop(trace_id, [])

    def pending_traces(self) -> int:
        with self._lock:
            return len(self._finished)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, party: str | None = None, **attributes: Any):
    """Module-level shorthand: a child span on the default tracer."""
    return _TRACER.span(name, party=party, **attributes)


def trace(name: str, trace_id: str | None = None, party: str | None = None,
          **attributes: Any) -> _ActiveSpan:
    """Module-level shorthand: start a trace on the default tracer."""
    return _TRACER.trace(name, trace_id=trace_id, party=party, **attributes)


def current_wire_context() -> list[str] | None:
    """``[trace_id, span_id]`` to stamp on outgoing wire envelopes, or
    ``None`` when no trace is active (the common case)."""
    context = _CURRENT.get()
    if context is None:
        return None
    return [context.trace_id, context.span_id]


def spans_to_payload(spans: Sequence[Span]) -> list[dict[str, Any]]:
    return [item.as_payload() for item in spans]


def trace_payload(trace_id: str,
                  spans: Sequence[Span | Mapping[str, Any]]) -> dict:
    """The JSON-able ``report.trace`` structure: spans sorted by start."""
    rows = [item.as_payload() if isinstance(item, Span) else dict(item)
            for item in spans]
    rows.sort(key=lambda row: row.get("start", 0.0))
    return {"trace_id": trace_id, "spans": rows}
