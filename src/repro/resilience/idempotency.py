"""Idempotent request execution: replay caches keyed by client-chosen ids.

The retry layer (:mod:`repro.resilience.policy`) may resend a request whose
first attempt actually *succeeded* — the reply frame was lost, not the work.
Re-executing such a request would double-consume single-use state: a
precompute-pool entry, a one-shot share in the C2 mailbox, a delivery id.
:class:`ReplyCache` makes re-execution safe by memoizing the reply under the
client-chosen idempotency key:

* a **duplicate** of a completed request returns the recorded reply without
  re-running the handler;
* a duplicate of a request still **in flight** joins it — the second thread
  blocks (bounded by its deadline) until the first finishes, then shares its
  reply, implementing "re-attach to an in-flight query";
* a **failed** attempt leaves no record, so the retry genuinely re-runs.

The cache is bounded: completed entries are evicted FIFO once ``capacity``
is exceeded, which bounds a daemon's memory under a client that never reuses
ids (the normal case — ids are fresh per logical query, reused only by its
retries, which arrive promptly or never).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.exceptions import DeadlineExceeded
from repro.telemetry import metrics as _metrics

__all__ = ["ReplyCache"]


class _Entry:
    __slots__ = ("done", "value")

    def __init__(self) -> None:
        self.done = False
        self.value: Any = None


class ReplyCache:
    """Bounded memo of request replies keyed by client idempotency ids."""

    def __init__(self, capacity: int = 64, name: str = "replies") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._condition = threading.Condition()
        self.replays = 0  # duplicates served from the cache (incl. joins)

    def run(self, key: str | None, compute: Callable[[], Any],
            timeout: float | None = None) -> Any:
        """Execute ``compute`` exactly once per ``key``; replay its reply.

        ``key=None`` disables idempotency (legacy clients): the handler runs
        unconditionally.  ``timeout`` bounds how long a duplicate waits for
        an in-flight original before raising :class:`DeadlineExceeded`.
        """
        if key is None:
            return compute()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                entry = self._entries.get(key)
                if entry is None:
                    entry = _Entry()
                    self._entries[key] = entry
                    break  # we own the computation
                if entry.done:
                    self.replays += 1
                    self._count_replay()
                    return entry.value
                # Original attempt still running: join it.
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise DeadlineExceeded(
                        f"request {key!r} still in flight after "
                        f"{timeout:.1f}s")
                if not self._condition.wait(remaining):
                    raise DeadlineExceeded(
                        f"request {key!r} still in flight after "
                        f"{timeout:.1f}s")
        try:
            value = compute()
            with self._condition:
                # Persistence hook first: a durable subclass must make the
                # reply recoverable *before* any waiter can observe it.
                self._record_completed(key, value)
                entry.done = True
                entry.value = value
                self._evict_completed()
                self._condition.notify_all()
        except BaseException:
            # Failures are not memoized: a retry must re-run the handler.
            # (A failed persistence hook counts as a failure too — a reply
            # that could not be made durable is never served from memory.)
            with self._condition:
                self._entries.pop(key, None)
                self._condition.notify_all()
            raise
        return value

    # -- persistence hooks (no-ops here; see resilience.durability) ---------
    def _record_completed(self, key: str, value: Any) -> None:
        """Called under the lock, before a completed reply becomes visible."""

    def _record_cleared(self) -> None:
        """Called under the lock when the cache is wiped (new epoch)."""

    def _count_replay(self) -> None:
        _metrics.get_registry().counter(
            "repro_replayed_replies_total",
            "Duplicate idempotent requests served from the reply cache.",
            ("cache",)).inc(cache=self.name)

    def _evict_completed(self) -> None:
        """Drop oldest *completed* entries beyond capacity (caller locks)."""
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            entry = self._entries[key]
            if entry.done:
                del self._entries[key]
                if len(self._entries) <= self.capacity:
                    return

    def clear(self) -> None:
        """Forget everything (a new provisioning epoch began)."""
        with self._condition:
            self._record_cleared()
            self._entries.clear()
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._condition:
            entry = self._entries.get(key)
            return entry is not None and entry.done
