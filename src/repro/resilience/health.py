"""Control-plane liveness: daemon health probes for supervisors and clients.

A daemon is *healthy* when it accepts a connection, answers the
``transport.hello`` handshake and replies to ``transport.ping`` — i.e. its
accept loop, dispatcher and control plane are all running, not merely the
port being bound.  :func:`wait_until_healthy` is the gate
:meth:`~repro.transport.supervisor.LocalSupervisor.restart` blocks on, so a
"restarted" daemon is actually serving before anyone talks to it.

The probe speaks the raw frame protocol (no :class:`DaemonClient`): it must
work against an unprovisioned daemon, must never retry internally (the
caller owns the schedule) and must be cheap enough to call in a poll loop.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.exceptions import DeadlineExceeded, PeerUnavailable
from repro.network.channel import Message
from repro.resilience.policy import Deadline
from repro.transport.framing import recv_frame, send_frame
from repro.transport.wire import WireCodec

__all__ = ["probe_daemon", "wait_until_healthy"]


def probe_daemon(address: tuple[str, int],
                 timeout: float = 2.0) -> dict[str, Any]:
    """One hello + ping round trip; returns the ping payload.

    Raises :class:`PeerUnavailable` (connection refused/reset, bad reply)
    or :class:`DeadlineExceeded` (daemon accepted but is not answering).
    """
    codec = WireCodec()
    deadline = Deadline(timeout)
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise PeerUnavailable(
            f"daemon at {address[0]}:{address[1]} is not accepting "
            f"connections: {exc}") from exc
    try:
        sock.settimeout(None)
        for tag, payload in (("transport.hello", {"peer": "client"}),
                             ("transport.ping", None)):
            message = Message(sender="probe", recipient="daemon", tag=tag,
                              payload=payload)
            send_frame(sock, codec.encode_message(message),
                       deadline=deadline.expires_at)
            body = recv_frame(sock, deadline=deadline.expires_at)
            if body is None:
                raise PeerUnavailable(
                    f"daemon at {address[0]}:{address[1]} closed the "
                    f"connection during the health probe")
            reply = codec.decode_message(body)
        if not isinstance(reply.payload, dict):
            raise PeerUnavailable(
                f"daemon at {address[0]}:{address[1]} sent a malformed "
                f"ping reply")
        return reply.payload
    finally:
        try:
            sock.close()
        except OSError:
            pass


def wait_until_healthy(address: tuple[str, int], timeout: float = 30.0,
                       interval: float = 0.05,
                       require_provisioned: bool = False) -> dict[str, Any]:
    """Poll :func:`probe_daemon` until it succeeds or ``timeout`` elapses.

    Returns the first healthy ping payload.  With ``require_provisioned``
    the daemon must also report ``provisioned: true`` (used when waiting for
    a restarted daemon to be re-provisioned by a client).
    """
    deadline = Deadline(timeout)
    last_error: Exception | None = None
    while True:
        remaining = deadline.remaining()
        if remaining is not None and remaining <= 0:
            break
        try:
            payload = probe_daemon(address,
                                   timeout=min(2.0, remaining or 2.0))
            if not require_provisioned or payload.get("provisioned"):
                return payload
            last_error = PeerUnavailable(
                f"daemon at {address[0]}:{address[1]} is up but not "
                f"provisioned")
        except (PeerUnavailable, DeadlineExceeded) as exc:
            last_error = exc
        time.sleep(interval)
    raise DeadlineExceeded(
        f"daemon at {address[0]}:{address[1]} did not become healthy "
        f"within {timeout:.1f}s: {last_error}")
