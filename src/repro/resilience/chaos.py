"""Deterministic fault injection for the distributed runtime.

Three tools, all driven by a seeded :class:`ChaosSchedule` so every failure
scenario is bit-reproducible:

* :class:`ChaosSchedule` — maps a frame index to a fault action (``drop``,
  ``delay``, ``duplicate``, ``truncate``, ``corrupt``, ``reset``).  Faults
  are confined to a finite window of frame indices, so a retrying client is
  guaranteed to eventually see a clean run — chaos tests terminate.
* :class:`ChaosChannel` — wraps any in-process channel implementing the
  ``DuplexChannel`` send/receive surface and applies the schedule to sent
  messages.  Used by unit/property tests of the retry and dedup layers.
* :class:`ChaosProxy` — a real TCP proxy that sits between two daemons (or
  between Bob and a daemon), parses the length-prefixed frame stream, and
  applies the schedule to individual frames: dropping them on the floor,
  delaying, duplicating, truncating mid-body (which poisons the stream and
  forces a reconnect), flipping payload bytes (which the wire codec rejects)
  or resetting the connection.  The proxy keeps accepting connections, so
  reconnect-and-retry layers dial straight back through it.

Every injected fault is counted under ``repro_chaos_faults_total{action}``
and appended to :attr:`ChaosProxy.events` — the chaos log the CI smoke step
uploads as an artifact.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.exceptions import ChannelError
from repro.telemetry import metrics as _metrics
from repro.transport.framing import recv_frame, send_frame

__all__ = ["ChaosSchedule", "ChaosChannel", "ChaosProxy"]

#: fault actions a schedule may assign to a frame index
ACTIONS = ("drop", "delay", "duplicate", "truncate", "corrupt", "reset")


@dataclass(frozen=True)
class ChaosSchedule:
    """Deterministic frame-index -> fault-action plan.

    Instances are plain data (frozen, comparable), so a test can assert the
    exact plan a seed produces.  ``action_for(index)`` is the single lookup
    the injection points use.
    """

    drops: frozenset = frozenset()
    delays: frozenset = frozenset()
    duplicates: frozenset = frozenset()
    truncates: frozenset = frozenset()
    corrupts: frozenset = frozenset()
    resets: frozenset = frozenset()
    delay_seconds: float = 0.05

    @classmethod
    def from_seed(cls, seed: int, window: int = 64, drops: int = 0,
                  delays: int = 0, duplicates: int = 0, truncates: int = 0,
                  corrupts: int = 0, resets: int = 0,
                  delay_seconds: float = 0.05,
                  first_frame: int = 0) -> "ChaosSchedule":
        """Draw distinct fault indices from ``[first_frame, first_frame +
        window)`` with a seeded RNG.  Faults never extend past the window,
        so retried operations eventually run clean."""
        rng = Random(seed)
        total = drops + delays + duplicates + truncates + corrupts + resets
        if total > window:
            raise ValueError(f"{total} faults do not fit in a {window}-frame "
                             f"window")
        indices = rng.sample(range(first_frame, first_frame + window), total)
        cursor = 0
        buckets = []
        for count in (drops, delays, duplicates, truncates, corrupts, resets):
            buckets.append(frozenset(indices[cursor:cursor + count]))
            cursor += count
        return cls(drops=buckets[0], delays=buckets[1], duplicates=buckets[2],
                   truncates=buckets[3], corrupts=buckets[4],
                   resets=buckets[5], delay_seconds=delay_seconds)

    @classmethod
    def clean(cls) -> "ChaosSchedule":
        """A schedule that never injects anything (pass-through)."""
        return cls()

    def action_for(self, index: int) -> str | None:
        if index in self.drops:
            return "drop"
        if index in self.delays:
            return "delay"
        if index in self.duplicates:
            return "duplicate"
        if index in self.truncates:
            return "truncate"
        if index in self.corrupts:
            return "corrupt"
        if index in self.resets:
            return "reset"
        return None

    def fault_count(self) -> int:
        return (len(self.drops) + len(self.delays) + len(self.duplicates)
                + len(self.truncates) + len(self.corrupts) + len(self.resets))


def _count_fault(action: str, where: str) -> None:
    _metrics.get_registry().counter(
        "repro_chaos_faults_total",
        "Faults injected by the chaos harness.", ("action", "where")).inc(
            action=action, where=where)


class ChaosChannel:
    """Fault-injecting wrapper over an in-process channel.

    Applies the schedule to :meth:`send` calls (the unit under test is the
    receiving side's resilience).  Every other attribute — ``receive``,
    ``pending``, traffic accounting — delegates to the wrapped channel.
    ``corrupt`` perturbs integer payloads (recursively in lists/tuples) the
    way bit flips on the wire would.
    """

    def __init__(self, inner: Any, schedule: ChaosSchedule,
                 label: str = "channel") -> None:
        self.inner = inner
        self.schedule = schedule
        self.label = label
        self.events: list[tuple[int, str, str]] = []
        self._frame_index = 0
        self._lock = threading.Lock()

    @property
    def runs_both_parties(self) -> bool:
        return self.inner.runs_both_parties

    def send(self, sender: str, payload: Any, tag: str = "") -> None:
        with self._lock:
            index = self._frame_index
            self._frame_index += 1
        action = self.schedule.action_for(index)
        if action is not None:
            self.events.append((index, action, tag))
            _count_fault(action, self.label)
        if action == "drop":
            return
        if action == "delay":
            time.sleep(self.schedule.delay_seconds)
        elif action == "duplicate":
            self.inner.send(sender, payload, tag=tag)
        elif action in ("corrupt", "truncate"):
            payload = _corrupt_payload(payload, truncate=(action == "truncate"))
        elif action == "reset":
            raise ChannelError(
                f"chaos: connection reset at frame {index} ({tag!r})")
        self.inner.send(sender, payload, tag=tag)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


def _corrupt_payload(payload: Any, truncate: bool = False) -> Any:
    """A deterministically damaged copy of ``payload``."""
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ 1
    if isinstance(payload, (list, tuple)):
        if truncate and len(payload) > 0:
            return type(payload)(payload[:-1])
        if payload:
            damaged = list(payload)
            damaged[0] = _corrupt_payload(damaged[0], truncate=truncate)
            return type(payload)(damaged)
        return payload
    if isinstance(payload, str):
        return payload + "\x00"
    return payload


class _ProxyLink:
    """One accepted client connection paired with its upstream dial."""

    def __init__(self, downstream: socket.socket,
                 upstream: socket.socket) -> None:
        self.downstream = downstream
        self.upstream = upstream
        self._closed = False
        self._lock = threading.Lock()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for sock in (self.downstream, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """Frame-aware TCP proxy injecting a seeded fault schedule.

    Args:
        target: ``(host, port)`` the proxy forwards to.
        forward: schedule applied to frames flowing client -> target.
        backward: schedule applied to frames flowing target -> client
            (defaults to clean).
        label: tag for the chaos log and metrics.

    Frame indices count *per direction across all connections*, so a
    schedule windowed to the first N frames is exhausted even when faults
    force reconnects — the retrying system converges to a clean run.
    """

    def __init__(self, target: tuple[str, int],
                 forward: ChaosSchedule | None = None,
                 backward: ChaosSchedule | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 label: str = "proxy") -> None:
        self.target = target
        self.schedules = {"forward": forward or ChaosSchedule.clean(),
                          "backward": backward or ChaosSchedule.clean()}
        self.label = label
        self.events: list[dict[str, Any]] = []
        self._counters = {"forward": 0, "backward": 0}
        self._counter_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._links: set[_ProxyLink] = set()
        self._links_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> "ChaosProxy":
        thread = threading.Thread(target=self._accept_loop,
                                  name="chaos-proxy-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                break
            try:
                upstream = socket.create_connection(self.target, timeout=10)
                upstream.settimeout(None)
            except OSError:
                downstream.close()
                continue
            link = _ProxyLink(downstream, upstream)
            with self._links_lock:
                self._links.add(link)
            for direction, src, dst in (("forward", downstream, upstream),
                                        ("backward", upstream, downstream)):
                pump = threading.Thread(
                    target=self._pump, args=(link, direction, src, dst),
                    name=f"chaos-proxy-{direction}", daemon=True)
                pump.start()
                self._threads.append(pump)

    def _next_index(self, direction: str) -> int:
        with self._counter_lock:
            index = self._counters[direction]
            self._counters[direction] = index + 1
            return index

    def _record(self, direction: str, index: int, action: str,
                size: int) -> None:
        self.events.append({"direction": direction, "frame": index,
                            "action": action, "bytes": size})
        _count_fault(action, self.label)

    def _pump(self, link: _ProxyLink, direction: str, src: socket.socket,
              dst: socket.socket) -> None:
        schedule = self.schedules[direction]
        try:
            while not self._stop.is_set():
                body = recv_frame(src)
                if body is None:
                    break
                index = self._next_index(direction)
                action = schedule.action_for(index)
                if action is None:
                    send_frame(dst, body)
                    continue
                self._record(direction, index, action, len(body))
                if action == "drop":
                    continue
                if action == "delay":
                    time.sleep(schedule.delay_seconds)
                    send_frame(dst, body)
                elif action == "duplicate":
                    send_frame(dst, body)
                    send_frame(dst, body)
                elif action == "corrupt":
                    # Flip bits mid-body: framing stays intact, decoding
                    # fails on the receiving side.
                    damaged = bytearray(body)
                    damaged[len(damaged) // 2] ^= 0xFF
                    send_frame(dst, bytes(damaged))
                elif action == "truncate":
                    # Advertise the full length but stop mid-body and kill
                    # the stream: the receiver sees a framing error.
                    header = len(body).to_bytes(4, "big")
                    dst.sendall(header + body[: max(1, len(body) // 2)])
                    break
                elif action == "reset":
                    break
        except (ChannelError, OSError):
            pass
        finally:
            link.close()
            with self._links_lock:
                self._links.discard(link)

    def close(self) -> None:
        """Stop accepting, sever every live link, join the pump threads."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._links_lock:
            links = list(self._links)
        for link in links:
            link.close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
