"""Crash-consistent persistence for daemon state that must survive SIGKILL.

Two primitives, both CRC-checked and fsync-bounded, plus the crash-point
injection machinery that proves their atomicity:

* **Snapshots** — :func:`write_snapshot` writes a whole versioned JSON
  document through the classic tmp-file + fsync + rename sequence, so a
  reader (:func:`read_snapshot`) only ever observes the old document or the
  new one, never a torn mix.  Used for write-rarely state: the per-daemon
  provision manifest and compacted journals.
* **Journals** — :class:`Journal` is an append-only operation log, one
  CRC32-framed JSON record per line, fsynced per append.  ``open()``
  replays every intact record and truncates a torn tail (the one record a
  crash between ``write`` and ``fsync`` may leave half-written), so replay
  after SIGKILL recovers exactly the prefix that was made durable.  Used
  for write-often state: mailbox deliveries and completed query replies.

:class:`DurableReplyCache` extends the resilience layer's
:class:`~repro.resilience.idempotency.ReplyCache` with a journal: a
completed reply is made durable *before* it becomes visible to waiters, so
a daemon restart replays it and a retried query id is served from disk
instead of re-executed.

**Crash points** let tests kill the process (or raise) at the exact
boundaries that distinguish a correct implementation from a lucky one:
after the data is written but before fsync, after fsync, and before the
rename.  Arm them programmatically (:func:`arm_crash_point`) for in-process
tests or through ``REPRO_CRASH_POINT=<name>[:raise|kill]`` for subprocess
daemons; each armed point fires once.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import CorruptStateError
from repro.resilience.idempotency import ReplyCache
from repro.telemetry import metrics as _metrics

__all__ = [
    "CrashPointFired",
    "arm_crash_point",
    "disarm_crash_points",
    "crash_point",
    "atomic_write_bytes",
    "write_snapshot",
    "read_snapshot",
    "Journal",
    "DurableReplyCache",
]

#: snapshot/journal format version, bumped on incompatible layout changes
STATE_FORMAT = 1

#: every crash boundary the harness can arm (kept in one place so the test
#: suite can iterate over all of them)
CRASH_POINTS = (
    "snapshot.pre_fsync",
    "snapshot.post_fsync",
    "snapshot.pre_rename",
    "journal.pre_fsync",
    "journal.post_fsync",
)


# ---------------------------------------------------------------------------
# Crash-point injection
# ---------------------------------------------------------------------------

class CrashPointFired(BaseException):
    """An armed crash point fired in ``raise`` mode.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    recovery paths cannot swallow it — like the SIGKILL it simulates, it
    unwinds everything.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"crash point {name!r} fired")
        self.name = name


_armed: dict[str, str] = {}
_armed_lock = threading.Lock()


def _load_env_crash_points() -> None:
    """Arm crash points from ``REPRO_CRASH_POINT`` (subprocess harness).

    Format: comma-separated ``name`` or ``name:mode`` entries, mode one of
    ``raise`` (default) or ``kill`` (SIGKILL self — a real crash).
    """
    spec = os.environ.get("REPRO_CRASH_POINT", "")
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, mode = entry.partition(":")
        arm_crash_point(name, mode or "raise")


def arm_crash_point(name: str, mode: str = "raise") -> None:
    """Arm one crash point; it fires (once) at the next crossing."""
    if mode not in ("raise", "kill"):
        raise ValueError(f"unknown crash mode {mode!r}")
    with _armed_lock:
        _armed[name] = mode


def disarm_crash_points() -> None:
    """Disarm everything (test teardown)."""
    with _armed_lock:
        _armed.clear()


def crash_point(name: str) -> None:
    """Fire if ``name`` is armed: raise :class:`CrashPointFired` or SIGKILL."""
    if not _armed:
        return
    with _armed_lock:
        mode = _armed.pop(name, None)
    if mode is None:
        return
    if mode == "kill":  # pragma: no cover - the process dies here
        os.kill(os.getpid(), signal.SIGKILL)
    raise CrashPointFired(name)


_load_env_crash_points()


# ---------------------------------------------------------------------------
# Atomic snapshots
# ---------------------------------------------------------------------------

def _crc(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable (best effort on platforms without dir fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes,
                       fsync: bool = True) -> None:
    """Replace ``path`` with ``data`` atomically (tmp + fsync + rename).

    A crash at any boundary leaves either the old file or the new one —
    never a torn mix: the data is fully written and fsynced in a sibling
    temp file before a single ``rename`` makes it visible, and the
    directory entry is fsynced after so the rename itself survives power
    loss.  The three ``crash_point`` crossings let the harness prove it.
    """
    target = Path(path)
    temporary = target.with_name(target.name + ".tmp")
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        crash_point("snapshot.pre_fsync")
        if fsync:
            os.fsync(handle.fileno())
    crash_point("snapshot.post_fsync")
    crash_point("snapshot.pre_rename")
    os.replace(temporary, target)
    if fsync:
        _fsync_directory(target.parent)


def write_snapshot(path: str | Path, kind: str, payload: Any,
                   fsync: bool = True) -> None:
    """Atomically persist one versioned, CRC-checked JSON document."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    document = {
        "kind": kind,
        "format": STATE_FORMAT,
        "crc": _crc(body.encode("utf-8")),
        "payload": body,
    }
    atomic_write_bytes(path, json.dumps(document).encode("utf-8"),
                       fsync=fsync)


def read_snapshot(path: str | Path, kind: str) -> Any | None:
    """Load a :func:`write_snapshot` document; ``None`` when absent.

    A torn, truncated or bit-flipped file raises the typed
    :class:`~repro.exceptions.CorruptStateError` so the caller can reject
    the state (and start fresh) instead of crashing on a decode error deep
    inside recovery.
    """
    target = Path(path)
    try:
        raw = target.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CorruptStateError(f"unreadable snapshot {target}: {exc}")
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptStateError(f"torn snapshot {target}: {exc}")
    if (not isinstance(document, dict) or document.get("kind") != kind
            or document.get("format") != STATE_FORMAT):
        raise CorruptStateError(
            f"{target} is not a version-{STATE_FORMAT} {kind!r} snapshot")
    body = document.get("payload")
    if (not isinstance(body, str)
            or document.get("crc") != _crc(body.encode("utf-8"))):
        raise CorruptStateError(f"snapshot {target} failed its CRC check")
    return json.loads(body)


# ---------------------------------------------------------------------------
# Append-only journal
# ---------------------------------------------------------------------------

def _journal_records_counter():
    return _metrics.get_registry().counter(
        "repro_journal_records_total",
        "Durability-journal records appended, replayed or discarded.",
        ("journal", "event"))


class Journal:
    """Append-only operation log with CRC-framed records and torn-tail repair.

    Each record is one line, ``<crc32-hex> <compact-json>\\n``, fsynced per
    append (``fsync=False`` trades the durability guarantee for speed —
    useful for benchmarks, never for the daemons' real state).  ``open()``
    replays the longest intact prefix: the first record with a bad CRC,
    unparsable JSON or a missing newline terminates replay and everything
    from there on is truncated away, because a single crash can only tear
    the *last* append.  Anything else (a bad record followed by good ones)
    is not a crash artifact but corruption, and raises
    :class:`~repro.exceptions.CorruptStateError`.
    """

    def __init__(self, path: str | Path, name: str = "journal",
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self.name = name
        self.fsync = fsync
        self.records = 0  # records currently in the file
        self._handle = None
        self._lock = threading.Lock()

    # -- replay ------------------------------------------------------------
    def open(self) -> list[Any]:
        """Replay the journal and position the append handle; returns records."""
        records, good_bytes, tail = self._scan()
        if tail:
            counter = _journal_records_counter()
            counter.inc(journal=self.name, event="discarded")
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        if records:
            _journal_records_counter().inc(len(records), journal=self.name,
                                           event="replayed")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self.records = len(records)
        return records

    def _scan(self) -> tuple[list[Any], int, bool]:
        """Parse the file; returns (records, intact byte count, torn tail?)."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0, False
        records: list[Any] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                return records, offset, True  # torn tail: no terminator
            line = raw[offset:newline]
            space = line.find(b" ")
            if space != 8:
                break
            crc, body = line[:8], line[8 + 1:]
            if crc.decode("ascii", "replace") != _crc(body):
                break
            try:
                records.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            offset = newline + 1
        else:
            return records, offset, False
        # A bad framed line mid-file: only the *final* record may legally be
        # torn by a crash.  Anything intact after the bad line means the file
        # was corrupted, not crash-truncated.
        rest = raw[offset:]
        if b"\n" in rest.rstrip(b"\n"):
            raise CorruptStateError(
                f"journal {self.path} is corrupt at byte {offset} "
                f"(intact records follow a damaged one)")
        return records, offset, True

    # -- appending ---------------------------------------------------------
    def append(self, record: Any) -> None:
        """Durably append one record (write -> fsync, crash-point bounded)."""
        body = json.dumps(record, separators=(",", ":")).encode("utf-8")
        line = _crc(body).encode("ascii") + b" " + body + b"\n"
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "ab")
            self._handle.write(line)
            self._handle.flush()
            crash_point("journal.pre_fsync")
            if self.fsync:
                os.fsync(self._handle.fileno())
            crash_point("journal.post_fsync")
            self.records += 1
        _journal_records_counter().inc(journal=self.name, event="appended")

    def rewrite(self, records: list[Any]) -> None:
        """Compact: atomically replace the file with just ``records``."""
        lines = bytearray()
        for record in records:
            body = json.dumps(record, separators=(",", ":")).encode("utf-8")
            lines += _crc(body).encode("ascii") + b" " + body + b"\n"
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            atomic_write_bytes(self.path, bytes(lines), fsync=self.fsync)
            self._handle = open(self.path, "ab")
            self.records = len(records)

    def close(self) -> None:
        """Release the append handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------------
# Durable reply cache
# ---------------------------------------------------------------------------

class DurableReplyCache(ReplyCache):
    """A :class:`ReplyCache` whose completed replies survive a restart.

    Every completed reply is appended to a journal *before* it becomes
    visible to waiters (inside the cache's completion critical section), so
    a reply a client may have observed is always recoverable: after a
    SIGKILL + restart, the same query id replays the recorded answer with
    zero re-execution.  ``clear()`` (a new provisioning epoch) is journaled
    too, so replay never resurrects replies from a previous table/key.

    The journal grows with every completion; once it exceeds
    ``compact_every`` records it is rewritten (atomic snapshot semantics)
    to just the entries still cached, keeping disk usage proportional to
    the cache capacity rather than the query count.
    """

    def __init__(self, path: str | Path, capacity: int = 64,
                 name: str = "replies", fsync: bool = True,
                 compact_every: int = 256) -> None:
        super().__init__(capacity=capacity, name=name)
        self._journal = Journal(path, name=name, fsync=fsync)
        self._compact_every = max(int(compact_every), 1)
        self.recovered = 0
        for record in self._journal.open():
            if not isinstance(record, dict):
                continue
            operation = record.get("op")
            if operation == "clear":
                self._entries.clear()
            elif operation == "reply":
                self._adopt(record.get("key"), record.get("value"))
        self.recovered = len(self._entries)

    def _adopt(self, key: Any, value: Any) -> None:
        if not isinstance(key, str):
            return
        entry = self._entries.get(key)
        if entry is None:
            from repro.resilience.idempotency import _Entry

            entry = _Entry()
            self._entries[key] = entry
        entry.done = True
        entry.value = value
        self._evict_completed()

    # -- persistence hooks (called under the cache lock) -------------------
    def _record_completed(self, key: str, value: Any) -> None:
        self._journal.append({"op": "reply", "key": key, "value": value})
        if self._journal.records > self._compact_every:
            self._compact()

    def _record_cleared(self) -> None:
        self._journal.append({"op": "clear"})

    def _compact(self) -> None:
        live = [{"op": "reply", "key": key, "value": entry.value}
                for key, entry in self._entries.items() if entry.done]
        self._journal.rewrite(live)

    def close(self) -> None:
        """Close the journal handle (entries stay on disk for replay)."""
        self._journal.close()

    @property
    def journal_records(self) -> int:
        """Records currently in the journal file (introspection)."""
        return self._journal.records
