"""Fault tolerance for the distributed runtime.

The paper's protocol assumes C1 and C2 never fail and every message
arrives; ``repro.resilience`` is the layer that removes that assumption
from the deployed system:

* :mod:`repro.resilience.policy` — :class:`Deadline` (absolute bounds on
  every blocking operation) and :class:`RetryPolicy`/:func:`retry_call`
  (bounded exponential backoff with seedable jitter, retrying only typed
  *retriable* failures).
* :mod:`repro.resilience.idempotency` — :class:`ReplyCache`, the replay
  memo that makes retried ``transport.query``/``transport.fetch_share``
  requests safe: a duplicate never re-consumes single-use pool entries or
  mailbox shares, and a duplicate of an in-flight request re-attaches to it.
* :mod:`repro.resilience.durability` — crash-consistent persistence:
  atomic CRC-checked snapshots (tmp + fsync + rename), the append-only
  :class:`Journal` with replay-on-open and torn-tail repair,
  :class:`DurableReplyCache`, and the crash-point injection harness
  (:func:`arm_crash_point` / ``REPRO_CRASH_POINT``) that proves the
  atomicity guarantees under SIGKILL at every boundary.
* :mod:`repro.resilience.health` — control-plane liveness probes gating
  supervisor restarts.
* :mod:`repro.resilience.chaos` — the deterministic fault-injection
  harness (:class:`ChaosSchedule`, :class:`ChaosChannel`,
  :class:`ChaosProxy`) behind ``tests/integration/test_chaos.py`` and the
  CI ``chaos-smoke`` step.

Every resilience event — retries, reconnects, deadline hits, restarts,
rejected queries, injected faults — is counted in the
:mod:`repro.telemetry` registry (``repro_retries_total``,
``repro_reconnects_total``, ``repro_deadline_hits_total``,
``repro_daemon_restarts_total``, ``repro_rejected_queries_total``,
``repro_chaos_faults_total``) and surfaced by ``repro stats``.
"""

from repro.resilience.chaos import ChaosChannel, ChaosProxy, ChaosSchedule
from repro.resilience.durability import (
    CrashPointFired,
    DurableReplyCache,
    Journal,
    arm_crash_point,
    crash_point,
    disarm_crash_points,
    read_snapshot,
    write_snapshot,
)
from repro.resilience.health import probe_daemon, wait_until_healthy
from repro.resilience.idempotency import ReplyCache
from repro.resilience.policy import Deadline, RetryPolicy, is_retriable, retry_call

__all__ = [
    "ChaosChannel",
    "ChaosProxy",
    "ChaosSchedule",
    "CrashPointFired",
    "Deadline",
    "DurableReplyCache",
    "Journal",
    "ReplyCache",
    "RetryPolicy",
    "arm_crash_point",
    "crash_point",
    "disarm_crash_points",
    "is_retriable",
    "probe_daemon",
    "read_snapshot",
    "retry_call",
    "wait_until_healthy",
    "write_snapshot",
]
