"""Deadlines and idempotent-retry policy for the distributed runtime.

Two small primitives shared by every layer that talks to a remote process:

* :class:`Deadline` — an absolute point in monotonic time.  Blocking calls
  receive a deadline instead of a per-call timeout so that a multi-step
  operation (connect, send, await reply, fetch share) shares one overall
  bound: the sum of the steps can never exceed it.
* :class:`RetryPolicy` + :func:`retry_call` — bounded retries with
  exponential backoff and deterministic (seedable) jitter.  Only *retriable*
  failures are retried: the typed transport errors
  (:class:`~repro.exceptions.DeadlineExceeded`,
  :class:`~repro.exceptions.PeerUnavailable`,
  :class:`~repro.exceptions.ServiceUnavailable`) carry ``retriable = True``;
  everything else (protocol bugs, configuration errors) propagates on the
  first attempt.

Every retry is counted in the process-wide telemetry registry under
``repro_retries_total{op}`` so operators can see a degraded link before it
becomes an outage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, TypeVar

from repro.exceptions import DeadlineExceeded, ReproError
from repro.telemetry import metrics as _metrics

__all__ = ["Deadline", "RetryPolicy", "retry_call", "is_retriable"]

T = TypeVar("T")


def is_retriable(error: BaseException) -> bool:
    """Whether ``error`` is a transient failure a retry may cure."""
    return bool(getattr(error, "retriable", False))


class Deadline:
    """An absolute point in monotonic time shared by a multi-step operation.

    ``Deadline(None)`` (or :meth:`unbounded`) never expires, so call sites
    can thread one object through unconditionally.
    """

    __slots__ = ("_expires_at", "seconds")

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._expires_at = (None if seconds is None
                            else time.monotonic() + seconds)

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """Alias of the constructor, reading naturally at call sites."""
        return cls(seconds)

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    @property
    def expires_at(self) -> float | None:
        """Monotonic timestamp this deadline expires at (``None`` = never)."""
        return self._expires_at

    def remaining(self) -> float | None:
        """Seconds left (may be negative); ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def require(self, operation: str) -> float | None:
        """Remaining seconds, raising :class:`DeadlineExceeded` when spent."""
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded(
                f"{operation} exceeded its {self.seconds:.3f}s deadline")
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Deadline(remaining={self.remaining()})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Args:
        max_attempts: total attempts including the first one.
        base_delay_seconds: backoff before the first retry.
        multiplier: growth factor per retry.
        max_delay_seconds: cap on any single backoff sleep.
        jitter: fraction of the computed delay randomized away (``0.5``
            means the sleep is uniform in ``[0.5*d, d]``).  Jitter draws
            come from the ``rng`` passed to :func:`retry_call`, so seeded
            tests get bit-reproducible schedules.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.05
    multiplier: float = 2.0
    max_delay_seconds: float = 2.0
    jitter: float = 0.5

    def backoff_seconds(self, retry_index: int,
                        rng: Random | None = None) -> float:
        """Sleep before retry number ``retry_index`` (0-based)."""
        delay = min(self.base_delay_seconds * (self.multiplier ** retry_index),
                    self.max_delay_seconds)
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt: failures propagate immediately."""
        return cls(max_attempts=1)


def retry_call(operation: Callable[[], T], policy: RetryPolicy,
               op: str = "call", rng: Random | None = None,
               deadline: Deadline | None = None,
               on_retry: Callable[[BaseException, int], Any] | None = None,
               ) -> T:
    """Run ``operation`` under ``policy``, retrying retriable failures.

    Args:
        operation: zero-argument callable; must be idempotent (the caller
            is responsible for replay keys — see
            :mod:`repro.resilience.idempotency`).
        policy: attempt/backoff schedule.
        op: label for the ``repro_retries_total`` counter.
        rng: jitter source (seedable for deterministic tests).
        deadline: overall bound across all attempts *and* backoff sleeps;
            when it would expire mid-backoff the last error is re-raised
            instead of sleeping past it.
        on_retry: observer invoked as ``on_retry(error, retry_index)``
            before each backoff sleep (used to re-establish connections or
            re-provision a restarted daemon between attempts).
    """
    retries = _metrics.get_registry().counter(
        "repro_retries_total",
        "Retried operations against a remote party, by operation.", ("op",))
    last_error: BaseException | None = None
    for attempt in range(max(1, policy.max_attempts)):
        if deadline is not None and deadline.expired():
            break
        try:
            return operation()
        except ReproError as error:
            if not is_retriable(error):
                raise
            last_error = error
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff_seconds(attempt, rng)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None and remaining <= delay:
                    break  # sleeping would outlive the deadline
            retries.inc(op=op)
            if on_retry is not None:
                on_retry(error, attempt)
            if delay > 0:
                time.sleep(delay)
    assert last_error is not None
    raise last_error
