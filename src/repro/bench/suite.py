"""Small deterministic benchmarks that extend the history trajectory.

Each registered bench is intentionally tiny — the point is a cheap,
repeatable sample that CI can take on every run, not a rigorous
measurement.  Noise handling lives in :mod:`repro.bench.history` (median
± MAD baselines), so a bench only has to be *deterministic in its work*:
fixed seeds, fixed key, fixed dataset.  The operation counts it reports
are exactly reproducible; the timings are the noisy part the baselines
absorb.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Iterable

from repro.bench.provenance import provenance_block

__all__ = ["BenchSpec", "REGISTRY", "register", "run_suite"]

KEY_BITS = 256


@dataclass(frozen=True)
class BenchSpec:
    name: str
    description: str
    func: Callable[[bool], dict[str, Any]]


REGISTRY: dict[str, BenchSpec] = {}


def register(name: str, description: str):
    def decorate(func: Callable[[bool], dict[str, Any]]) -> Callable:
        REGISTRY[name] = BenchSpec(name=name, description=description,
                                   func=func)
        return func
    return decorate


def _record(name: str, params: dict[str, Any],
            metrics: dict[str, Any]) -> dict[str, Any]:
    return {
        "bench": name,
        "provenance": provenance_block(key_size=KEY_BITS),
        "params": params,
        "metrics": metrics,
    }


def _deploy(n_records: int, dimensions: int, distance_bits: int):
    from repro.core.cloud import FederatedCloud
    from repro.core.roles import DataOwner, QueryClient
    from repro.crypto.paillier import generate_keypair
    from repro.db.datasets import synthetic_uniform

    keypair = generate_keypair(KEY_BITS, Random(5150))
    table = synthetic_uniform(n_records=n_records, dimensions=dimensions,
                              distance_bits=distance_bits, seed=5)
    owner = DataOwner(table, keypair=keypair, rng=Random(1))
    cloud = FederatedCloud.deploy(keypair, rng=Random(2))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, dimensions, rng=Random(3))
    return keypair, cloud, client


@register("paillier_kernel",
          "encrypt/decrypt/scalar-mul batch kernels at 256-bit")
def bench_paillier_kernel(quick: bool) -> dict[str, Any]:
    from repro.crypto.paillier import generate_keypair

    batch = 16 if quick else 64
    keypair = generate_keypair(KEY_BITS, Random(5150))
    pk, sk = keypair.public_key, keypair.private_key
    values = [Random(7).randrange(1, 1 << 30) for _ in range(batch)]

    start = time.perf_counter()
    ciphers = pk.encrypt_batch(values)
    encrypt_s = time.perf_counter() - start

    start = time.perf_counter()
    pk.scalar_mul_batch(ciphers, 3)
    scalar_mul_s = time.perf_counter() - start

    start = time.perf_counter()
    sk.decrypt_batch(ciphers)
    decrypt_s = time.perf_counter() - start

    return _record(
        "paillier_kernel",
        {"key_size": KEY_BITS, "batch": batch, "quick": quick},
        {
            "encrypt_batch_s": encrypt_s,
            "scalar_mul_batch_s": scalar_mul_s,
            "decrypt_batch_s": decrypt_s,
            "encrypt_per_second": batch / encrypt_s if encrypt_s else 0.0,
        },
    )


def _query_bench(name: str, protocol_factory, n_records: int,
                 distance_bits: int, k: int) -> dict[str, Any]:
    dimensions = 2
    keypair, cloud, client = _deploy(n_records, dimensions, distance_bits)
    protocol = protocol_factory(cloud, distance_bits)
    query = client.encrypt_query([3, 4])

    start = time.perf_counter()
    protocol.run_with_report(query, k, distance_bits=distance_bits)
    query_s = time.perf_counter() - start

    report = protocol.last_report
    stats = report.stats
    metrics: dict[str, Any] = {
        "query_s": query_s,
        "encryptions": stats.total_encryptions,
        "exponentiations": stats.total_exponentiations,
        "decryptions": stats.c2_decryptions,
        "messages": stats.messages,
    }
    for row in report.cost_breakdown:
        if row["party"] == "C1":
            metrics[f"phase.{row['phase']}_s"] = row["seconds"]
    return _record(
        name,
        {"key_size": KEY_BITS, "n_records": n_records,
         "dimensions": dimensions, "distance_bits": distance_bits, "k": k},
        metrics,
    )


@register("sknn_basic_query", "one serial SkNN_b query (n=12, k=2)")
def bench_sknn_basic(quick: bool) -> dict[str, Any]:
    from repro.core.sknn_basic import SkNNBasic

    n = 12 if quick else 24
    return _query_bench(
        "sknn_basic_query",
        lambda cloud, bits: SkNNBasic(cloud),
        n_records=n, distance_bits=7, k=2)


@register("sknn_secure_query", "one serial SkNN_m query (n=6, k=2)")
def bench_sknn_secure(quick: bool) -> dict[str, Any]:
    from repro.core.sknn_secure import SkNNSecure

    n = 6 if quick else 10
    return _query_bench(
        "sknn_secure_query",
        lambda cloud, bits: SkNNSecure(cloud, distance_bits=bits),
        n_records=n, distance_bits=7, k=2)


@register("service_throughput",
          "sharded scatter-gather serving throughput (2 shards, batched)")
def bench_service_throughput(quick: bool) -> dict[str, Any]:
    from repro.service.scheduler import QueryServer
    from repro.service.sharding import ShardedCloud

    n = 12 if quick else 24
    n_queries = 2 if quick else 4
    dimensions, distance_bits, k = 2, 7, 2
    keypair, cloud, client = _deploy(n, dimensions, distance_bits)
    rng = Random(7)
    queries = [[rng.randrange(0, 1 << (distance_bits // 2))
                for _ in range(dimensions)] for _ in range(n_queries)]

    sharded = ShardedCloud(cloud, shards=2, workers=2, backend="thread")
    server = QueryServer(sharded, batch_size=n_queries, rng=Random(11))
    session = server.open_session("bench")
    try:
        start = time.perf_counter()
        pending = [session.submit(query, k) for query in queries]
        server.flush()
        answers = [item.result(timeout=600) for item in pending]
        wall_s = time.perf_counter() - start
    finally:
        server.close()
    if any(len(answer.neighbors) != k for answer in answers):
        raise RuntimeError("service bench returned a malformed answer")
    return _record(
        "service_throughput",
        {"key_size": KEY_BITS, "n_records": n, "dimensions": dimensions,
         "distance_bits": distance_bits, "k": k, "queries": n_queries,
         "shards": 2, "quick": quick},
        {
            "wall_s": wall_s,
            "queries_per_second": n_queries / wall_s if wall_s else 0.0,
        },
    )


def run_suite(names: Iterable[str] | None = None,
              quick: bool = False) -> list[dict[str, Any]]:
    """Run the selected (default: all) benches, returning history records."""
    selected = list(names) if names else sorted(REGISTRY)
    unknown = [name for name in selected if name not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown bench(es): {', '.join(unknown)}; "
                       f"available: {', '.join(sorted(REGISTRY))}")
    return [REGISTRY[name].func(quick) for name in selected]
