"""Benchmark history: provenance-stamped trajectories and regression gates.

The benchmarks under ``benchmarks/`` emit point-in-time ``BENCH_*.json``
files that each PR overwrites, which makes regressions between the coarse
CI gates invisible.  This package keeps the *trajectory*:

* :mod:`repro.bench.provenance` — the common provenance block (git sha,
  crypto backend, python version, key size) stamped into every record.
* :mod:`repro.bench.history` — append-only ``benchmarks/history/*.jsonl``
  files, noise-aware rolling baselines (median ± MAD over the last N
  runs), ASCII trend reports, and the regression check.
* :mod:`repro.bench.suite` — small deterministic registered benchmarks
  (`repro bench run`) that extend the trajectory on every CI run.

CLI: ``repro bench run|report|check``.
"""

from repro.bench.history import (
    BenchHistory,
    RegressionFinding,
    check_history,
    numeric_leaves,
    render_trend,
)
from repro.bench.provenance import provenance_block
from repro.bench.suite import REGISTRY, run_suite

__all__ = [
    "BenchHistory",
    "REGISTRY",
    "RegressionFinding",
    "check_history",
    "numeric_leaves",
    "provenance_block",
    "render_trend",
    "run_suite",
]
