"""The common provenance block stamped into every benchmark record.

A benchmark number without its context — which commit, which bigint
backend, which interpreter, which key size — cannot be compared across
runs.  Every ``BENCH_*.json`` and every ``benchmarks/history/*.jsonl``
record carries the same block so the history checker can group comparable
runs and a human can explain an outlier at a glance.
"""

from __future__ import annotations

import platform
import subprocess
import time
from typing import Any

__all__ = ["git_revision", "provenance_block"]


def git_revision(cwd: str | None = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5.0, cwd=cwd)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance_block(key_size: int | None = None,
                     cwd: str | None = None) -> dict[str, Any]:
    """Provenance for one benchmark record.

    Args:
        key_size: the Paillier key size the benchmark ran at, when it has
            a single one (``None`` for multi-size or key-free benches).
        cwd: directory whose git checkout identifies the commit (default:
            the process working directory).
    """
    from repro.crypto.backend import get_backend

    return {
        "git_sha": git_revision(cwd),
        "crypto_backend": get_backend().name,
        "python": platform.python_version(),
        "key_size": key_size,
        "timestamp": time.time(),
    }
