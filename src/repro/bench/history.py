"""Append-only benchmark history with noise-aware regression detection.

One JSONL file per benchmark under ``benchmarks/history/``; every line is a
record ``{"bench", "provenance", "params", "metrics", ...}``.  Appending is
the only write operation — the trajectory is never rewritten, so a `git log`
of the file is the performance history of the repo.

Regression semantics (:func:`check_history`): the latest record's metrics
are compared against a rolling baseline — the median of the same metric
over the last ``window`` *comparable* prior runs (same crypto backend and
key size).  A metric regresses when it lands beyond

    ``median + max(k · 1.4826 · MAD, rel_slack · |median|, abs_floor)``

(the direction flips for higher-is-better metrics such as throughputs and
speedups).  The MAD term adapts the gate to each metric's observed noise;
the relative-slack term keeps near-deterministic metrics (operation counts
have MAD 0) from flagging on trivial jitter; the absolute floor ignores
micro-jitter on sub-millisecond timings.  Fewer than ``min_history``
comparable priors means no verdict — the gate never blocks a young
trajectory.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "BenchHistory",
    "RegressionFinding",
    "check_history",
    "numeric_leaves",
    "render_trend",
]

#: metric-name fragments whose values are better when *larger*.
HIGHER_IS_BETTER = ("per_second", "qps", "speedup", "throughput")

#: consistency with a normal distribution: sigma ~= 1.4826 * MAD.
MAD_SCALE = 1.4826

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def numeric_leaves(mapping: Mapping[str, Any] | None,
                   prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to ``{"a.b": value}`` keeping numeric leaves."""
    out: dict[str, float] = {}
    if not mapping:
        return out
    for key, value in mapping.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(numeric_leaves(value, prefix=f"{path}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def higher_is_better(metric: str) -> bool:
    leaf = metric.rsplit(".", 1)[-1]
    return any(fragment in leaf for fragment in HIGHER_IS_BETTER)


@dataclass
class RegressionFinding:
    """One metric of one benchmark that crossed its baseline gate."""

    bench: str
    metric: str
    value: float
    baseline: float
    threshold: float
    history: int

    def describe(self) -> str:
        direction = "below" if higher_is_better(self.metric) else "above"
        return (f"{self.bench}:{self.metric} = {self.value:g} is {direction} "
                f"the gate {self.threshold:g} (baseline median "
                f"{self.baseline:g} over {self.history} runs)")


class BenchHistory:
    """The ``benchmarks/history/`` directory of JSONL trajectories."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, bench: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in bench)
        return self.root / f"{safe}.jsonl"

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    def append(self, bench: str, record: Mapping[str, Any]) -> Path:
        path = self.path_for(bench)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def load(self, bench: str) -> list[dict[str, Any]]:
        path = self.path_for(bench)
        if not path.exists():
            return []
        records: list[dict[str, Any]] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn append must not poison the whole file
            if isinstance(record, dict):
                records.append(record)
        return records


def _comparable(candidate: Mapping[str, Any],
                record: Mapping[str, Any]) -> bool:
    """Same crypto backend and key size — otherwise baselines mix regimes."""
    mine = candidate.get("provenance") or {}
    theirs = record.get("provenance") or {}
    return (mine.get("crypto_backend") == theirs.get("crypto_backend")
            and mine.get("key_size") == theirs.get("key_size"))


def check_history(bench: str, records: Sequence[Mapping[str, Any]],
                  window: int = 20, min_history: int = 3,
                  mad_k: float = 4.0, rel_slack: float = 0.5,
                  abs_floor: float = 1e-4) -> list[RegressionFinding]:
    """Check the latest record of one trajectory against its baseline."""
    if len(records) < 2:
        return []
    candidate = records[-1]
    metrics = numeric_leaves(candidate.get("metrics"))
    priors = [record for record in records[:-1]
              if _comparable(candidate, record)][-window:]
    findings: list[RegressionFinding] = []
    for metric, value in sorted(metrics.items()):
        history = [numeric_leaves(record.get("metrics")).get(metric)
                   for record in priors]
        history = [sample for sample in history if sample is not None]
        if len(history) < min_history:
            continue
        baseline = statistics.median(history)
        mad = statistics.median(abs(sample - baseline) for sample in history)
        slack = max(mad_k * MAD_SCALE * mad, rel_slack * abs(baseline),
                    abs_floor)
        if higher_is_better(metric):
            threshold = baseline - slack
            regressed = value < threshold
        else:
            threshold = baseline + slack
            regressed = value > threshold
        if regressed:
            findings.append(RegressionFinding(
                bench=bench, metric=metric, value=value, baseline=baseline,
                threshold=threshold, history=len(history)))
    return findings


def _sparkline(values: Sequence[float]) -> str:
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_BLOCKS[0] * len(values)
    scale = (len(SPARK_BLOCKS) - 1) / (high - low)
    return "".join(SPARK_BLOCKS[int((value - low) * scale)]
                   for value in values)


def render_trend(bench: str, records: Sequence[Mapping[str, Any]],
                 metrics: Iterable[str] | None = None,
                 last: int = 30) -> str:
    """ASCII trend report for one benchmark's trajectory."""
    if not records:
        return f"{bench}: (no history)\n"
    tail = list(records)[-last:]
    wanted = set(metrics) if metrics else None
    names: list[str] = []
    for record in tail:
        for name in numeric_leaves(record.get("metrics")):
            if name not in names and (wanted is None or name in wanted):
                names.append(name)
    lines = [f"{bench} — {len(records)} runs"
             + (f" (showing last {len(tail)})" if len(records) > len(tail)
                else "")]
    for name in names:
        series = [numeric_leaves(record.get("metrics")).get(name)
                  for record in tail]
        series = [sample for sample in series if sample is not None]
        if not series:
            continue
        lines.append(
            f"  {name:<36} {_sparkline(series)}  "
            f"min={min(series):g} median={statistics.median(series):g} "
            f"last={series[-1]:g}")
    shas = [(record.get("provenance") or {}).get("git_sha", "?")
            for record in tail]
    if shas:
        lines.append(f"  commits: {shas[0]} … {shas[-1]}")
    return "\n".join(lines) + "\n"
