"""SkNN_b — the basic (efficient but leaky) protocol, Algorithm 5 of the paper.

Bob sends his attribute-wise encrypted query to C1.  C1 computes the encrypted
squared distance to every record with SSED, then forwards *all* encrypted
distances (paired with their record indices) to C2.  C2 — who holds the secret
key — decrypts the distances, picks the indices of the ``k`` smallest, and
returns that index list to C1.  C1 masks the corresponding encrypted records
and the usual two-share delivery gives the plaintext records to Bob.

Security characteristics (Section 4.3): the query and the record contents stay
hidden, but

* C2 learns every plaintext distance ``d_i``, and
* both clouds learn *which* records are the k nearest neighbors (the data
  access pattern).

The paper accepts this leakage for applications where it is tolerable; the
fully secure variant is :class:`~repro.core.sknn_secure.SkNNSecure`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNProtocol
from repro.crypto.paillier import Ciphertext
from repro.telemetry import profiling as _profiling

__all__ = ["SkNNBasic"]


class SkNNBasic(SkNNProtocol):
    """The basic secure kNN protocol (Algorithm 5)."""

    name = "SkNNb"

    P2_STEPS = dict(SkNNProtocol.P2_STEPS,
                    **{"SkNNb.encrypted_distances": "_p2_select_top_k"})

    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer a kNN query, revealing distances to C2 and access patterns.

        Args:
            encrypted_query: Bob's attribute-wise encrypted query ``Epk(Q)``.
            k: number of nearest neighbors requested.

        Returns:
            The two result shares for Bob (masks from C1, masked plaintext
            attribute values decrypted by C2).
        """
        self._validate_query(encrypted_query, k)
        c1 = self.cloud.c1

        # Step 2: C1 and C2 jointly compute E(d_i) for every record.
        encrypted_distances = self._compute_encrypted_distances(encrypted_query)

        with _profiling.cost_scope("select"):
            # Step 2(c): C1 sends the (index, E(d_i), k) triple list to C2.
            indexed = list(enumerate(encrypted_distances))
            c1.send([k, indexed], tag="SkNNb.encrypted_distances")

            # Step 3: C2 decrypts all distances, returns the top-k index list.
            self.p2_step("SkNNb.encrypted_distances")

            # Step 4: C1 selects the encrypted records named by the index list.
            delta = c1.receive(expected_tag="SkNNb.topk_indices")
            selected_records = [
                list(self.encrypted_table.record_at(index).ciphertexts)
                for index in delta
            ]

        # Steps 4-6: mask, decrypt, and hand both shares to Bob.
        return self._deliver_records(selected_records)

    # -- C2 step ---------------------------------------------------------------
    def _p2_select_top_k(self) -> None:
        """Step 3: C2 decrypts all distances (one vectorized CRT kernel call)
        and returns the top-k index list."""
        c2 = self.cloud.c2
        k, received = c2.receive(expected_tag="SkNNb.encrypted_distances")
        residues = c2.decrypt_residue_batch(
            [ciphertext for _, ciphertext in received])
        plaintext_distances = [
            (index, residue)
            for (index, _), residue in zip(received, residues)
        ]
        # Stable selection: ties are broken by record position, matching the
        # plaintext LinearScanKNN oracle.
        plaintext_distances.sort(key=lambda pair: (pair[1], pair[0]))
        top_k_indices = [index for index, _ in plaintext_distances[:k]]
        c2.send(top_k_indices, tag="SkNNb.topk_indices")
