"""Parallel execution of SkNN_b — Section 5.3 / Figure 3 of the paper.

The paper observes that "the computations involved on each data record are
independent of others", parallelizes the per-record work of SkNN_b with OpenMP
over the 6 cores of its test machine, and measures a ~6x speedup (Figure 3).

This module reproduces that experiment.  The unit of parallel work is exactly
the paper's: *one record's SSED computation*, i.e. the homomorphic
differences, the SM-style masked multiplications and the final decryption of
the distance (which SkNN_b reveals to C2 by design).  Each worker plays both
cloud roles for its record — the values it sees are the same masked values the
two clouds see in the serial protocol, so the leakage profile is unchanged —
and returns the plaintext distance, after which the driver performs the cheap
top-k selection and the standard two-share result delivery.

Backends:

* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism across cores, the analogue of the paper's OpenMP loop.
* ``"thread"``  — :class:`concurrent.futures.ThreadPoolExecutor`; CPython's
  GIL serializes big-integer arithmetic, so this shows little speedup and is
  included to make that limitation measurable.
* ``"serial"``  — same code path without a pool (baseline for speedup plots).

Workers are hosted by a :class:`PersistentWorkerPool`, created lazily on the
first query and **reused across queries** — pool start-up (process spawning)
is paid once per deployment instead of once per query, which matters for the
multi-query serving layer in :mod:`repro.service`.  Call
:meth:`ParallelSkNNBasic.close` (or use the instance as a context manager)
to release the workers.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from random import Random
from typing import Callable, Literal, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNProtocol
from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.exceptions import ConfigurationError, DeadlineExceeded, ServiceUnavailable

__all__ = [
    "ParallelSkNNBasic",
    "ParallelRunReport",
    "PersistentWorkerPool",
    "ssed_record_worker",
    "ssed_chunk_worker",
    "chunk_records",
]

Backend = Literal["thread", "process", "serial"]

#: Scalar reference task: (record_index, record ciphertext ints, query
#: ciphertext ints, modulus N, prime p, prime q, RNG seed).  Kept as the
#: per-record oracle the chunked kernel is tested against.
WorkerTask = tuple[int, list[int], list[int], int, int, int, int]

#: Chunked worker task: (chunk start index, several records' ciphertext ints,
#: several queries' ciphertext ints, modulus N, prime p, prime q, RNG seed,
#: bigint backend name[, pool slice]).  One task ships a whole contiguous
#: slice of the table through the vectorized crypto kernel — key
#: reconstruction, obfuscator-table reuse and batched CRT decryption are
#: amortized over every (record, query) pair of the chunk.  The backend name
#: travels with the task because spawned worker processes do not inherit a
#: programmatically selected backend (e.g. the CLI's ``--crypto-backend``).
#: The optional ninth element is a *pool slice*: single-use precomputed
#: ``r^N`` obfuscation factors drained from the driver's per-shard
#: precomputation pools, so the worker's mask/square encryptions are hot-path
#: multiplications while its per-process key cache stays warm.  Eight-element
#: tasks (no slice) remain valid.
ChunkWorkerTask = tuple[
    int, list[list[int]], list[list[int]], int, int, int, int, str,
    "list[int] | None"]


@dataclass
class ParallelRunReport:
    """Timing breakdown of one parallel SkNN_b execution."""

    backend: str
    workers: int
    n_records: int
    distance_phase_seconds: float
    selection_phase_seconds: float
    total_seconds: float


def _record_squared_distance(public_key: PaillierPublicKey,
                             private_key: PaillierPrivateKey, rng: Random,
                             record_values: list[int],
                             query_values: list[int]) -> int:
    """One record's squared Euclidean distance over ciphertexts.

    Performs, for every attribute, the same operation sequence as the serial
    SSED protocol: homomorphic difference, additive masking, decryption of the
    masked difference, squaring, re-encryption and unmasking — so the
    per-record Paillier operation count matches the serial protocol and
    measured speedups reflect genuine parallelization of the paper's workload.
    """
    n = public_key.n
    total: Ciphertext | None = None
    for record_value, query_value in zip(record_values, query_values):
        enc_record = Ciphertext(public_key, record_value)
        enc_query = Ciphertext(public_key, query_value)
        enc_diff = enc_record + (enc_query * (n - 1))

        # SM(enc_diff, enc_diff): mask, decrypt, square, encrypt, unmask.
        mask = rng.randrange(n)
        masked = enc_diff + public_key.encrypt(mask, rng=rng)
        masked_plain = private_key.decrypt_raw_residue(masked)
        enc_square_masked = public_key.encrypt((masked_plain * masked_plain) % n,
                                               rng=rng)
        enc_square = enc_square_masked + (enc_diff * ((n - 2 * mask) % n))
        enc_square = enc_square + (-(mask * mask) % n)

        total = enc_square if total is None else total + enc_square

    assert total is not None
    return private_key.decrypt_raw_residue(total)


def ssed_record_worker(task: WorkerTask) -> tuple[int, int]:
    """Compute one record's squared Euclidean distance over ciphertexts.

    Re-creates the key objects from the raw parameters (worker processes
    cannot share Python objects with the driver), then delegates to the same
    SSED sequence the serial protocol performs.

    Returns:
        ``(record_index, squared_distance)`` where the distance is the
        plaintext value C2 learns in SkNN_b.
    """
    record_index, record_values, query_values, n, p, q, seed = task
    public_key = PaillierPublicKey(n)
    private_key = PaillierPrivateKey(public_key, p, q)
    rng = Random(seed)
    distance = _record_squared_distance(public_key, private_key, rng,
                                        record_values, query_values)
    return record_index, distance


#: Per-process cache of reconstructed key objects, keyed by the modulus.
#: Worker processes persist across queries (PersistentWorkerPool), so the
#: keys — and with them the public key's fixed-base obfuscator table — are
#: rebuilt once per process lifetime instead of once per task.  Bounded:
#: the serial/thread backends run workers in the driver process, where an
#: unbounded cache would pin one ~2 MB comb table per key rotation forever.
#: Locked: the thread backend runs workers concurrently in one process.
_WORKER_KEYS: dict[int, tuple[PaillierPublicKey, PaillierPrivateKey]] = {}
_WORKER_KEYS_MAX = 4
_WORKER_KEYS_LOCK = threading.Lock()


def _worker_keys(n: int, p: int, q: int
                 ) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Reconstruct (or fetch the cached) key objects for a worker process."""
    with _WORKER_KEYS_LOCK:
        cached = _WORKER_KEYS.get(n)
        if cached is None:
            public_key = PaillierPublicKey(n)
            private_key = PaillierPrivateKey(public_key, p, q)
            cached = (public_key, private_key)
            while len(_WORKER_KEYS) >= _WORKER_KEYS_MAX:
                _WORKER_KEYS.pop(next(iter(_WORKER_KEYS)))
            _WORKER_KEYS[n] = cached
    return cached


def _chunk_squared_distances(public_key: PaillierPublicKey,
                             private_key: PaillierPrivateKey, rng: Random,
                             records: list[list[int]],
                             queries: list[list[int]],
                             pool=None) -> list[list[int]]:
    """Squared distances of every (record, query) pair, vectorized.

    Performs the same per-attribute protocol sequence as
    :func:`_record_squared_distance` — homomorphic difference, additive
    masking, decryption of the masked difference, squaring, re-encryption and
    unmasking — with three chunk-level batching effects:

    * the query-side negation ``E(-q_j)`` is computed once per (chunk, query)
      instead of once per (record, query) — a modular inversion replacing
      ``len(records)`` full exponentiations, valid since the squared
      difference is sign-invariant;
    * mask and square encryptions draw obfuscators from the key's fixed-base
      window table (built once per worker process);
    * all decryptions run through the vectorized CRT kernel.

    Returns:
        ``distances[record][query]`` for the chunk, in input order.
    """
    from repro.crypto.backend import get_backend

    backend = get_backend()
    mulmod, invert, powmod = backend.mulmod, backend.invert, backend.powmod
    n = public_key.n
    nsquare = public_key.nsquare
    dimensions = len(queries[0]) if queries else 0
    out: list[list[int]] = [[0] * len(queries) for _ in records]

    for query_index, query_values in enumerate(queries):
        neg_query = [invert(value, nsquare) for value in query_values]

        # E(t_ij - q_j) for every record and attribute (flattened) — the
        # modular inverse E(q_j)**-1 is an encryption of -q_j, so the
        # product matches the serial worker's E(t_ij) * E(q_j)**(N-1).
        diffs = [
            mulmod(record_values[j], neg_query[j], nsquare)
            for record_values in records
            for j in range(dimensions)
        ]

        # Additive masking with fresh randomness; obfuscators come from the
        # shipped pool slice while it lasts, then the windowed comb.
        masks = [rng.randrange(n) for _ in diffs]
        enc_masks = public_key.encrypt_batch(masks, rng=rng, pool=pool)
        masked = [mulmod(diff, enc_mask.value, nsquare)
                  for diff, enc_mask in zip(diffs, enc_masks)]

        # Decrypt the masked differences, square in the clear, re-encrypt.
        masked_plain = private_key._raw_decrypt_batch(masked)
        enc_squares = public_key.encrypt_batch(
            [(h * h) % n for h in masked_plain], rng=rng, pool=pool)

        # Unmask: E((d+r)^2) * E(d)^(N-2r) * E(-r^2) and accumulate per record.
        totals: list[Ciphertext] = []
        for record_index in range(len(records)):
            base = record_index * dimensions
            total = None
            for j in range(dimensions):
                index = base + j
                mask = masks[index]
                unmask = powmod(diffs[index], (n - 2 * mask) % n, nsquare)
                constant = (1 + (-(mask * mask) % n) * n) % nsquare
                square = mulmod(
                    mulmod(enc_squares[index].value, unmask, nsquare),
                    constant, nsquare)
                total = square if total is None else mulmod(total, square,
                                                            nsquare)
            totals.append(Ciphertext(public_key, total))

        for record_index, distance in enumerate(
                private_key.decrypt_residue_batch(totals)):
            out[record_index][query_index] = distance
    return out


def ssed_chunk_worker(task: ChunkWorkerTask) -> tuple[int, list[list[int]]]:
    """Vectorized distance computation for one chunk of contiguous records.

    The unit of parallel work of the sharded/parallel scan paths: one task
    carries a slice of the table plus every query of the batch, and the whole
    slice runs through :func:`_chunk_squared_distances` as a single
    vectorized kernel call.  The worker aligns its process-wide bigint
    backend with the driver's (carried in the task) before computing.

    Returns:
        ``(chunk_start_index, distances[record][query])``.
    """
    from repro.crypto.backend import get_backend, set_backend
    from repro.crypto.randomness_pool import RandomnessPool

    # Chaos hook: kill exactly one worker mid-scatter.  The sentinel path in
    # REPRO_CHAOS_WORKER_KILL is unlinked atomically, so of all the workers
    # racing for it precisely one wins — and dies without any cleanup
    # (``os._exit`` skips atexit and executor bookkeeping, the closest a
    # Python worker gets to SIGKILL-ing itself), breaking the process pool.
    kill_sentinel = os.environ.get("REPRO_CHAOS_WORKER_KILL")
    if kill_sentinel:
        try:
            os.unlink(kill_sentinel)
        except OSError:
            pass
        else:
            os._exit(1)

    start_index, record_rows, queries, n, p, q, seed, backend_name = task[:8]
    pool_slice = task[8] if len(task) > 8 else None
    if get_backend().name != backend_name:
        set_backend(backend_name)
    public_key, private_key = _worker_keys(n, p, q)
    pool = (RandomnessPool.from_factors(public_key, list(pool_slice))
            if pool_slice else None)
    rng = Random(seed)
    return start_index, _chunk_squared_distances(public_key, private_key, rng,
                                                 record_rows, queries,
                                                 pool=pool)


def chunk_records(count: int, workers: int,
                  tasks_per_worker: int = 4) -> list[tuple[int, int]]:
    """Split ``count`` records into contiguous ``(start, stop)`` chunks.

    Aims for ``workers * tasks_per_worker`` chunks so the pool keeps every
    worker busy while still amortizing per-task fixed costs over many
    records.
    """
    if count <= 0:
        return []
    target = max(workers, 1) * max(tasks_per_worker, 1)
    size = max(1, -(-count // target))
    return [(start, min(start + size, count))
            for start in range(0, count, size)]


class PersistentWorkerPool:
    """A worker pool created once and reused across queries.

    The seed implementation created a fresh :class:`ProcessPoolExecutor`
    inside every query, paying process spawn-up per query.  This class hoists
    the executor to deployment scope: it is created lazily on the first
    :meth:`map` call and reused until :meth:`close` — exactly the lifetime a
    query-serving system needs.  Instances are context managers.

    The process backend additionally tolerates worker death: tasks are
    submitted individually, and when a worker crash breaks the pool
    (:class:`BrokenProcessPool`) the executor is discarded, a fresh one is
    spawned, and **only the lost tasks** are resubmitted — up to
    ``task_retries`` respawn rounds, bounded by the caller's deadline.
    Tasks must therefore be idempotent and self-contained (the SSED chunk
    tasks are: each carries its own RNG seed, so a resubmitted chunk
    reproduces bit-identical distances).  When retries are exhausted the
    pool raises the typed, retriable
    :class:`~repro.exceptions.ServiceUnavailable` so the serving layer can
    shed the query instead of returning partial results.

    Args:
        workers: number of parallel workers.
        backend: ``"process"``, ``"thread"`` or ``"serial"`` (no pool).
        task_retries: default respawn-and-resubmit rounds per :meth:`map`
            call on the process backend (``0`` disables recovery).
    """

    def __init__(self, workers: int = 6, backend: Backend = "process",
                 task_retries: int = 2) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in ("thread", "process", "serial"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        if task_retries < 0:
            raise ConfigurationError("task_retries must be >= 0")
        self.workers = workers
        self.backend = backend
        self.task_retries = task_retries
        self.respawns = 0  # executors discarded after a worker crash
        self._executor: Executor | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def _ensure_executor(self) -> Executor | None:
        if self._closed:
            raise ConfigurationError("worker pool has been closed")
        if self.backend == "serial" or self.workers == 1:
            return None
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _discard_executor(self) -> None:
        """Drop a broken executor so the next round spawns fresh workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.respawns += 1

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, tasks: Sequence,
            task_retries: int | None = None, deadline=None) -> list:
        """Apply ``fn`` to every task on the pool's workers (order preserved).

        Args:
            fn: picklable task function.
            tasks: idempotent, self-contained task tuples.
            task_retries: override the pool's respawn-round budget for this
                call (process backend only).
            deadline: optional :class:`~repro.resilience.policy.Deadline`
                bounding the whole map — including any respawn rounds; on
                expiry :class:`~repro.exceptions.DeadlineExceeded` is raised.
        """
        executor = self._ensure_executor()
        if executor is None:
            return [fn(task) for task in tasks]
        if self.backend != "process":
            return list(executor.map(fn, tasks))
        retries = self.task_retries if task_retries is None else task_retries
        return self._map_process(fn, list(tasks), retries, deadline)

    def _map_process(self, fn: Callable, tasks: list, task_retries: int,
                     deadline) -> list:
        """Per-task submission with respawn + targeted resubmission."""
        results: list = [None] * len(tasks)
        pending = list(range(len(tasks)))
        for round_index in range(task_retries + 1):
            executor = self._ensure_executor()
            assert executor is not None
            futures = {index: executor.submit(fn, tasks[index])
                       for index in pending}
            lost: list[int] = []
            try:
                for index, future in futures.items():
                    timeout = (None if deadline is None
                               else deadline.require(f"chunk task {index}"))
                    try:
                        results[index] = future.result(timeout=timeout)
                    except BrokenProcessPool:
                        lost.append(index)
                    except FuturesTimeoutError:
                        raise DeadlineExceeded(
                            f"chunk task {index} still running at the "
                            "request deadline") from None
            finally:
                for future in futures.values():
                    future.cancel()
            if not lost:
                return results
            # A worker died mid-scatter.  Completed chunks keep their
            # results; only the lost ones go back out, on a fresh pool.
            self._discard_executor()
            if round_index >= task_retries:
                break
            self._count_chunk_retries(len(lost))
            pending = lost
        raise ServiceUnavailable(
            f"worker pool lost {len(pending)} chunk task(s) even after "
            f"{task_retries} respawn round(s)", retry_after_seconds=1.0)

    @staticmethod
    def _count_chunk_retries(amount: int) -> None:
        from repro.telemetry import metrics as _metrics

        _metrics.get_registry().counter(
            "repro_chunk_retries_total",
            "Scatter chunk tasks resubmitted after a worker crash broke "
            "the process pool.").inc(amount)


class ParallelSkNNBasic(SkNNProtocol):
    """SkNN_b with a parallelized distance phase (Figure 3 reproduction)."""

    name = "SkNNb-parallel"

    def __init__(self, cloud: FederatedCloud, workers: int = 6,
                 backend: Backend = "process",
                 pool: PersistentWorkerPool | None = None,
                 precompute=None) -> None:
        """Create a parallel SkNN_b runner.

        Args:
            cloud: the federated cloud hosting the encrypted database.
            workers: number of parallel workers (the paper uses 6 threads to
                match its 6-core machine).
            backend: ``"process"`` (true parallelism), ``"thread"`` (GIL
                bound, for comparison) or ``"serial"`` (no pool; baseline).
            pool: optionally share an existing :class:`PersistentWorkerPool`
                (e.g. across the shards of a :class:`~repro.service.sharding.
                ShardedCloud`); when given, ``workers``/``backend`` are taken
                from the pool and :meth:`close` leaves it running.
            precompute: optional :class:`~repro.crypto.precompute.
                PrecomputeEngine`; its obfuscator pool is drained into the
                chunk tasks (pool slices) so worker-side encryptions are
                multiplications, and the delivery phase uses its mask tuples.
        """
        super().__init__(cloud)
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = PersistentWorkerPool(workers=workers, backend=backend)
            self._owns_pool = True
        self.precompute = precompute
        if precompute is not None and cloud.engine is not precompute:
            cloud.attach_engine(precompute, cloud.c2.engine)
        self.workers = self.pool.workers
        self.backend = self.pool.backend
        self.last_parallel_report: ParallelRunReport | None = None

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (no-op for a shared pool)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ParallelSkNNBasic":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer a kNN query with the distance phase parallelized."""
        self._validate_query(encrypted_query, k)

        started = time.perf_counter()
        distances = self._parallel_distances(encrypted_query)
        distance_elapsed = time.perf_counter() - started

        selection_started = time.perf_counter()
        shares = self._finish_query(distances, k)
        selection_elapsed = time.perf_counter() - selection_started

        self.last_parallel_report = ParallelRunReport(
            backend=self.backend,
            workers=self.workers,
            n_records=len(self.cloud.c1.encrypted_table),
            distance_phase_seconds=distance_elapsed,
            selection_phase_seconds=selection_elapsed,
            total_seconds=distance_elapsed + selection_elapsed,
        )
        return shares

    def run_with_report(self, encrypted_query: Sequence[Ciphertext], k: int,
                        distance_bits: int | None = None) -> ResultShares:
        """Run and record a populated :class:`~repro.core.sknn_base.SkNNRunReport`.

        In addition to the base-class statistics the report's
        ``phase_seconds`` carries the parallel distance/selection split.
        Note that crypto-operation counters only reflect driver-side work:
        the per-record Paillier operations happen inside worker processes
        whose counters are not shared with the driver.
        """
        shares = super().run_with_report(encrypted_query, k,
                                         distance_bits=distance_bits)
        parallel = self.last_parallel_report
        if self.last_report is not None and parallel is not None:
            self.last_report.phase_seconds = {
                "distance": parallel.distance_phase_seconds,
                "selection": parallel.selection_phase_seconds,
            }
        return shares

    # -- distance phase ------------------------------------------------------------
    def _parallel_distances(self, encrypted_query: Sequence[Ciphertext]) -> list[int]:
        """Compute every record's squared distance with the persistent pool."""
        tasks = self._build_tasks(encrypted_query)
        results = self.pool.map(ssed_chunk_worker, tasks)
        distances = [0] * len(self.cloud.c1.encrypted_table)
        for start_index, chunk_distances in results:
            for offset, per_query in enumerate(chunk_distances):
                distances[start_index + offset] = per_query[0]
        return distances

    def _build_tasks(self, encrypted_query: Sequence[Ciphertext]
                     ) -> list[ChunkWorkerTask]:
        """Chunk the table into vectorized work items for the worker pool.

        One task per contiguous chunk of records (a few chunks per worker),
        each carrying the whole chunk through one vectorized kernel call —
        see :func:`ssed_chunk_worker`.
        """
        from repro.crypto.backend import get_backend

        c1 = self.cloud.c1
        private_key = self.cloud.c2.private_key
        n = c1.public_key.n
        backend_name = get_backend().name
        query_values = [cipher.value for cipher in encrypted_query]
        records = c1.encrypted_table.records
        dimensions = len(query_values)
        tasks: list[ChunkWorkerTask] = []
        for start, stop in chunk_records(len(records), self.workers):
            seed = c1.rng.getrandbits(63)
            pool_slice = None
            if self.precompute is not None:
                # One mask and one square encryption per (record, attribute).
                wanted = 2 * (stop - start) * dimensions
                pool_slice = (self.precompute.obfuscators
                              .take_available(wanted) or None)
            tasks.append((
                start,
                [[cipher.value for cipher in record.ciphertexts]
                 for record in records[start:stop]],
                [query_values],
                n,
                private_key.p,
                private_key.q,
                seed,
                backend_name,
                pool_slice,
            ))
        return tasks

    # -- selection + delivery ---------------------------------------------------------
    def _finish_query(self, plaintext_distances: list[int], k: int) -> ResultShares:
        """Top-k selection and two-share delivery (identical to SkNN_b)."""
        order = sorted(range(len(plaintext_distances)),
                       key=lambda idx: (plaintext_distances[idx], idx))
        top_k_indices = order[:k]
        table = self.cloud.c1.encrypted_table
        selected = [list(table.record_at(index).ciphertexts)
                    for index in top_k_indices]
        return self._deliver_records(selected)
