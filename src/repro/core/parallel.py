"""Parallel execution of SkNN_b — Section 5.3 / Figure 3 of the paper.

The paper observes that "the computations involved on each data record are
independent of others", parallelizes the per-record work of SkNN_b with OpenMP
over the 6 cores of its test machine, and measures a ~6x speedup (Figure 3).

This module reproduces that experiment.  The unit of parallel work is exactly
the paper's: *one record's SSED computation*, i.e. the homomorphic
differences, the SM-style masked multiplications and the final decryption of
the distance (which SkNN_b reveals to C2 by design).  Each worker plays both
cloud roles for its record — the values it sees are the same masked values the
two clouds see in the serial protocol, so the leakage profile is unchanged —
and returns the plaintext distance, after which the driver performs the cheap
top-k selection and the standard two-share result delivery.

Backends:

* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism across cores, the analogue of the paper's OpenMP loop.
* ``"thread"``  — :class:`concurrent.futures.ThreadPoolExecutor`; CPython's
  GIL serializes big-integer arithmetic, so this shows little speedup and is
  included to make that limitation measurable.
* ``"serial"``  — same code path without a pool (baseline for speedup plots).

Workers are hosted by a :class:`PersistentWorkerPool`, created lazily on the
first query and **reused across queries** — pool start-up (process spawning)
is paid once per deployment instead of once per query, which matters for the
multi-query serving layer in :mod:`repro.service`.  Call
:meth:`ParallelSkNNBasic.close` (or use the instance as a context manager)
to release the workers.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from random import Random
from typing import Callable, Literal, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNProtocol
from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.exceptions import ConfigurationError

__all__ = [
    "ParallelSkNNBasic",
    "ParallelRunReport",
    "PersistentWorkerPool",
    "ssed_record_worker",
    "ssed_record_batch_worker",
]

Backend = Literal["thread", "process", "serial"]

#: Worker task: (record_index, record ciphertext ints, query ciphertext ints,
#: modulus N, prime p, prime q, RNG seed)
WorkerTask = tuple[int, list[int], list[int], int, int, int, int]

#: Batched worker task: like :data:`WorkerTask` but carrying the ciphertexts
#: of *several* queries, so one record (de)serialization is amortized over a
#: whole batch of queries sharing a scan pass.
BatchWorkerTask = tuple[int, list[int], list[list[int]], int, int, int, int]


@dataclass
class ParallelRunReport:
    """Timing breakdown of one parallel SkNN_b execution."""

    backend: str
    workers: int
    n_records: int
    distance_phase_seconds: float
    selection_phase_seconds: float
    total_seconds: float


def _record_squared_distance(public_key: PaillierPublicKey,
                             private_key: PaillierPrivateKey, rng: Random,
                             record_values: list[int],
                             query_values: list[int]) -> int:
    """One record's squared Euclidean distance over ciphertexts.

    Performs, for every attribute, the same operation sequence as the serial
    SSED protocol: homomorphic difference, additive masking, decryption of the
    masked difference, squaring, re-encryption and unmasking — so the
    per-record Paillier operation count matches the serial protocol and
    measured speedups reflect genuine parallelization of the paper's workload.
    """
    n = public_key.n
    total: Ciphertext | None = None
    for record_value, query_value in zip(record_values, query_values):
        enc_record = Ciphertext(public_key, record_value)
        enc_query = Ciphertext(public_key, query_value)
        enc_diff = enc_record + (enc_query * (n - 1))

        # SM(enc_diff, enc_diff): mask, decrypt, square, encrypt, unmask.
        mask = rng.randrange(n)
        masked = enc_diff + public_key.encrypt(mask, rng=rng)
        masked_plain = private_key.decrypt_raw_residue(masked)
        enc_square_masked = public_key.encrypt((masked_plain * masked_plain) % n,
                                               rng=rng)
        enc_square = enc_square_masked + (enc_diff * ((n - 2 * mask) % n))
        enc_square = enc_square + (-(mask * mask) % n)

        total = enc_square if total is None else total + enc_square

    assert total is not None
    return private_key.decrypt_raw_residue(total)


def ssed_record_worker(task: WorkerTask) -> tuple[int, int]:
    """Compute one record's squared Euclidean distance over ciphertexts.

    Re-creates the key objects from the raw parameters (worker processes
    cannot share Python objects with the driver), then delegates to the same
    SSED sequence the serial protocol performs.

    Returns:
        ``(record_index, squared_distance)`` where the distance is the
        plaintext value C2 learns in SkNN_b.
    """
    record_index, record_values, query_values, n, p, q, seed = task
    public_key = PaillierPublicKey(n)
    private_key = PaillierPrivateKey(public_key, p, q)
    rng = Random(seed)
    distance = _record_squared_distance(public_key, private_key, rng,
                                        record_values, query_values)
    return record_index, distance


def ssed_record_batch_worker(task: BatchWorkerTask) -> tuple[int, list[int]]:
    """Compute one record's squared distance to *every* query of a batch.

    The expensive per-task fixed costs — task serialization, key-object
    reconstruction — are paid once per record instead of once per
    (record, query) pair, which is what makes batched scheduling in
    :mod:`repro.service` cheaper than issuing the queries one at a time.

    Returns:
        ``(record_index, [squared_distance_per_query])`` in batch order.
    """
    record_index, record_values, queries, n, p, q, seed = task
    public_key = PaillierPublicKey(n)
    private_key = PaillierPrivateKey(public_key, p, q)
    rng = Random(seed)
    distances = [
        _record_squared_distance(public_key, private_key, rng,
                                 record_values, query_values)
        for query_values in queries
    ]
    return record_index, distances


class PersistentWorkerPool:
    """A worker pool created once and reused across queries.

    The seed implementation created a fresh :class:`ProcessPoolExecutor`
    inside every query, paying process spawn-up per query.  This class hoists
    the executor to deployment scope: it is created lazily on the first
    :meth:`map` call and reused until :meth:`close` — exactly the lifetime a
    query-serving system needs.  Instances are context managers.

    Args:
        workers: number of parallel workers.
        backend: ``"process"``, ``"thread"`` or ``"serial"`` (no pool).
    """

    def __init__(self, workers: int = 6, backend: Backend = "process") -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in ("thread", "process", "serial"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self._executor: Executor | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def _ensure_executor(self) -> Executor | None:
        if self._closed:
            raise ConfigurationError("worker pool has been closed")
        if self.backend == "serial" or self.workers == 1:
            return None
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Apply ``fn`` to every task on the pool's workers (order preserved)."""
        executor = self._ensure_executor()
        if executor is None:
            return [fn(task) for task in tasks]
        if self.backend == "process":
            chunk = max(len(tasks) // (self.workers * 4), 1)
            return list(executor.map(fn, tasks, chunksize=chunk))
        return list(executor.map(fn, tasks))


class ParallelSkNNBasic(SkNNProtocol):
    """SkNN_b with a parallelized distance phase (Figure 3 reproduction)."""

    name = "SkNNb-parallel"

    def __init__(self, cloud: FederatedCloud, workers: int = 6,
                 backend: Backend = "process",
                 pool: PersistentWorkerPool | None = None) -> None:
        """Create a parallel SkNN_b runner.

        Args:
            cloud: the federated cloud hosting the encrypted database.
            workers: number of parallel workers (the paper uses 6 threads to
                match its 6-core machine).
            backend: ``"process"`` (true parallelism), ``"thread"`` (GIL
                bound, for comparison) or ``"serial"`` (no pool; baseline).
            pool: optionally share an existing :class:`PersistentWorkerPool`
                (e.g. across the shards of a :class:`~repro.service.sharding.
                ShardedCloud`); when given, ``workers``/``backend`` are taken
                from the pool and :meth:`close` leaves it running.
        """
        super().__init__(cloud)
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = PersistentWorkerPool(workers=workers, backend=backend)
            self._owns_pool = True
        self.workers = self.pool.workers
        self.backend = self.pool.backend
        self.last_parallel_report: ParallelRunReport | None = None

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (no-op for a shared pool)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ParallelSkNNBasic":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer a kNN query with the distance phase parallelized."""
        self._validate_query(encrypted_query, k)

        started = time.perf_counter()
        distances = self._parallel_distances(encrypted_query)
        distance_elapsed = time.perf_counter() - started

        selection_started = time.perf_counter()
        shares = self._finish_query(distances, k)
        selection_elapsed = time.perf_counter() - selection_started

        self.last_parallel_report = ParallelRunReport(
            backend=self.backend,
            workers=self.workers,
            n_records=len(self.cloud.c1.encrypted_table),
            distance_phase_seconds=distance_elapsed,
            selection_phase_seconds=selection_elapsed,
            total_seconds=distance_elapsed + selection_elapsed,
        )
        return shares

    def run_with_report(self, encrypted_query: Sequence[Ciphertext], k: int,
                        distance_bits: int | None = None) -> ResultShares:
        """Run and record a populated :class:`~repro.core.sknn_base.SkNNRunReport`.

        In addition to the base-class statistics the report's
        ``phase_seconds`` carries the parallel distance/selection split.
        Note that crypto-operation counters only reflect driver-side work:
        the per-record Paillier operations happen inside worker processes
        whose counters are not shared with the driver.
        """
        shares = super().run_with_report(encrypted_query, k,
                                         distance_bits=distance_bits)
        parallel = self.last_parallel_report
        if self.last_report is not None and parallel is not None:
            self.last_report.phase_seconds = {
                "distance": parallel.distance_phase_seconds,
                "selection": parallel.selection_phase_seconds,
            }
        return shares

    # -- distance phase ------------------------------------------------------------
    def _parallel_distances(self, encrypted_query: Sequence[Ciphertext]) -> list[int]:
        """Compute every record's squared distance with the persistent pool."""
        tasks = self._build_tasks(encrypted_query)
        results = self.pool.map(ssed_record_worker, tasks)
        distances = [0] * len(tasks)
        for record_index, distance in results:
            distances[record_index] = distance
        return distances

    def _build_tasks(self, encrypted_query: Sequence[Ciphertext]) -> list[WorkerTask]:
        """Serialize the per-record work items for the worker pool."""
        c1 = self.cloud.c1
        private_key = self.cloud.c2.private_key
        n = c1.public_key.n
        query_values = [cipher.value for cipher in encrypted_query]
        tasks: list[WorkerTask] = []
        for index, record in enumerate(c1.encrypted_table):
            seed = c1.rng.getrandbits(63)
            tasks.append((
                index,
                [cipher.value for cipher in record.ciphertexts],
                query_values,
                n,
                private_key.p,
                private_key.q,
                seed,
            ))
        return tasks

    # -- selection + delivery ---------------------------------------------------------
    def _finish_query(self, plaintext_distances: list[int], k: int) -> ResultShares:
        """Top-k selection and two-share delivery (identical to SkNN_b)."""
        order = sorted(range(len(plaintext_distances)),
                       key=lambda idx: (plaintext_distances[idx], idx))
        top_k_indices = order[:k]
        table = self.cloud.c1.encrypted_table
        selected = [list(table.record_at(index).ciphertexts)
                    for index in top_k_indices]
        return self._deliver_records(selected)
