"""Parallel execution of SkNN_b — Section 5.3 / Figure 3 of the paper.

The paper observes that "the computations involved on each data record are
independent of others", parallelizes the per-record work of SkNN_b with OpenMP
over the 6 cores of its test machine, and measures a ~6x speedup (Figure 3).

This module reproduces that experiment.  The unit of parallel work is exactly
the paper's: *one record's SSED computation*, i.e. the homomorphic
differences, the SM-style masked multiplications and the final decryption of
the distance (which SkNN_b reveals to C2 by design).  Each worker plays both
cloud roles for its record — the values it sees are the same masked values the
two clouds see in the serial protocol, so the leakage profile is unchanged —
and returns the plaintext distance, after which the driver performs the cheap
top-k selection and the standard two-share result delivery.

Backends:

* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism across cores, the analogue of the paper's OpenMP loop.
* ``"thread"``  — :class:`concurrent.futures.ThreadPoolExecutor`; CPython's
  GIL serializes big-integer arithmetic, so this shows little speedup and is
  included to make that limitation measurable.
* ``"serial"``  — same code path without a pool (baseline for speedup plots).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from random import Random
from typing import Literal, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.exceptions import ConfigurationError

__all__ = ["ParallelSkNNBasic", "ParallelRunReport", "ssed_record_worker"]

Backend = Literal["thread", "process", "serial"]

#: Worker task: (record_index, record ciphertext ints, query ciphertext ints,
#: modulus N, prime p, prime q, RNG seed)
WorkerTask = tuple[int, list[int], list[int], int, int, int, int]


@dataclass
class ParallelRunReport:
    """Timing breakdown of one parallel SkNN_b execution."""

    backend: str
    workers: int
    n_records: int
    distance_phase_seconds: float
    selection_phase_seconds: float
    total_seconds: float


def ssed_record_worker(task: WorkerTask) -> tuple[int, int]:
    """Compute one record's squared Euclidean distance over ciphertexts.

    Re-creates the key objects from the raw parameters (worker processes
    cannot share Python objects with the driver), then performs, for every
    attribute, the same operation sequence as the serial SSED protocol:
    homomorphic difference, additive masking, decryption of the masked
    difference, squaring, re-encryption and unmasking — so the per-record
    Paillier operation count matches the serial protocol and the measured
    speedup reflects genuine parallelization of the paper's workload.

    Returns:
        ``(record_index, squared_distance)`` where the distance is the
        plaintext value C2 learns in SkNN_b.
    """
    record_index, record_values, query_values, n, p, q, seed = task
    public_key = PaillierPublicKey(n)
    private_key = PaillierPrivateKey(public_key, p, q)
    rng = Random(seed)

    total: Ciphertext | None = None
    for record_value, query_value in zip(record_values, query_values):
        enc_record = Ciphertext(public_key, record_value)
        enc_query = Ciphertext(public_key, query_value)
        enc_diff = enc_record + (enc_query * (n - 1))

        # SM(enc_diff, enc_diff): mask, decrypt, square, encrypt, unmask.
        mask = rng.randrange(n)
        masked = enc_diff + public_key.encrypt(mask, rng=rng)
        masked_plain = private_key.decrypt_raw_residue(masked)
        enc_square_masked = public_key.encrypt((masked_plain * masked_plain) % n,
                                               rng=rng)
        enc_square = enc_square_masked + (enc_diff * ((n - 2 * mask) % n))
        enc_square = enc_square + (-(mask * mask) % n)

        total = enc_square if total is None else total + enc_square

    assert total is not None
    distance = private_key.decrypt_raw_residue(total)
    return record_index, distance


class ParallelSkNNBasic:
    """SkNN_b with a parallelized distance phase (Figure 3 reproduction)."""

    def __init__(self, cloud: FederatedCloud, workers: int = 6,
                 backend: Backend = "process") -> None:
        """Create a parallel SkNN_b runner.

        Args:
            cloud: the federated cloud hosting the encrypted database.
            workers: number of parallel workers (the paper uses 6 threads to
                match its 6-core machine).
            backend: ``"process"`` (true parallelism), ``"thread"`` (GIL
                bound, for comparison) or ``"serial"`` (no pool; baseline).
        """
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in ("thread", "process", "serial"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.cloud = cloud
        self.workers = workers
        self.backend = backend
        self._serial_protocol = SkNNBasic(cloud)
        self.last_report: ParallelRunReport | None = None

    # -- execution -------------------------------------------------------------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer a kNN query with the distance phase parallelized."""
        self._serial_protocol._validate_query(encrypted_query, k)

        started = time.perf_counter()
        distances = self._parallel_distances(encrypted_query)
        distance_elapsed = time.perf_counter() - started

        selection_started = time.perf_counter()
        shares = self._finish_query(distances, k)
        selection_elapsed = time.perf_counter() - selection_started

        self.last_report = ParallelRunReport(
            backend=self.backend,
            workers=self.workers,
            n_records=len(self.cloud.c1.encrypted_table),
            distance_phase_seconds=distance_elapsed,
            selection_phase_seconds=selection_elapsed,
            total_seconds=distance_elapsed + selection_elapsed,
        )
        return shares

    # -- distance phase ------------------------------------------------------------
    def _parallel_distances(self, encrypted_query: Sequence[Ciphertext]) -> list[int]:
        """Compute every record's squared distance with the chosen backend."""
        tasks = self._build_tasks(encrypted_query)

        if self.backend == "serial" or self.workers == 1:
            results = [ssed_record_worker(task) for task in tasks]
        elif self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(ssed_record_worker, tasks))
        else:
            chunk = max(len(tasks) // (self.workers * 4), 1)
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(ssed_record_worker, tasks, chunksize=chunk))

        distances = [0] * len(tasks)
        for record_index, distance in results:
            distances[record_index] = distance
        return distances

    def _build_tasks(self, encrypted_query: Sequence[Ciphertext]) -> list[WorkerTask]:
        """Serialize the per-record work items for the worker pool."""
        c1 = self.cloud.c1
        private_key = self.cloud.c2.private_key
        n = c1.public_key.n
        query_values = [cipher.value for cipher in encrypted_query]
        tasks: list[WorkerTask] = []
        for index, record in enumerate(c1.encrypted_table):
            seed = c1.rng.getrandbits(63)
            tasks.append((
                index,
                [cipher.value for cipher in record.ciphertexts],
                query_values,
                n,
                private_key.p,
                private_key.q,
                seed,
            ))
        return tasks

    # -- selection + delivery ---------------------------------------------------------
    def _finish_query(self, plaintext_distances: list[int], k: int) -> ResultShares:
        """Top-k selection and two-share delivery (identical to SkNN_b)."""
        order = sorted(range(len(plaintext_distances)),
                       key=lambda idx: (plaintext_distances[idx], idx))
        top_k_indices = order[:k]
        table = self.cloud.c1.encrypted_table
        selected = [list(table.record_at(index).ciphertexts)
                    for index in top_k_indices]
        return self._serial_protocol._deliver_records(selected)
