"""The human-facing roles of the SkNN setting: Alice (data owner) and Bob (user).

The paper's trust model has four principals:

* **Alice**, the data owner — generates the Paillier key pair, encrypts her
  database attribute-wise, outsources the ciphertexts to cloud C1 and the
  secret key to cloud C2, and then goes offline (she takes part in no further
  computation).
* **Bob**, an authorized query user — encrypts his query record, submits it to
  C1, and at the end combines the two result shares he receives (random masks
  from C1, masked plaintexts from C2) into the k nearest records.
* **C1 / C2**, the two non-colluding clouds — modeled in
  :mod:`repro.core.cloud`.

Keeping Alice and Bob as explicit objects (instead of folding their steps into
the protocol driver) preserves the paper's claim that is easiest to get wrong
in a re-implementation: after outsourcing, *neither* Alice nor Bob touches the
data again until Bob receives his shares, and Bob's entire computational load
is one attribute-wise encryption plus ``k * m`` modular subtractions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from repro.crypto.randomness_pool import RandomnessPool

from repro.crypto.paillier import (
    Ciphertext,
    PaillierKeyPair,
    PaillierPublicKey,
    generate_keypair,
)
from repro.db.encrypted_table import EncryptedTable
from repro.db.table import Table
from repro.exceptions import ConfigurationError, QueryError

__all__ = ["DataOwner", "QueryClient", "ResultShares", "ClientCostReport"]


@dataclass
class ResultShares:
    """The two shares from which Bob reconstructs the k nearest records.

    Attributes:
        masks_from_c1: the random values ``r_{j,h}`` C1 sends to Bob,
            one row per neighbor (``k`` rows of ``m`` values).
        masked_values_from_c2: the decrypted masked attributes
            ``gamma'_{j,h} = t'_{j,h} + r_{j,h} mod N`` C2 sends to Bob.
            ``None`` while C2's half has not crossed C1's process (the
            distributed C1 daemon returns such half-open shares; Bob's
            client fetches the other half from the C2 daemon by
            ``delivery_id`` and assembles the complete shares).
        modulus: the Paillier modulus ``N`` needed for the final subtraction.
        delivery_id: the id under which C2 filed (or holds) its half.
    """

    masks_from_c1: list[list[int]]
    masked_values_from_c2: list[list[int]] | None
    modulus: int
    delivery_id: int | None = None

    def __post_init__(self) -> None:
        if self.masked_values_from_c2 is None:
            return
        if len(self.masks_from_c1) != len(self.masked_values_from_c2):
            raise QueryError("result shares have mismatching neighbor counts")
        for masks, masked in zip(self.masks_from_c1, self.masked_values_from_c2):
            if len(masks) != len(masked):
                raise QueryError("result shares have mismatching attribute counts")

    @property
    def neighbor_count(self) -> int:
        """Number of neighbors contained in the shares (the query's ``k``)."""
        return len(self.masks_from_c1)


@dataclass
class ClientCostReport:
    """Wall-clock cost of Bob's local work (the paper's end-user overhead).

    Section 5.2 highlights that Bob's cost is essentially the encryption of
    his query (4 ms at K=512, 17 ms at K=1024 for m=6 in the paper's C
    implementation); this report makes the same quantity measurable here.
    """

    encrypt_query_seconds: float = 0.0
    reconstruct_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total client-side time."""
        return self.encrypt_query_seconds + self.reconstruct_seconds


class DataOwner:
    """Alice: owns the plaintext table and the Paillier key pair."""

    def __init__(self, table: Table, key_size: int = 512,
                 rng: Random | None = None,
                 keypair: PaillierKeyPair | None = None) -> None:
        """Create the data owner.

        Args:
            table: the plaintext database ``T``.
            key_size: Paillier modulus size ``K`` in bits (512/1024 in the
                paper; smaller values are accepted for fast tests).
            rng: optional deterministic randomness source (tests only).
            keypair: optionally reuse an existing key pair instead of
                generating a fresh one (benchmarks reuse keys across runs so
                key generation does not pollute the measurement).
        """
        self.table = table
        self.rng = rng
        self.keypair = keypair if keypair is not None else generate_keypair(key_size, rng)

    @property
    def public_key(self) -> PaillierPublicKey:
        """The public key shared with the clouds and with Bob."""
        return self.keypair.public_key

    def encrypt_database(self) -> EncryptedTable:
        """Attribute-wise encryption of the database (the outsourcing payload)."""
        return EncryptedTable.encrypt_table(self.table, self.public_key, rng=self.rng)

    def distance_bit_length(self) -> int:
        """The domain parameter ``l`` derived from the schema ranges."""
        return self.table.schema.distance_bit_length()


class QueryClient:
    """Bob: encrypts queries and reconstructs results from the two shares."""

    def __init__(self, public_key: PaillierPublicKey, dimensions: int,
                 rng: Random | None = None,
                 randomness_pool: "RandomnessPool | None" = None) -> None:
        """Create a query client.

        Args:
            public_key: Alice's public key (obtained through authorization).
            dimensions: expected number of query attributes ``m``.
            rng: optional deterministic randomness source (tests only).
            randomness_pool: optional precomputed Paillier randomness
                (:class:`~repro.crypto.RandomnessPool`); when given, query
                encryption uses pooled obfuscation factors, turning Bob's
                hot-path cost into one multiplication per attribute.
        """
        if dimensions <= 0:
            raise ConfigurationError("dimensions must be positive")
        if randomness_pool is not None and randomness_pool.public_key != public_key:
            raise ConfigurationError(
                "randomness pool belongs to a different public key")
        self.public_key = public_key
        self.dimensions = dimensions
        self.rng = rng
        self.randomness_pool = randomness_pool
        self.last_cost = ClientCostReport()

    def encrypt_query(self, query: Sequence[int]) -> list[Ciphertext]:
        """Encrypt the query record attribute-wise (``Epk(Q)``)."""
        if len(query) != self.dimensions:
            raise QueryError(
                f"query has {len(query)} attributes, expected {self.dimensions}"
            )
        started = time.perf_counter()
        # One vectorized kernel call either way; a session pool supplies
        # precomputed r^N factors (comb fallback when it runs dry).
        encrypted = self.public_key.encrypt_batch(
            list(query), rng=self.rng, pool=self.randomness_pool)
        self.last_cost.encrypt_query_seconds = time.perf_counter() - started
        return encrypted

    def reconstruct(self, shares: ResultShares) -> list[tuple[int, ...]]:
        """Combine the two shares into the plaintext nearest-neighbor records.

        Implements the final step of Algorithms 5 and 6:
        ``t'_{j,h} = gamma'_{j,h} - r_{j,h} mod N``.
        """
        if shares.masked_values_from_c2 is None:
            raise QueryError(
                "shares are missing C2's half — fetch it from the C2 daemon "
                f"(delivery id {shares.delivery_id}) before reconstructing")
        started = time.perf_counter()
        records = []
        for masks, masked in zip(shares.masks_from_c1, shares.masked_values_from_c2):
            values = tuple((gamma - mask) % shares.modulus
                           for gamma, mask in zip(masked, masks))
            records.append(values)
        self.last_cost.reconstruct_seconds = time.perf_counter() - started
        return records
