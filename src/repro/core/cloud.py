"""The two non-colluding cloud servers C1 and C2 (the federated cloud).

* :class:`CloudC1` hosts the encrypted database ``Epk(T)`` and drives the bulk
  of the homomorphic computation.  It knows only the public key.
* :class:`CloudC2` holds the Paillier secret key and assists C1 through the
  two-party sub-protocols; it never stores the database.

Both classes are thin wrappers around the network substrate's party objects:
the extra state they add is exactly what the paper assigns to each cloud (the
encrypted table on C1, the secret key on C2), which keeps the trust boundary
visible in the code.  :class:`FederatedCloud` bundles the pair with their
shared channel and exposes the :class:`~repro.network.party.TwoPartySetting`
that the protocol classes consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from repro.crypto.precompute import PrecomputeEngine

from repro.crypto.paillier import PaillierKeyPair, PaillierPrivateKey, PaillierPublicKey
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import ConfigurationError
from repro.network.channel import DuplexChannel
from repro.network.latency import LatencyModel
from repro.network.party import DecryptorParty, EvaluatorParty, TwoPartySetting

__all__ = ["CloudC1", "CloudC2", "FederatedCloud"]


class CloudC1(EvaluatorParty):
    """Cloud server C1: stores ``Epk(T)`` and evaluates over ciphertexts."""

    def __init__(self, public_key: PaillierPublicKey, channel: DuplexChannel,
                 rng: Random | None = None, name: str = "C1") -> None:
        super().__init__(name, public_key, channel, rng)
        self._encrypted_table: EncryptedTable | None = None

    def host_database(self, encrypted_table: EncryptedTable) -> None:
        """Accept the outsourced encrypted database from the data owner."""
        if encrypted_table.public_key != self.public_key:
            raise ConfigurationError(
                "encrypted table was produced under a different public key"
            )
        self._encrypted_table = encrypted_table

    @property
    def encrypted_table(self) -> EncryptedTable:
        """The hosted encrypted database (raises if none was outsourced yet)."""
        if self._encrypted_table is None:
            raise ConfigurationError("C1 is not hosting an encrypted database yet")
        return self._encrypted_table

    @property
    def record_count(self) -> int:
        """Number of hosted encrypted records (``n``)."""
        return len(self.encrypted_table)


class CloudC2(DecryptorParty):
    """Cloud server C2: holds the secret key and assists C1 obliviously."""

    def __init__(self, private_key: PaillierPrivateKey, channel: DuplexChannel,
                 rng: Random | None = None, name: str = "C2") -> None:
        super().__init__(name, private_key, channel, rng)


@dataclass
class FederatedCloud:
    """The C1 + C2 pair together with their communication channel."""

    c1: CloudC1
    c2: CloudC2
    channel: DuplexChannel

    @classmethod
    def deploy(cls, keypair: PaillierKeyPair, rng: Random | None = None,
               latency_model: LatencyModel | None = None) -> "FederatedCloud":
        """Stand up a federated cloud for the given key pair.

        The public key goes to both clouds; the private key goes only to C2
        (mirroring Alice's key distribution in the paper).
        """
        channel = DuplexChannel("C1", "C2", latency_model)
        c1_rng = rng
        c2_rng = Random(rng.random()) if rng is not None else None
        c1 = CloudC1(keypair.public_key, channel, c1_rng)
        c2 = CloudC2(keypair.private_key, channel, c2_rng)
        return cls(c1=c1, c2=c2, channel=channel)

    @property
    def setting(self) -> TwoPartySetting:
        """View of the federated cloud as a two-party protocol setting."""
        return TwoPartySetting(evaluator=self.c1, decryptor=self.c2,
                               channel=self.channel)

    @property
    def engine(self) -> "PrecomputeEngine | None":
        """C1's precomputation engine (or ``None``)."""
        return self.c1.engine

    def attach_engine(self, engine: "PrecomputeEngine | None",
                      decryptor_engine: "PrecomputeEngine | None" = None
                      ) -> None:
        """Attach per-cloud :class:`~repro.crypto.precompute.PrecomputeEngine`s.

        ``engine`` serves C1's masks/constants, ``decryptor_engine`` C2's
        re-encryptions and 0/1 constants — one engine per cloud, each filled
        with its own randomness, mirroring the non-colluding model.
        Protocols constructed over this cloud (before or after the call —
        resolution is dynamic) pick them up automatically.
        """
        self.setting.attach_engine(engine, decryptor_engine)

    def reset_counters(self) -> None:
        """Reset crypto-operation counters and channel accounting."""
        self.c1.public_key.counter.reset()
        self.c2.private_key.counter.reset()
        self.channel.reset_accounting()
