"""Shared machinery for the two SkNN query protocols (Algorithms 5 and 6).

Both protocols share the same surrounding steps:

* the distance phase — C1 and C2 run SSED between the encrypted query and
  every encrypted record (step 2 of both algorithms), and
* the delivery phase — once C1 holds the ``k`` encrypted result records, it
  additively masks them, sends the masked ciphertexts to C2 for decryption and
  the masks directly to Bob, so that only Bob can recombine the plaintext
  records (steps 4-6 of Algorithm 5, reused verbatim by Algorithm 6).

They differ only in how the ``k`` nearest records are *selected*, which is
what the subclasses implement.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.crypto import paillier as _paillier
from repro.crypto.paillier import Ciphertext
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import QueryError
from repro.network.stats import ProtocolRunStats
from repro.protocols.base import P2StepDispatcher
from repro.protocols.ssed import SecureSquaredEuclideanDistance
from repro.telemetry import metrics as _metrics
from repro.telemetry import profiling as _profiling
from repro.telemetry import tracing as _tracing

__all__ = ["SkNNProtocol", "SkNNRunReport", "RunStatsRecorder"]

#: process-wide delivery ids — unique across every protocol instance, so the
#: C2-side share store (or a daemon's share mailbox) can never collide even
#: when several protocol objects share one cloud.
_DELIVERY_IDS = itertools.count(1)


class RunStatsRecorder:
    """Captures crypto-counter and traffic deltas around one execution.

    Snapshot the cloud's counters at construction, run the protocol, then
    call :meth:`finish` to obtain the :class:`ProtocolRunStats` delta.  Used
    by every run-with-report path (serial, parallel, sharded, batched) so the
    stats fields stay consistent across them.

    Note: the counters live on the shared key objects, so under concurrent
    use (e.g. sessions encrypting queries while a batch executes) the deltas
    attribute any overlapping client-side operations to the cloud side —
    they are exact in single-threaded runs and approximate under concurrency.

    Exception: when the executing thread has an active *counting scope*
    (see :func:`repro.crypto.paillier.counting_scope` — a C1 daemon wraps
    every pipelined query handler in one), the scope counter is the sole
    source: it tees exactly this thread's operations off the shared key
    counters, so per-query deltas stay exact even with N queries in flight.
    """

    def __init__(self, cloud: FederatedCloud) -> None:
        self.cloud = cloud
        self._scope = _paillier.active_counting_scope()
        if self._scope is not None:
            self._scope_before = self._scope.snapshot()
        else:
            self._pk_before = cloud.c1.public_key.counter.snapshot()
            self._sk_before = cloud.c2.private_key.counter.snapshot()
        self._traffic_before = cloud.channel.total_traffic().snapshot()

    def finish(self, protocol: str, elapsed: float) -> ProtocolRunStats:
        """Diff the counters against the construction-time snapshot."""
        if self._scope is not None:
            scope_after = self._scope.snapshot()
            pk_after = scope_after
            sk_after = scope_after
            pk_before = sk_before = self._scope_before
        else:
            pk_after = self.cloud.c1.public_key.counter.snapshot()
            sk_after = self.cloud.c2.private_key.counter.snapshot()
            pk_before = self._pk_before
            sk_before = self._sk_before
        traffic_after = self.cloud.channel.total_traffic().snapshot()
        return ProtocolRunStats(
            protocol=protocol,
            wall_time_seconds=elapsed,
            c1_encryptions=pk_after["encryptions"] - pk_before["encryptions"],
            c1_exponentiations=(
                pk_after["exponentiations"] - pk_before["exponentiations"]
            ),
            c1_homomorphic_additions=(
                pk_after["homomorphic_additions"]
                - pk_before["homomorphic_additions"]
            ),
            c2_decryptions=(
                sk_after["decryptions"] - sk_before["decryptions"]
            ),
            messages=traffic_after["messages"] - self._traffic_before["messages"],
            ciphertexts_exchanged=(
                traffic_after["ciphertexts"] - self._traffic_before["ciphertexts"]
            ),
            bytes_transferred=(
                traffic_after["bytes_transferred"]
                - self._traffic_before["bytes_transferred"]
            ),
        )


@dataclass
class SkNNRunReport:
    """Statistics of one SkNN query execution (one row of the evaluation)."""

    protocol: str
    n_records: int
    dimensions: int
    k: int
    key_size: int
    distance_bits: int | None
    wall_time_seconds: float
    stats: ProtocolRunStats
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: cost-ledger rollup rows ``{"phase", "party", "seconds", "ops"}``
    #: attributing Paillier op counts and wall time to each protocol phase;
    #: C2 daemon rows are stitched in when the query ran distributed (their
    #: seconds overlap C1's wait time rather than adding to the wall clock).
    cost_breakdown: list[dict[str, Any]] = field(default_factory=list)
    #: stitched distributed trace: ``{"trace_id": ..., "spans": [...]}``
    #: with spans from both clouds when the query ran distributed.
    trace: dict[str, Any] | None = None

    def as_row(self) -> dict[str, float]:
        """Flatten into a dictionary suitable for tabular reporting."""
        row = {
            "protocol": self.protocol,
            "n": self.n_records,
            "m": self.dimensions,
            "k": self.k,
            "key_size": self.key_size,
            "l": self.distance_bits if self.distance_bits is not None else 0,
            "wall_time_seconds": self.wall_time_seconds,
        }
        row.update({f"phase_{name}": value for name, value in self.phase_seconds.items()})
        row.update(self.stats.as_row())
        return row

    def as_payload(self) -> dict[str, Any]:
        """Lossless wire form — a C1 daemon ships its report to the client."""
        return {
            "protocol": self.protocol,
            "n_records": self.n_records,
            "dimensions": self.dimensions,
            "k": self.k,
            "key_size": self.key_size,
            "distance_bits": self.distance_bits,
            "wall_time_seconds": self.wall_time_seconds,
            "stats": self.stats.as_payload(),
            "phase_seconds": dict(self.phase_seconds),
            "cost_breakdown": [dict(row) for row in self.cost_breakdown],
            "trace": self.trace,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "SkNNRunReport":
        """Rebuild from :meth:`as_payload` output."""
        fields = dict(data)
        fields["stats"] = ProtocolRunStats.from_payload(fields["stats"])
        fields.setdefault("trace", None)
        fields.setdefault("cost_breakdown", [])
        return cls(**fields)


class SkNNProtocol(P2StepDispatcher):
    """Base class for the SkNN_b and SkNN_m query protocols.

    Like the sub-protocols, the cloud-level protocols register their C2
    steps in :attr:`P2_STEPS` and drive them through :meth:`p2_step` (the
    inherited :class:`~repro.protocols.base.P2StepDispatcher` machinery),
    so the same implementation runs over the in-memory channel (handler
    executed inline) and over TCP (handler executed by the remote C2
    daemon when the frame arrives).
    """

    #: protocol name used in reports ("SkNNb" / "SkNNm")
    name = "SkNN"

    #: incoming-message tag -> name of the C2 handler method consuming it
    P2_STEPS: dict[str, str] = {
        "SkNN.masked_results": "_p2_decrypt_delivery",
    }

    def __init__(self, cloud: FederatedCloud,
                 feature_dimensions: int | None = None) -> None:
        """Create a query protocol over the cloud-hosted encrypted database.

        Args:
            cloud: the federated cloud hosting ``Epk(T)``.
            feature_dimensions: number of leading attributes the distance is
                computed over.  ``None`` (the default) uses every attribute.
                Setting it to fewer than the table's attribute count supports
                workloads where trailing columns are labels/metadata that are
                *returned* with the neighbors but must not influence the
                distance — e.g. the class column of the secure kNN classifier
                extension (the paper's Example 1 likewise excludes the
                diagnosis column ``num`` from the query).
        """
        self.cloud = cloud
        self.feature_dimensions = feature_dimensions
        self._ssed = SecureSquaredEuclideanDistance(cloud.setting)
        self.last_report: SkNNRunReport | None = None
        #: Optional hook for encrypting the delivery-phase masks; when set
        #: (e.g. to :meth:`repro.crypto.RandomnessPool.encrypt`) C1's
        #: per-attribute mask encryptions use precomputed obfuscation factors
        #: instead of fresh modular exponentiations.
        self.mask_encryptor = None

    # -- P2 step dispatch ---------------------------------------------------------
    @property
    def _p2_channel(self):
        return self.cloud.channel

    # -- accessors ----------------------------------------------------------------
    @property
    def encrypted_table(self) -> EncryptedTable:
        """The encrypted database hosted by C1."""
        return self.cloud.c1.encrypted_table

    @property
    def public_key(self):
        """The shared Paillier public key."""
        return self.cloud.c1.public_key

    # -- common protocol phases --------------------------------------------------
    def _validate_query(self, encrypted_query: Sequence[Ciphertext], k: int) -> None:
        """Validate query arity and ``k`` against the hosted database."""
        table = self.encrypted_table
        expected = self.feature_dimensions or table.dimensions
        if expected > table.dimensions or expected < 1:
            raise QueryError(
                f"feature_dimensions={expected} is invalid for a table with "
                f"{table.dimensions} attributes"
            )
        if len(encrypted_query) != expected:
            raise QueryError(
                f"encrypted query has {len(encrypted_query)} attributes, "
                f"expected {expected}"
            )
        if not isinstance(k, int) or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        if k > len(table):
            raise QueryError(f"k={k} exceeds the database size {len(table)}")

    def _compute_encrypted_distances(
        self, encrypted_query: Sequence[Ciphertext]
    ) -> list[Ciphertext]:
        """Step 2: SSED between the query and every record, as one batched scan.

        Delegates to :meth:`~repro.protocols.ssed.
        SecureSquaredEuclideanDistance.run_many`, which negates the shared
        query once per attribute and pushes all ``n * m`` squarings through a
        single batched SM round (see its docstring for the operation-count
        effect, modeled by ``ssed_scan_counts`` in the analysis layer).

        Only the leading ``len(encrypted_query)`` attributes of each record
        participate in the distance; trailing label/metadata columns (when
        ``feature_dimensions`` is set) are carried along untouched and only
        reappear in the delivered result records.
        """
        width = len(encrypted_query)
        with _profiling.cost_scope("scan"), \
                _tracing.span(f"{self.name}.distance_scan",
                              records=len(self.encrypted_table)):
            return self._ssed.run_many(
                list(encrypted_query),
                [list(record.ciphertexts[:width])
                 for record in self.encrypted_table],
            )

    @property
    def engine(self):
        """The deployment's precomputation engine (dynamic, may be None)."""
        return self.cloud.engine

    def _deliver_records(
        self, encrypted_records: Sequence[Sequence[Ciphertext]]
    ) -> ResultShares:
        """Steps 4-6 of Algorithm 5: split each result record into two shares.

        C1 masks every attribute with a fresh random value and sends the
        masked ciphertexts to C2; C2 decrypts them (seeing only uniformly
        random values) and forwards them to Bob; C1 sends the masks to Bob
        directly.  The payload carries a delivery id so C2 can file the
        decrypted share for the right query.  In the simulated runtime the
        share is collected from C2's in-process store; in the distributed
        runtime it stays on the C2 daemon (``masked_values_from_c2`` is
        ``None``) and Bob fetches it over his own connection to C2 using
        the returned ``delivery_id`` — C1's process never sees it, exactly
        as the paper's trust model requires.

        Mask sourcing precedence: precomputed engine mask tuples (both the
        value and its encryption paid offline) > the legacy
        ``mask_encryptor`` hook (pooled obfuscators) > fresh batch
        encryption.
        """
        with _profiling.cost_scope("deliver"), \
                _tracing.span(f"{self.name}.deliver",
                              records=len(encrypted_records)):
            return self._deliver_records_traced(encrypted_records)

    def _deliver_records_traced(
        self, encrypted_records: Sequence[Sequence[Ciphertext]]
    ) -> ResultShares:
        c1 = self.cloud.c1
        pk = self.public_key
        engine = self.engine
        masks_for_bob: list[list[int]] = []
        masked_for_c2: list[list[Ciphertext]] = []
        for encrypted_record in encrypted_records:
            if engine is not None:
                tuples = engine.take_masks(len(encrypted_record))
                record_masks = [r for r, _ in tuples]
                enc_masks = [c for _, c in tuples]
            else:
                record_masks = [c1.random_in_zn() for _ in encrypted_record]
                if self.mask_encryptor is not None:
                    enc_masks = [self.mask_encryptor(mask)
                                 for mask in record_masks]
                else:
                    enc_masks = c1.encrypt_batch(record_masks)
            masks_for_bob.append(record_masks)
            masked_for_c2.append(
                pk.add_batch(list(encrypted_record), enc_masks))

        delivery_id = next(_DELIVERY_IDS)
        c1.send([delivery_id, masked_for_c2], tag="SkNN.masked_results")
        self.p2_step("SkNN.masked_results")
        if getattr(self.cloud.channel, "runs_both_parties", True):
            masked_values = self.cloud.c2.take_delivery(delivery_id)
        else:
            masked_values = None
        return ResultShares(
            masks_from_c1=masks_for_bob,
            masked_values_from_c2=masked_values,
            modulus=self.public_key.n,
            delivery_id=delivery_id,
        )

    def _p2_decrypt_delivery(self) -> None:
        """C2's half of the delivery phase: decrypt and file the share."""
        c2 = self.cloud.c2
        delivery_id, received = c2.receive(expected_tag="SkNN.masked_results")
        masked_values = [
            c2.decrypt_residue_batch(record) for record in received
        ]
        c2.deliver_share(delivery_id, masked_values)

    # -- instrumented execution -----------------------------------------------------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Execute the query protocol; implemented by subclasses."""
        raise NotImplementedError

    def run_with_report(self, encrypted_query: Sequence[Ciphertext], k: int,
                        distance_bits: int | None = None) -> ResultShares:
        """Run the protocol and record a :class:`SkNNRunReport` in ``last_report``.

        When no trace is active yet (serial runs, or the C1 daemon before
        PR 6) a fresh trace is rooted here, so every ``run_with_report``
        produces a ``report.trace`` timeline.  When the caller already
        opened one (the C1 daemon roots the trace itself so it can stitch
        in the C2 daemon's spans) this joins it instead.
        """
        recorder = RunStatsRecorder(self.cloud)
        ledger = _profiling.CostLedger.for_cloud(self.cloud, party="C1")
        owns_trace = _tracing.current_wire_context() is None
        started = time.perf_counter()

        if owns_trace:
            with _tracing.trace(f"query.{self.name}", party="C1",
                                k=k, n=len(self.encrypted_table)) as root:
                with ledger.activate():
                    shares = self.run(encrypted_query, k)
            trace_id = root.trace_id
        else:
            with ledger.activate():
                shares = self.run(encrypted_query, k)
            trace_id = None

        elapsed = time.perf_counter() - started
        stats = recorder.finish(self.name, elapsed)
        cost_rows = ledger.finish()
        _profiling.record_phase_metrics(cost_rows)
        registry = _metrics.get_registry()
        registry.counter(
            "repro_queries_total", "SkNN queries executed, by protocol.",
            ("protocol",)).inc(protocol=self.name)
        registry.histogram(
            "repro_query_seconds", "End-to-end SkNN query latency.",
            ("protocol",)).observe(elapsed, protocol=self.name)
        self.last_report = SkNNRunReport(
            protocol=self.name,
            n_records=len(self.encrypted_table),
            dimensions=self.encrypted_table.dimensions,
            k=k,
            key_size=self.public_key.key_size,
            distance_bits=distance_bits,
            wall_time_seconds=elapsed,
            stats=stats,
            phase_seconds=_profiling.phase_seconds_of(cost_rows),
            cost_breakdown=cost_rows,
            trace=(_tracing.trace_payload(
                trace_id, _tracing.get_tracer().take(trace_id))
                if trace_id is not None else None),
        )
        return shares
