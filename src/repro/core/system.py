"""End-to-end SkNN system: Alice, Bob, and the federated cloud in one object.

:class:`SkNNSystem` wires together every role of the paper's setting so that a
user of the library can go from a plaintext table to answered kNN queries in a
few lines::

    from repro import SkNNSystem
    from repro.db import heart_disease_table, heart_disease_example_query

    system = SkNNSystem.setup(heart_disease_table(include_diagnosis=False),
                              key_size=512, mode="secure")
    neighbors = system.query(heart_disease_example_query(), k=2)

Internally ``setup`` performs Alice's key generation and database encryption,
deploys the two clouds, and registers Bob; ``query`` performs Bob's query
encryption, the chosen cloud protocol (SkNN_b, SkNN_m or parallel SkNN_b) and
Bob's share recombination, returning plaintext records.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Literal, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.parallel import ParallelSkNNBasic
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_base import SkNNRunReport
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.db.table import Table
from repro.exceptions import ConfigurationError
from repro.network.latency import LatencyModel

__all__ = ["QueryAnswer", "SkNNSystem"]

Mode = Literal["basic", "secure", "parallel"]


@dataclass
class QueryAnswer:
    """The result of one kNN query as seen by Bob.

    Attributes:
        neighbors: the k nearest records as plaintext attribute tuples, in
            increasing order of distance to the query.
        report: protocol-side statistics for the run (``None`` for the
            parallel backend, which reports through ``parallel_report``).
        client_encrypt_seconds: Bob's cost to encrypt the query.
        client_reconstruct_seconds: Bob's cost to recombine the two shares.
    """

    neighbors: list[tuple[int, ...]]
    report: SkNNRunReport | None
    client_encrypt_seconds: float
    client_reconstruct_seconds: float


class SkNNSystem:
    """A complete deployment of the SkNN setting (Alice + C1 + C2 + Bob)."""

    def __init__(self, owner: DataOwner, cloud: FederatedCloud,
                 client: QueryClient, mode: Mode = "secure",
                 distance_bits: int | None = None, workers: int = 6,
                 parallel_backend: str = "process") -> None:
        self.owner = owner
        self.cloud = cloud
        self.client = client
        self.mode = mode
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.distance_bits = (
            distance_bits if distance_bits is not None
            else owner.distance_bit_length()
        )
        self._protocol = self._build_protocol()

    # -- construction ------------------------------------------------------------
    @classmethod
    def setup(cls, table: Table, key_size: int = 512, mode: Mode = "secure",
              k_default: int | None = None, rng: Random | None = None,
              distance_bits: int | None = None, workers: int = 6,
              parallel_backend: str = "process",
              latency_model: LatencyModel | None = None) -> "SkNNSystem":
        """Stand up the whole system from a plaintext table.

        Args:
            table: Alice's plaintext database.
            key_size: Paillier key size ``K`` in bits.
            mode: ``"basic"`` (Algorithm 5), ``"secure"`` (Algorithm 6) or
                ``"parallel"`` (Section 5.3 parallel SkNN_b).
            k_default: unused placeholder kept for API compatibility.
            rng: optional deterministic randomness source (tests only).
            distance_bits: override for the domain parameter ``l`` (defaults
                to the value derived from the schema).
            workers: worker count for the parallel mode.
            parallel_backend: ``"process"``, ``"thread"`` or ``"serial"``.
            latency_model: optional simulated network latency between clouds.
        """
        owner = DataOwner(table, key_size=key_size, rng=rng)
        cloud = FederatedCloud.deploy(owner.keypair, rng=rng,
                                      latency_model=latency_model)
        cloud.c1.host_database(owner.encrypt_database())
        client = QueryClient(owner.public_key, table.dimensions, rng=rng)
        return cls(owner, cloud, client, mode=mode, distance_bits=distance_bits,
                   workers=workers, parallel_backend=parallel_backend)

    def _build_protocol(self):
        """Instantiate the protocol object matching the configured mode."""
        if self.mode == "basic":
            return SkNNBasic(self.cloud)
        if self.mode == "secure":
            return SkNNSecure(self.cloud, distance_bits=self.distance_bits)
        if self.mode == "parallel":
            return ParallelSkNNBasic(self.cloud, workers=self.workers,
                                     backend=self.parallel_backend)
        raise ConfigurationError(f"unknown mode {self.mode!r}")

    # -- queries ------------------------------------------------------------------
    def query(self, query_record: Sequence[int], k: int) -> list[tuple[int, ...]]:
        """Answer a kNN query and return the plaintext neighbor records."""
        return self.query_with_report(query_record, k).neighbors

    def query_with_report(self, query_record: Sequence[int], k: int) -> QueryAnswer:
        """Answer a kNN query and return the neighbors plus run statistics."""
        encrypted_query = self.client.encrypt_query(query_record)

        if isinstance(self._protocol, ParallelSkNNBasic):
            shares = self._protocol.run(encrypted_query, k)
            report = None
        else:
            shares = self._protocol.run_with_report(
                encrypted_query, k, distance_bits=self.distance_bits
            )
            report = self._protocol.last_report

        neighbors = self.client.reconstruct(shares)
        return QueryAnswer(
            neighbors=neighbors,
            report=report,
            client_encrypt_seconds=self.client.last_cost.encrypt_query_seconds,
            client_reconstruct_seconds=self.client.last_cost.reconstruct_seconds,
        )

    # -- accessors ------------------------------------------------------------------
    @property
    def parallel_report(self):
        """Timing breakdown of the last parallel run (parallel mode only)."""
        if isinstance(self._protocol, ParallelSkNNBasic):
            return self._protocol.last_report
        return None

    @property
    def key_size(self) -> int:
        """The Paillier key size ``K`` of this deployment."""
        return self.owner.keypair.key_size
