"""End-to-end SkNN system: Alice, Bob, and the federated cloud in one object.

:class:`SkNNSystem` wires together every role of the paper's setting so that a
user of the library can go from a plaintext table to answered kNN queries in a
few lines::

    from repro import SkNNSystem
    from repro.db import heart_disease_table, heart_disease_example_query

    system = SkNNSystem.setup(heart_disease_table(include_diagnosis=False),
                              key_size=512, mode="secure")
    neighbors = system.query(heart_disease_example_query(), k=2)

Internally ``setup`` performs Alice's key generation and database encryption,
deploys the two clouds, and registers Bob; ``query`` performs Bob's query
encryption, the chosen cloud protocol (SkNN_b, SkNN_m, parallel SkNN_b or the
sharded scatter-gather plan) and Bob's share recombination, returning
plaintext records.

For multi-user serving, :meth:`SkNNSystem.serve` stands up a
:class:`~repro.service.scheduler.QueryServer` over a sharded deployment —
see :mod:`repro.service`.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Literal, Sequence

if TYPE_CHECKING:  # pragma: no cover - imports used for annotations only
    from repro.service.scheduler import QueryServer
    from repro.transport.client import RemoteCloud
    from repro.transport.supervisor import LocalSupervisor

from repro.core.cloud import FederatedCloud
from repro.core.parallel import ParallelSkNNBasic
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_base import SkNNRunReport
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.db.table import Table
from repro.exceptions import ConfigurationError, QueryError
from repro.network.latency import LatencyModel

__all__ = ["QueryAnswer", "SkNNSystem"]

Mode = Literal["basic", "secure", "parallel", "sharded", "distributed"]


@dataclass
class QueryAnswer:
    """The result of one kNN query as seen by Bob.

    Attributes:
        neighbors: the k nearest records as plaintext attribute tuples, in
            increasing order of distance to the query.
        report: protocol-side statistics for the run — populated for every
            mode (parallel and sharded runs additionally fill the report's
            ``phase_seconds`` with their phase breakdown).
        client_encrypt_seconds: Bob's cost to encrypt the query.
        client_reconstruct_seconds: Bob's cost to recombine the two shares.
    """

    neighbors: list[tuple[int, ...]]
    report: SkNNRunReport | None
    client_encrypt_seconds: float
    client_reconstruct_seconds: float


class SkNNSystem:
    """A complete deployment of the SkNN setting (Alice + C1 + C2 + Bob)."""

    def __init__(self, owner: DataOwner, cloud: FederatedCloud | None,
                 client: QueryClient, mode: Mode = "secure",
                 distance_bits: int | None = None, workers: int = 6,
                 parallel_backend: str = "process", shards: int = 2,
                 k_default: int | None = None,
                 precompute: int = 0,
                 remote: "RemoteCloud | None" = None,
                 supervisor: "LocalSupervisor | None" = None) -> None:
        if cloud is None and remote is None:
            raise ConfigurationError(
                "a system needs either a local cloud or a remote daemon pair")
        self.owner = owner
        self.cloud = cloud
        self.client = client
        self.mode = mode
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.shards = shards
        self.k_default = k_default
        #: distributed mode: the provisioned daemon pair and (when this
        #: system spawned it) the supervisor owning the two subprocesses
        self.remote = remote
        self.supervisor = supervisor
        self.distance_bits = (
            distance_bits if distance_bits is not None
            else owner.distance_bit_length()
        )
        if precompute > 0 and cloud is not None:
            self._attach_precompute(precompute)
        self._protocol = self._build_protocol()

    # -- construction ------------------------------------------------------------
    @classmethod
    def setup(cls, table: Table, key_size: int = 512, mode: Mode = "secure",
              k_default: int | None = None, rng: Random | None = None,
              distance_bits: int | None = None, workers: int = 6,
              parallel_backend: str = "process", shards: int = 2,
              latency_model: LatencyModel | None = None,
              precompute: int = 0) -> "SkNNSystem":
        """Stand up the whole system from a plaintext table.

        Args:
            table: Alice's plaintext database.
            key_size: Paillier key size ``K`` in bits.
            mode: ``"basic"`` (Algorithm 5), ``"secure"`` (Algorithm 6),
                ``"parallel"`` (Section 5.3 parallel SkNN_b) or ``"sharded"``
                (scatter-gather SkNN_b over N shards, see
                :mod:`repro.service`).
            k_default: default neighbor count used when :meth:`query` is
                called without an explicit ``k``.
            rng: optional deterministic randomness source (tests only).
            distance_bits: override for the domain parameter ``l`` (defaults
                to the value derived from the schema).
            workers: worker count for the parallel and sharded modes.
            parallel_backend: ``"process"``, ``"thread"`` or ``"serial"``.
            shards: partition count for the sharded mode.
            latency_model: optional simulated network latency between clouds.
            precompute: when positive, attach a warmed
                :class:`~repro.crypto.precompute.PrecomputeEngine` sized to
                cover roughly this many queries, so the online path consumes
                pooled obfuscators, constants and mask tuples.  In
                distributed mode each daemon warms its own party-local
                engine instead.

        ``mode="distributed"`` spawns a local C1+C2 daemon pair (two real OS
        processes talking length-prefixed TCP frames), provisions them with
        the encrypted table and the secret key, and answers queries over the
        wire with the fully secure SkNN_m protocol.  The system owns the
        subprocesses; :meth:`close` (or the context manager) shuts them
        down.
        """
        owner = DataOwner(table, key_size=key_size, rng=rng)
        client = QueryClient(owner.public_key, table.dimensions, rng=rng)
        if mode == "distributed":
            # Local import: the transport stack is only needed here.
            from repro.transport.supervisor import LocalSupervisor

            supervisor = LocalSupervisor().start()
            try:
                remote = supervisor.provision_from_owner(
                    owner,
                    distance_bits=distance_bits,
                    seed=rng.getrandbits(31) if rng is not None else None,
                    precompute_queries=precompute,
                    k_default=k_default or 1)
            except BaseException:
                supervisor.shutdown()
                raise
            return cls(owner, None, client, mode=mode,
                       distance_bits=distance_bits, k_default=k_default,
                       remote=remote, supervisor=supervisor)
        cloud = FederatedCloud.deploy(owner.keypair, rng=rng,
                                      latency_model=latency_model)
        cloud.c1.host_database(owner.encrypt_database())
        return cls(owner, cloud, client, mode=mode, distance_bits=distance_bits,
                   workers=workers, parallel_backend=parallel_backend,
                   shards=shards, k_default=k_default, precompute=precompute)

    def _attach_precompute(self, queries: int) -> None:
        """Build, warm and attach per-cloud precomputation engines.

        C1 and C2 each get their own engine (filled with their own
        randomness, as the non-colluding model requires): C1's covers mask
        tuples and P1 constants, C2's the obfuscators of its re-encryptions
        and the 0/1 constant pools.
        """
        # Local import: keeps module import cost low for engine-less users.
        from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine

        table = self.owner.table
        load = dict(n_records=len(table), dimensions=table.dimensions,
                    k=self.k_default or 1, queries=queries,
                    sbd_bit_length=(self.distance_bits
                                    if self.mode == "secure" else None))

        def engine_rng() -> Random | None:
            if self.owner.rng is None:
                return None
            return Random(self.owner.rng.getrandbits(63))

        config = PrecomputeConfig.for_query_load(
            worker_scan=self.mode in ("parallel", "sharded"), **load)
        if self.mode == "sharded":
            # The sharded store's per-shard pools provide the worker slices
            # themselves; the engine only needs fallback obfuscators.
            from dataclasses import replace
            config = replace(config,
                             obfuscators=2 * table.dimensions * queries + 16)
        c1_engine = PrecomputeEngine(
            self.owner.public_key, rng=engine_rng(), config=config)
        c2_engine = PrecomputeEngine(
            self.owner.public_key, rng=engine_rng(),
            config=PrecomputeConfig.for_decryptor_load(**load))
        c1_engine.warm()
        c2_engine.warm()
        self.cloud.attach_engine(c1_engine, c2_engine)

    @property
    def precompute_engine(self):
        """C1's attached precomputation engine, when one exists."""
        return self.cloud.engine if self.cloud is not None else None

    @property
    def decryptor_precompute_engine(self):
        """C2's attached precomputation engine, when one exists."""
        return self.cloud.c2.engine if self.cloud is not None else None

    def _build_protocol(self):
        """Instantiate the protocol object matching the configured mode."""
        if self.mode == "distributed":
            # Local import: repro.transport sits on top of repro.core.
            from repro.transport.client import RemoteProtocol
            return RemoteProtocol(self.remote, mode="secure",
                                  supervisor=self.supervisor)
        if self.mode == "basic":
            return SkNNBasic(self.cloud)
        if self.mode == "secure":
            return SkNNSecure(self.cloud, distance_bits=self.distance_bits)
        if self.mode == "parallel":
            return ParallelSkNNBasic(self.cloud, workers=self.workers,
                                     backend=self.parallel_backend,
                                     precompute=self.cloud.engine)
        if self.mode == "sharded":
            # Local import: repro.service sits on top of repro.core.
            from repro.service.sharding import ShardedCloud
            return ShardedCloud(self.cloud, shards=self.shards,
                                workers=self.workers,
                                backend=self.parallel_backend,
                                precompute=self.cloud.engine)
        raise ConfigurationError(f"unknown mode {self.mode!r}")

    # -- queries ------------------------------------------------------------------
    def _resolve_k(self, k: int | None) -> int:
        """Apply the configured ``k_default`` when no ``k`` is given."""
        if k is not None:
            return k
        if self.k_default is None:
            raise QueryError(
                "no k given and no k_default was configured at setup")
        return self.k_default

    def query(self, query_record: Sequence[int],
              k: int | None = None) -> list[tuple[int, ...]]:
        """Answer a kNN query and return the plaintext neighbor records.

        ``k`` may be omitted when the system was set up with ``k_default``.
        """
        return self.query_with_report(query_record, k).neighbors

    def query_with_report(self, query_record: Sequence[int],
                          k: int | None = None) -> QueryAnswer:
        """Answer a kNN query and return the neighbors plus run statistics.

        The returned :class:`QueryAnswer` carries a populated report in every
        mode; parallel and sharded runs additionally expose their phase
        breakdown through ``report.phase_seconds``.
        """
        k = self._resolve_k(k)
        encrypted_query = self.client.encrypt_query(query_record)

        shares = self._protocol.run_with_report(
            encrypted_query, k, distance_bits=self.distance_bits
        )
        report = self._protocol.last_report

        neighbors = self.client.reconstruct(shares)
        return QueryAnswer(
            neighbors=neighbors,
            report=report,
            client_encrypt_seconds=self.client.last_cost.encrypt_query_seconds,
            client_reconstruct_seconds=self.client.last_cost.reconstruct_seconds,
        )

    # -- serving -------------------------------------------------------------------
    def serve(self, shards: int | None = None, workers: int | None = None,
              backend: str | None = None, batch_size: int = 4,
              randomness_pool_size: int = 0,
              session_pool_size: int = 0,
              precompute: int = 0,
              precompute_producer: bool = False) -> "QueryServer":
        """Stand up a multi-session :class:`~repro.service.scheduler.QueryServer`.

        The server answers queries through a sharded scatter-gather plan over
        this system's encrypted table (independent of the system's own query
        ``mode``).  Use it as a context manager to start the background
        serving thread and release the worker pool afterwards::

            with system.serve(shards=3, batch_size=4) as server:
                bob = server.open_session("bob")
                answer = bob.query(record, k=2)

        Args:
            shards: partition count (defaults to the system's ``shards``).
            workers: worker pool size (defaults to the system's ``workers``).
            backend: pool backend (defaults to ``parallel_backend``).
            batch_size: maximum queries grouped into one scan pass.
            randomness_pool_size: when positive, precompute this many Paillier
                obfuscation factors for the delivery phase.
            session_pool_size: when positive, every session precomputes this
                many factors for its query encryptions.
            precompute: when positive, the sharded store owns a warmed
                :class:`~repro.crypto.precompute.PrecomputeEngine` sized to
                cover roughly this many queries; the server refills it (and
                the per-shard worker pools) in idle scheduler slots.
            precompute_producer: additionally start the engine's background
                producer thread, so pools refill even while batches execute.
        """
        # Local import: repro.service sits on top of repro.core.
        from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
        from repro.crypto.randomness_pool import RandomnessPool
        from repro.service.scheduler import QueryServer
        from repro.service.sharding import ShardedCloud

        server_rng = (Random(self.owner.rng.getrandbits(63))
                      if self.owner.rng is not None else None)
        if self.mode == "distributed":
            # The scheduler's sessions/batching run locally; every batch is
            # dispatched over the remote channel to the C1 daemon.
            from repro.transport.client import RemoteStore

            # The store owns a cloned connection pair, so closing the server
            # never severs this system's own daemon connections.
            store = RemoteStore(self.remote.clone(), mode="basic",
                                public_key=self.owner.public_key)
            return QueryServer(store, batch_size=batch_size, rng=server_rng,
                               session_pool_size=session_pool_size)
        engine = None
        if precompute > 0:
            # Reuse an engine already attached at setup time (its warmed
            # pools are paid for) instead of replacing it with a cold one.
            engine = self.cloud.engine
            if engine is None:
                from dataclasses import replace

                table = self.owner.table
                config = PrecomputeConfig.for_query_load(
                    n_records=len(table), dimensions=table.dimensions,
                    k=self.k_default or 1, queries=precompute,
                    worker_scan=True)
                # The sharded store's per-shard pools provide the worker
                # slices; the engine itself only needs fallback obfuscators.
                config = replace(
                    config,
                    obfuscators=2 * table.dimensions * precompute + 16)
                engine = PrecomputeEngine(self.owner.public_key,
                                          rng=server_rng, config=config)
                engine.warm()
        randomness_pool = None
        if randomness_pool_size > 0 and engine is None:
            # The legacy delivery-mask pool; superseded (and its only
            # consumer skipped) when a precompute engine is present.
            randomness_pool = RandomnessPool(self.owner.public_key,
                                             size=randomness_pool_size,
                                             rng=server_rng)
        sharded = ShardedCloud(
            self.cloud,
            shards=shards if shards is not None else self.shards,
            workers=workers if workers is not None else self.workers,
            backend=backend if backend is not None else self.parallel_backend,
            randomness_pool=randomness_pool,
            precompute=engine,
        )
        if engine is not None and precompute_producer:
            engine.start_producer()
        return QueryServer(sharded, batch_size=batch_size, rng=server_rng,
                           session_pool_size=session_pool_size)

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        """Release protocol resources (worker pools of parallel/sharded modes)."""
        closer = getattr(self._protocol, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "SkNNSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- accessors ------------------------------------------------------------------
    @property
    def parallel_report(self):
        """Timing breakdown of the last parallel run (parallel mode only)."""
        if isinstance(self._protocol, ParallelSkNNBasic):
            return self._protocol.last_parallel_report
        return None

    @property
    def key_size(self) -> int:
        """The Paillier key size ``K`` of this deployment."""
        return self.owner.keypair.key_size
