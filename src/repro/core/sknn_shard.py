"""Cross-machine sharded SkNN_b: shard daemons scan, one coordinator merges.

The in-process :class:`~repro.service.sharding.ShardedCloud` parallelises the
distance scan by handing each worker thread *both* cloud roles for its slice
— fine inside one trust domain, impossible across machines (the workers
would need the private key).  This module is the distributed replacement
that respects the paper's two-cloud trust boundary:

* **Shard C1 daemons** each hold one horizontal slice of ``Epk(T)`` and run
  the SSED distance phase for their records against the shared C2, then
  send the encrypted distances (offset by the slice's global start index)
  to C2 tagged ``SkNNb.shard_distances``.
* **C2** decrypts each shard's distances (the SkNN_b leakage model — C2
  learns distances by design), keeps the shard-local top-k candidates, and
  files them into a :class:`ScanRegistry` keyed by scan id.
* **The coordinator C1** (which holds the full table for the delivery
  phase) asks C2 to ``SkNNb.gather_top_k``: C2 blocks until every shard has
  filed, merges the candidate pools, and returns the global top-k index
  list — bit-identical to ``ShardedCloud.merge_top_k`` *and* to the serial
  ``SkNNb`` selection, because all three order by ``(distance,
  global_index)``.  The coordinator then runs the ordinary masked delivery.

Only SkNN_b shards this way: SkNN_m's SMIN_n tournament needs the
candidates as *ciphertext* pairs threaded through log-depth rounds, which
the registry's plaintext-residue merge cannot express.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNProtocol
from repro.crypto.paillier import Ciphertext
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import DeadlineExceeded, ProtocolError, QueryError
from repro.telemetry import profiling as _profiling

__all__ = ["ScanRegistry", "ShardScanProtocol", "ShardCoordinatorProtocol",
           "shard_bounds", "shard_table"]


def shard_bounds(n_records: int, shard_count: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` slice bounds for each shard.

    The same arithmetic as ``ShardedCloud._partition`` (``divmod``: the
    first ``n % shards`` shards get one extra record), so a daemon
    deployment and the in-process sharded store slice identically.
    """
    if shard_count < 1:
        raise QueryError(f"shard_count must be positive, got {shard_count}")
    base, extra = divmod(n_records, shard_count)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def shard_table(table: EncryptedTable, shard_index: int,
                shard_count: int) -> tuple[EncryptedTable, int]:
    """One shard's slice of an encrypted table plus its global start index."""
    bounds = shard_bounds(len(table), shard_count)
    if not 0 <= shard_index < shard_count:
        raise QueryError(
            f"shard_index {shard_index} out of range for {shard_count} shards")
    start, stop = bounds[shard_index]
    slice_table = EncryptedTable(table.schema, table.public_key,
                                 table.records[start:stop])
    return slice_table, start


class ScanRegistry:
    """C2-side rendezvous of shard candidate filings, keyed by scan id.

    Shard connections file their slice's top-k ``(distance, global_index)``
    pairs concurrently (each on its own context worker thread); the
    coordinator's gather blocks until all ``shard_count`` filings arrived.
    A gathered scan is popped; stale scans (a coordinator that died before
    gathering) are bounded by FIFO eviction.

    Replayed filings (a shard daemon retrying its scan after a lost reply)
    simply overwrite the same ``(scan_id, shard_index)`` cell with identical
    data, so idempotent retries stay safe.
    """

    #: bound on scans awaiting their gather
    MAX_PENDING_SCANS = 32

    def __init__(self, timeout: float = 120.0) -> None:
        self.timeout = timeout
        self._condition = threading.Condition()
        #: scan id -> {shard_index: [(distance, global_index), ...]}
        self._filings: "OrderedDict[str, dict[int, list]]" = OrderedDict()

    def file(self, scan_id: str, shard_index: int,
             pairs: Sequence[tuple[int, int]]) -> None:
        """Record one shard's candidates and wake a waiting gather."""
        with self._condition:
            entry = self._filings.get(scan_id)
            if entry is None:
                entry = self._filings[scan_id] = {}
                self._filings.move_to_end(scan_id)
                while len(self._filings) > self.MAX_PENDING_SCANS:
                    self._filings.popitem(last=False)
            entry[shard_index] = [tuple(pair) for pair in pairs]
            self._condition.notify_all()

    def gather(self, scan_id: str, shard_count: int,
               timeout: float | None = None) -> list[tuple[int, int]]:
        """Wait for all shards to file, pop the scan, return every pair."""
        bound = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + bound
        with self._condition:
            while True:
                entry = self._filings.get(scan_id)
                if entry is not None and len(entry) >= shard_count:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    filed = len(entry) if entry is not None else 0
                    raise DeadlineExceeded(
                        f"scan {scan_id!r}: only {filed}/{shard_count} "
                        f"shards filed within {bound:.0f}s")
                self._condition.wait(remaining)
            del self._filings[scan_id]
        merged: list[tuple[int, int]] = []
        for pairs in entry.values():
            merged.extend(pairs)
        return merged

    def pending(self) -> int:
        """Scans awaiting their gather (introspection/stats)."""
        with self._condition:
            return len(self._filings)


class ShardScanProtocol(SkNNProtocol):
    """The distance phase of one shard, plus C2's filing/merging steps.

    On a shard C1 daemon this drives :meth:`run_scan`; on the C2 daemon
    only the two P2 handlers are dispatched (``registry`` must be set
    there).  The protocol deliberately has no delivery phase — shards never
    see which records win, the coordinator delivers.
    """

    name = "SkNNb-shard"

    P2_STEPS = {
        "SkNNb.shard_distances": "_p2_file_shard_distances",
        "SkNNb.gather_top_k": "_p2_gather_top_k",
    }

    def __init__(self, cloud: FederatedCloud, shard_index: int = 0,
                 shard_count: int = 1, start_index: int = 0,
                 registry: ScanRegistry | None = None,
                 feature_dimensions: int | None = None) -> None:
        super().__init__(cloud, feature_dimensions=feature_dimensions)
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.start_index = start_index
        self.registry = registry

    def run_scan(self, encrypted_query: Sequence[Ciphertext], k: int,
                 scan_id: str) -> int:
        """SSED over this shard's slice; ship the distances to C2.

        Returns the number of records scanned.  ``k`` may exceed the slice
        size (it is global): the shard simply contributes its whole slice
        as candidates then.
        """
        table = self.encrypted_table
        expected = self.feature_dimensions or table.dimensions
        if len(encrypted_query) != expected:
            raise QueryError(
                f"encrypted query has {len(encrypted_query)} attributes, "
                f"expected {expected}")
        if not isinstance(k, int) or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        encrypted_distances = self._compute_encrypted_distances(
            encrypted_query)
        with _profiling.cost_scope("select"):
            self.cloud.c1.send(
                [scan_id, self.shard_index, self.shard_count, k,
                 self.start_index, encrypted_distances],
                tag="SkNNb.shard_distances")
            self.p2_step("SkNNb.shard_distances")
            ack = self.cloud.c1.receive(expected_tag="SkNNb.shard_filed")
        if ack != scan_id:
            raise ProtocolError(
                f"C2 acknowledged scan {ack!r}, expected {scan_id!r}")
        return len(table)

    # -- C2 steps -------------------------------------------------------------
    def _require_registry(self) -> ScanRegistry:
        if self.registry is None:
            raise ProtocolError(
                "this party has no scan registry (not a C2 daemon?)")
        return self.registry

    def _p2_file_shard_distances(self) -> None:
        """C2: decrypt one shard's distances, file its local top-k."""
        registry = self._require_registry()
        c2 = self.cloud.c2
        scan_id, shard_index, shard_count, k, start_index, distances = (
            c2.receive(expected_tag="SkNNb.shard_distances"))
        residues = c2.decrypt_residue_batch(list(distances))
        pairs = [(residue, start_index + offset)
                 for offset, residue in enumerate(residues)]
        # Shard-local pre-selection: only k candidates per shard can reach
        # the global top-k, and the (distance, global_index) key matches
        # both ShardedCloud.shard_top_k and the serial selection's sort.
        registry.file(str(scan_id), int(shard_index),
                      heapq.nsmallest(int(k), pairs))
        c2.send(scan_id, tag="SkNNb.shard_filed")

    def _p2_gather_top_k(self) -> None:
        """C2: block for all shard filings, merge, return the index list."""
        registry = self._require_registry()
        c2 = self.cloud.c2
        scan_id, k, shard_count = c2.receive(
            expected_tag="SkNNb.gather_top_k")
        merged = registry.gather(str(scan_id), int(shard_count))
        winners = heapq.nsmallest(int(k), merged)
        c2.send([index for _, index in winners], tag="SkNNb.topk_indices")


class ShardCoordinatorProtocol(SkNNProtocol):
    """The coordinator C1's side of a sharded SkNN_b query.

    Holds the *full* table (for validation and the delivery phase) plus a
    ``scatter`` callable that fans the scan out to the shard daemons and
    returns only when every shard has acknowledged filing its candidates.
    The C2-side gather handler lives on :class:`ShardScanProtocol`; it is
    registered here too so an in-process C2 stub can dispatch it inline.
    """

    name = "SkNNb-sharded"

    P2_STEPS = dict(SkNNProtocol.P2_STEPS, **{
        "SkNNb.gather_top_k": "_p2_gather_top_k",
    })

    def __init__(self, cloud: FederatedCloud, shard_count: int,
                 scatter: Callable[[str, list[Ciphertext], int], Any],
                 scan_id: str, registry: ScanRegistry | None = None,
                 feature_dimensions: int | None = None) -> None:
        super().__init__(cloud, feature_dimensions=feature_dimensions)
        self.shard_count = shard_count
        self._scatter = scatter
        self.scan_id = scan_id
        self.registry = registry

    _p2_gather_top_k = ShardScanProtocol._p2_gather_top_k
    _require_registry = ShardScanProtocol._require_registry

    def run(self, encrypted_query: Sequence[Ciphertext],
            k: int) -> ResultShares:
        """Scatter the scan, gather the global top-k, deliver the records."""
        self._validate_query(encrypted_query, k)
        c1 = self.cloud.c1
        with _profiling.cost_scope("scan"):
            self._scatter(self.scan_id, list(encrypted_query), k)
        with _profiling.cost_scope("select"):
            c1.send([self.scan_id, k, self.shard_count],
                    tag="SkNNb.gather_top_k")
            self.p2_step("SkNNb.gather_top_k")
            delta = c1.receive(expected_tag="SkNNb.topk_indices")
            selected_records = [
                list(self.encrypted_table.record_at(index).ciphertexts)
                for index in delta
            ]
        return self._deliver_records(selected_records)
