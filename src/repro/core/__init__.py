"""Core SkNN protocols and roles: the paper's primary contribution.

* :class:`DataOwner` (Alice), :class:`QueryClient` (Bob)
* :class:`CloudC1`, :class:`CloudC2`, :class:`FederatedCloud`
* :class:`SkNNBasic` — Algorithm 5 (efficient, leaks distances / access patterns)
* :class:`SkNNSecure` — Algorithm 6 (fully secure)
* :class:`ParallelSkNNBasic` — Section 5.3 parallel variant
* :class:`SkNNSystem` — end-to-end orchestration
"""

from repro.core.cloud import CloudC1, CloudC2, FederatedCloud
from repro.core.parallel import ParallelRunReport, ParallelSkNNBasic
from repro.core.roles import ClientCostReport, DataOwner, QueryClient, ResultShares
from repro.core.sknn_base import SkNNProtocol, SkNNRunReport
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.core.system import QueryAnswer, SkNNSystem

__all__ = [
    "DataOwner",
    "QueryClient",
    "ResultShares",
    "ClientCostReport",
    "CloudC1",
    "CloudC2",
    "FederatedCloud",
    "SkNNProtocol",
    "SkNNRunReport",
    "SkNNBasic",
    "SkNNSecure",
    "ParallelSkNNBasic",
    "ParallelRunReport",
    "QueryAnswer",
    "SkNNSystem",
]
