"""SkNN_m — the fully secure protocol, Algorithm 6 of the paper.

The protocol hides the data, the query *and* the data access patterns from
both clouds.  After the common SSED phase it proceeds in ``k`` iterations; in
iteration ``s`` the clouds jointly and obliviously extract the encrypted
record with the ``s``-th smallest distance:

1. **SBD** — the encrypted distance of every record is bit-decomposed once up
   front, because the minimum-selection works on encrypted bit vectors.
2. **SMIN_n** — C1 and C2 compute ``[d_min]``, the encrypted bit vector of the
   current global minimum distance.  Neither cloud learns which record attains
   it.
3. **Oblivious localisation** — C1 recomposes ``E(d_min)`` and ``E(d_i)`` from
   the bit vectors, forms ``E(r_i * (d_min - d_i))`` with fresh random
   ``r_i``, permutes the vector and sends it to C2.  C2 decrypts: exactly the
   position(s) holding the minimum decrypt to zero, every other entry is
   uniformly random.  C2 returns an encrypted indicator vector ``U`` (a one at
   the zero position, zeros elsewhere); C1 undoes the permutation to get
   ``V``.  Because ``V`` is encrypted, C1 still does not know which record was
   selected.
4. **Oblivious extraction** — ``E(t'_{s,j}) = prod_i SM(V_i, E(t_{i,j}))``:
   the selected record is copied out under encryption.
5. **Oblivious elimination** — every bit of the selected record's distance is
   OR-ed (via SBOR) with the indicator ``V_i``, which sets the chosen
   record's distance to the all-ones maximum ``2**l - 1`` so it can never be
   selected again; all other distances are unchanged.

After ``k`` iterations C1 holds the ``k`` encrypted nearest records and the
usual two-share delivery sends them to Bob.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNProtocol
from repro.crypto.paillier import Ciphertext
from repro.exceptions import ProtocolError
from repro.protocols.encoding import recompose_from_encrypted_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.sbor import SecureBitOr
from repro.protocols.sm import SecureMultiplication
from repro.protocols.sminn import SecureMinimumOfN
from repro.telemetry import profiling as _profiling

__all__ = ["SkNNSecure"]


class SkNNSecure(SkNNProtocol):
    """The fully secure (maximally secure) kNN protocol SkNN_m (Algorithm 6)."""

    name = "SkNNm"

    P2_STEPS = dict(SkNNProtocol.P2_STEPS,
                    **{"SkNNm.randomized_differences": "_p2_locate_minimum"})

    def __init__(self, cloud: FederatedCloud, distance_bits: int,
                 sminn_topology: str = "tournament",
                 reexpand_each_iteration: bool = True,
                 feature_dimensions: int | None = None) -> None:
        """Create an SkNN_m instance.

        Args:
            cloud: the federated cloud hosting ``Epk(T)``.
            distance_bits: the domain parameter ``l`` — every squared distance
                must lie in ``[0, 2**l)``.  Derive it from the schema with
                :meth:`repro.db.schema.Schema.distance_bit_length`.
            sminn_topology: ``"tournament"`` (the paper's binary tree) or
                ``"chain"`` (ablation).
            reexpand_each_iteration: when ``True`` (the paper's Algorithm 6,
                step 3(b)) C1 re-derives ``E(d_i)`` from the encrypted bit
                vectors ``[d_i]`` in every iteration after the first, because
                the SBOR update only modifies the bit vectors.  ``False``
                skips the re-expansion and is kept for the ablation benchmark
                that demonstrates why the paper includes it: with stale
                ``E(d_i)`` an already-selected record whose distance ties the
                next minimum can be extracted twice.
        """
        super().__init__(cloud, feature_dimensions=feature_dimensions)
        if distance_bits <= 0:
            raise ProtocolError("distance_bits must be positive")
        self.distance_bits = distance_bits
        self.reexpand_each_iteration = reexpand_each_iteration
        setting = cloud.setting
        self._sbd = SecureBitDecomposition(setting, distance_bits)
        self._sminn = SecureMinimumOfN(setting, topology=sminn_topology)
        self._sm = SecureMultiplication(setting)
        self._sbor = SecureBitOr(setting)

    # -- protocol ------------------------------------------------------------------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer a kNN query without revealing distances or access patterns.

        Args:
            encrypted_query: Bob's attribute-wise encrypted query ``Epk(Q)``.
            k: number of nearest neighbors requested.

        Returns:
            The two result shares for Bob.
        """
        self._validate_query(encrypted_query, k)
        c1 = self.cloud.c1
        n = len(self.encrypted_table)

        # Step 2: E(d_i) via one batched SSED scan, then [d_i] via one batched
        # SBD pass over every record's distance.
        encrypted_distances = self._compute_encrypted_distances(encrypted_query)
        with _profiling.cost_scope("decompose"):
            distance_bits = self._sbd.run_batch(encrypted_distances)

        encrypted_results: list[list[Ciphertext]] = []
        for iteration in range(k):
            with _profiling.cost_scope("select"):
                # Step 3(a): [d_min] of the current (possibly updated)
                # distances.
                min_bits = self._sminn.run(distance_bits)

                # Step 3(b): C1 recomposes E(d_min) and, after the first
                # iteration, re-derives every E(d_i) from its bit vector.
                enc_dmin = recompose_from_encrypted_bits(min_bits)
                if iteration > 0 and self.reexpand_each_iteration:
                    encrypted_distances = [
                        recompose_from_encrypted_bits(bits)
                        for bits in distance_bits
                    ]

                # tau_i = E(r_i * (d_min - d_i)), permuted before leaving C1.
                pk = self.public_key
                differences = pk.add_batch(
                    [enc_dmin] * n,
                    pk.scalar_mul_batch(encrypted_distances, -1))
                randomized = pk.scalar_mul_batch(
                    differences, [c1.random_nonzero() for _ in range(n)])
                permutation = list(range(n))
                c1.rng.shuffle(permutation)
                beta = [randomized[j] for j in permutation]
                c1.send(beta, tag="SkNNm.randomized_differences")

                # Step 3(c): C2 marks the zero entry with an encrypted 1.
                self.p2_step("SkNNm.randomized_differences")

                # Step 3(d): C1 un-permutes U into V.
                received_u = c1.receive(expected_tag="SkNNm.indicator")
                indicator_v: list[Ciphertext | None] = [None] * n
                for position, original_index in enumerate(permutation):
                    indicator_v[original_index] = received_u[position]
            with _profiling.cost_scope("extract"):
                extracted = self._extract_record(indicator_v)
            encrypted_results.append(extracted)

            # Step 3(e): obliviously set the chosen record's distance to max.
            if iteration < k - 1:
                with _profiling.cost_scope("eliminate"):
                    distance_bits = self._eliminate_selected(
                        indicator_v, distance_bits)

        # Steps 4-6 of Algorithm 5: deliver the k encrypted records to Bob.
        return self._deliver_records(encrypted_results)

    # -- helpers ---------------------------------------------------------------------
    def sub_cipher(self, left: Ciphertext, right: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction ``E(a - b)``."""
        return left + (right * (self.public_key.n - 1))

    def _p2_locate_minimum(self) -> None:
        """Step 3(c): C2 decrypts the permuted differences and replies with
        the encrypted indicator vector marking (one) minimum position."""
        c2 = self.cloud.c2
        received_beta = c2.receive(expected_tag="SkNNm.randomized_differences")
        decrypted = c2.decrypt_residue_batch(received_beta)
        indicator = self._build_indicator(decrypted)
        c2.send(indicator, tag="SkNNm.indicator")

    def _build_indicator(self, decrypted_differences: list[int]) -> list[Ciphertext]:
        """C2's step 3(c): encrypt a 1 at (one) zero position, 0 elsewhere.

        If several entries are zero (equal minimal distances) C2 picks one at
        random, exactly as the paper prescribes, so that exactly one record is
        extracted per iteration.
        """
        c2 = self.cloud.c2
        zero_positions = [idx for idx, value in enumerate(decrypted_differences)
                          if value == 0]
        if not zero_positions:
            raise ProtocolError(
                "SkNNm: no zero entry found while locating the minimum — "
                "the distance domain l is likely too small for the data"
            )
        chosen = c2.rng.choice(zero_positions)
        bits = [1 if idx == chosen else 0
                for idx in range(len(decrypted_differences))]
        engine = c2.engine
        if engine is not None:
            # All n indicator encryptions are of 0/1 — served straight from
            # C2's own constant pools when it runs an engine (the indicator
            # is C2's secret, so the pool randomness must be C2's too).
            return engine.encrypt_constants(bits)
        return c2.encrypt_batch(bits)

    def _extract_record(self, indicator: Sequence[Ciphertext]) -> list[Ciphertext]:
        """Step 3(d): ``E(t'_{s,j}) = prod_i SM(V_i, E(t_{i,j}))``.

        All ``n * m`` products of one iteration run through a single batched
        SM round; the per-attribute accumulation is unchanged.
        """
        table = self.encrypted_table
        dimensions = table.dimensions
        pairs = [
            (enc_indicator, record.ciphertexts[j])
            for enc_indicator, record in zip(indicator, table)
            for j in range(dimensions)
        ]
        products = self._sm.run_batch(pairs)
        accumulators: list[Ciphertext | None] = [None] * dimensions
        for index, product in enumerate(products):
            j = index % dimensions
            accumulators[j] = product if accumulators[j] is None \
                else accumulators[j] + product
        return [cipher for cipher in accumulators if cipher is not None]

    def _eliminate_selected(
        self, indicator: Sequence[Ciphertext],
        distance_bits: list[list[Ciphertext]],
    ) -> list[list[Ciphertext]]:
        """Step 3(e): OR every distance bit with the record's indicator bit.

        For the selected record (indicator 1) this sets all bits to 1, i.e.
        the maximum distance ``2**l - 1``; other records are unchanged.  All
        ``n * l`` ORs of an iteration form one batched SBOR round.
        """
        pairs = [
            (enc_indicator, bit)
            for enc_indicator, bits in zip(indicator, distance_bits)
            for bit in bits
        ]
        ored = self._sbor.run_batch(pairs)
        updated: list[list[Ciphertext]] = []
        position = 0
        for bits in distance_bits:
            updated.append(ored[position:position + len(bits)])
            position += len(bits)
        return updated
