"""Traffic and protocol statistics collected by the network substrate.

The paper's evaluation reports computation time only, but reproducing the
protocols faithfully also requires accounting for *what* is exchanged between
the two clouds: the number of messages, the number of ciphertexts, and the
total payload size.  These statistics also let tests verify the complexity
analysis of Section 4.4 (e.g. SM exchanges exactly three ciphertexts).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Accumulated statistics for one direction of a channel.

    Besides the four aggregate counters, traffic is attributed per message
    *tag* (``SM.masked_operands``, ``transport.query``, ...) so operators
    can see which protocol round dominates the wire.  The aggregate
    :meth:`snapshot` keeps its original four-key shape — run recorders
    subtract those dictionaries — and the per-tag view is a separate
    :meth:`per_tag_snapshot`.
    """

    messages: int = 0
    ciphertexts: int = 0
    plaintext_items: int = 0
    bytes_transferred: int = 0
    tag_messages: dict[str, int] = field(default_factory=dict)
    tag_bytes: dict[str, int] = field(default_factory=dict)

    def record(self, ciphertexts: int, plaintext_items: int,
               payload_bytes: int, tag: str = "") -> None:
        """Record one message with the given composition."""
        self.messages += 1
        self.ciphertexts += ciphertexts
        self.plaintext_items += plaintext_items
        self.bytes_transferred += payload_bytes
        self.tag_messages[tag] = self.tag_messages.get(tag, 0) + 1
        self.tag_bytes[tag] = self.tag_bytes.get(tag, 0) + payload_bytes

    def reset(self) -> None:
        """Zero all counters."""
        self.messages = 0
        self.ciphertexts = 0
        self.plaintext_items = 0
        self.bytes_transferred = 0
        self.tag_messages = {}
        self.tag_bytes = {}

    def snapshot(self) -> dict[str, int]:
        """Return the aggregate counters as a plain dictionary."""
        return {
            "messages": self.messages,
            "ciphertexts": self.ciphertexts,
            "plaintext_items": self.plaintext_items,
            "bytes_transferred": self.bytes_transferred,
        }

    def per_tag_snapshot(self) -> dict[str, dict[str, int]]:
        """``{tag: {"messages": m, "bytes": b}}``, sorted by tag."""
        return {
            tag: {"messages": self.tag_messages[tag],
                  "bytes": self.tag_bytes.get(tag, 0)}
            for tag in sorted(self.tag_messages)
        }

    def merged_with(self, other: "TrafficStats") -> "TrafficStats":
        """Return a new object with the element-wise sum of two stats."""
        tag_messages = dict(self.tag_messages)
        for tag, count in other.tag_messages.items():
            tag_messages[tag] = tag_messages.get(tag, 0) + count
        tag_bytes = dict(self.tag_bytes)
        for tag, count in other.tag_bytes.items():
            tag_bytes[tag] = tag_bytes.get(tag, 0) + count
        return TrafficStats(
            messages=self.messages + other.messages,
            ciphertexts=self.ciphertexts + other.ciphertexts,
            plaintext_items=self.plaintext_items + other.plaintext_items,
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
            tag_messages=tag_messages,
            tag_bytes=tag_bytes,
        )


@dataclass
class ProtocolRunStats:
    """Statistics of one end-to-end protocol execution.

    Combines the crypto-operation counters of both parties with the channel
    traffic, plus the wall-clock time measured by the runner.  This is the
    record the benchmark harness serializes for every experiment row.
    """

    protocol: str = ""
    wall_time_seconds: float = 0.0
    c1_encryptions: int = 0
    c1_exponentiations: int = 0
    c1_homomorphic_additions: int = 0
    c2_encryptions: int = 0
    c2_decryptions: int = 0
    c2_exponentiations: int = 0
    messages: int = 0
    ciphertexts_exchanged: int = 0
    bytes_transferred: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_encryptions(self) -> int:
        """Total encryptions across both clouds."""
        return self.c1_encryptions + self.c2_encryptions

    @property
    def total_exponentiations(self) -> int:
        """Total ciphertext exponentiations across both clouds."""
        return self.c1_exponentiations + self.c2_exponentiations

    @property
    def total_decryptions(self) -> int:
        """Total decryptions (only C2 can decrypt)."""
        return self.c2_decryptions

    def as_row(self) -> dict[str, float]:
        """Flatten into a single dictionary suitable for tabular reporting."""
        row: dict[str, float] = {
            "protocol": self.protocol,
            "wall_time_seconds": self.wall_time_seconds,
            "encryptions": self.total_encryptions,
            "decryptions": self.total_decryptions,
            "exponentiations": self.total_exponentiations,
            "messages": self.messages,
            "ciphertexts_exchanged": self.ciphertexts_exchanged,
            "bytes_transferred": self.bytes_transferred,
        }
        row.update(self.extra)
        return row

    def as_payload(self) -> dict[str, object]:
        """Lossless field-by-field dictionary (the wire form of the stats)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, data: dict[str, object]) -> "ProtocolRunStats":
        """Rebuild from :meth:`as_payload` output (e.g. off the wire)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in fields})
