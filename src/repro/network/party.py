"""Party abstractions for the two-cloud (federated cloud) setting.

The paper assumes two non-colluding semi-honest cloud providers:

* **C1** stores the attribute-wise encrypted database ``Epk(T)`` and performs
  the bulk of the homomorphic computation.  It knows only the public key.
* **C2** holds the Paillier secret key ``sk`` and assists C1 by decrypting
  carefully randomized intermediate values.

Within the secure sub-protocols of Section 3 the same two roles are called
``P1`` and ``P2``; this module provides both naming conventions on top of the
same classes.  All inter-party data flow goes through a
:class:`~repro.network.channel.DuplexChannel` so the transcript and traffic of
every protocol execution can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from repro.crypto.precompute import PrecomputeEngine

from repro.crypto.paillier import (
    Ciphertext,
    OperationCounter,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.exceptions import ConfigurationError
from repro.network.channel import DuplexChannel
from repro.network.latency import LatencyModel

__all__ = ["Party", "EvaluatorParty", "DecryptorParty", "TwoPartySetting"]


class Party:
    """A named protocol participant bound to a public key and a channel."""

    def __init__(self, name: str, public_key: PaillierPublicKey,
                 channel: DuplexChannel, rng: Random | None = None) -> None:
        self.name = name
        self.public_key = public_key
        self.channel = channel
        self.rng = rng if rng is not None else Random()
        #: optional precomputation engine owned by *this* party (set through
        #: :meth:`TwoPartySetting.attach_engine`).  Pools are filled with the
        #: owning party's randomness, so engines are never shared across the
        #: trust boundary: protocols source P1 material from the evaluator's
        #: engine and P2 material from the decryptor's.
        self.engine: "PrecomputeEngine | None" = None
        if name not in (channel.endpoint_a, channel.endpoint_b):
            raise ConfigurationError(
                f"party {name!r} is not an endpoint of the supplied channel"
            )

    # -- messaging ----------------------------------------------------------
    def send(self, payload: object, tag: str = "") -> None:
        """Send ``payload`` to the opposite endpoint of the channel."""
        self.channel.send(self.name, payload, tag)

    def receive(self, expected_tag: str | None = None) -> object:
        """Receive the next message addressed to this party."""
        return self.channel.receive(self.name, expected_tag)

    # -- crypto helpers -------------------------------------------------------
    @property
    def counter(self) -> OperationCounter:
        """The operation counter of the public key this party uses."""
        return self.public_key.counter

    def random_nonzero(self) -> int:
        """Uniform random value in ``[1, N)`` (the paper's ``r in_R Z_N``).

        Random masks must be non-zero: a zero mask would make a "randomized"
        difference reveal the true value with certainty.
        """
        return self.rng.randrange(1, self.public_key.n)

    def random_in_zn(self) -> int:
        """Uniform random value in ``[0, N)``."""
        return self.rng.randrange(self.public_key.n)

    def encrypt(self, value: int) -> Ciphertext:
        """Encrypt a signed integer under the shared public key.

        When this party owns a precomputation engine, the obfuscation factor
        comes from the engine's pool (one hot-path multiplication).
        """
        if self.engine is not None:
            return self.engine.encrypt(value)
        return self.public_key.encrypt(value, rng=self.rng)

    def encrypt_batch(self, values: "list[int]") -> "list[Ciphertext]":
        """Vectorized encryption with this party's randomness source.

        Obfuscators come from this party's engine pool when one is attached,
        then from the key's fixed-base window table (see
        :meth:`~repro.crypto.paillier.PaillierPublicKey.encrypt_batch`).
        """
        pool = self.engine.obfuscators if self.engine is not None else None
        return self.public_key.encrypt_batch(values, rng=self.rng, pool=pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class EvaluatorParty(Party):
    """The party that evaluates over ciphertexts but cannot decrypt (C1/P1)."""


class DecryptorParty(Party):
    """The party that holds the Paillier secret key (C2/P2)."""

    def __init__(self, name: str, private_key: PaillierPrivateKey,
                 channel: DuplexChannel, rng: Random | None = None) -> None:
        super().__init__(name, private_key.public_key, channel, rng)
        self.private_key = private_key
        #: optional override for where decrypted result shares go (the C2
        #: daemon points this at its client-facing share mailbox); ``None``
        #: keeps them in-process for the simulated runtime.
        self.share_sink = None
        self._deliveries: dict[int, list[list[int]]] = {}

    # -- result-share delivery (steps 4-6 of Algorithm 5) ---------------------
    def deliver_share(self, delivery_id: int,
                      masked_values: "list[list[int]]") -> None:
        """Hand the decrypted masked result values to Bob.

        In the paper C2 sends these directly to the query user on a separate
        link.  The simulated runtime stores them for the driver to collect
        (:meth:`take_delivery`); a daemon overrides :attr:`share_sink` so the
        share lands in the mailbox its Bob clients fetch from over TCP.
        """
        if self.share_sink is not None:
            self.share_sink(delivery_id, masked_values)
            return
        self._deliveries[delivery_id] = masked_values

    def take_delivery(self, delivery_id: int) -> "list[list[int]]":
        """Collect (and forget) a share stored by :meth:`deliver_share`."""
        try:
            return self._deliveries.pop(delivery_id)
        except KeyError:
            raise ConfigurationError(
                f"no result share stored under delivery id {delivery_id}"
            ) from None

    def decrypt_signed(self, ciphertext: Ciphertext) -> int:
        """Decrypt with signed decoding (values above N/2 read as negative)."""
        return self.private_key.decrypt(ciphertext)

    def decrypt_residue(self, ciphertext: Ciphertext) -> int:
        """Decrypt to the raw residue in ``[0, N)`` (no signed decoding)."""
        return self.private_key.decrypt_raw_residue(ciphertext)

    def decrypt_residue_batch(self, ciphertexts: "list[Ciphertext]") -> "list[int]":
        """Vectorized decryption to raw residues (no signed decoding)."""
        return self.private_key.decrypt_residue_batch(ciphertexts)


@dataclass
class TwoPartySetting:
    """The standard two-party environment used by every protocol in the paper.

    Bundles the evaluator (C1), the decryptor (C2) and their shared channel.
    Construct it with :meth:`create` from a key pair; protocol classes then
    take a ``TwoPartySetting`` instead of loose parties, which keeps call
    sites short and guarantees both parties share one channel.
    """

    evaluator: EvaluatorParty
    decryptor: DecryptorParty
    channel: DuplexChannel

    @classmethod
    def create(cls, keypair: PaillierKeyPair, rng: Random | None = None,
               evaluator_name: str = "C1", decryptor_name: str = "C2",
               latency_model: LatencyModel | None = None) -> "TwoPartySetting":
        """Build a fresh two-party setting from a Paillier key pair.

        Args:
            keypair: the key pair; the public part goes to both parties, the
                private part only to the decryptor.
            rng: optional deterministic randomness source shared by both
                parties' protocol masks (tests only).
            evaluator_name: channel endpoint name for C1.
            decryptor_name: channel endpoint name for C2.
            latency_model: optional network latency model for the channel.
        """
        channel = DuplexChannel(evaluator_name, decryptor_name, latency_model)
        evaluator_rng = rng
        decryptor_rng = Random(rng.random()) if rng is not None else None
        evaluator = EvaluatorParty(evaluator_name, keypair.public_key, channel,
                                   evaluator_rng)
        decryptor = DecryptorParty(decryptor_name, keypair.private_key, channel,
                                   decryptor_rng)
        return cls(evaluator=evaluator, decryptor=decryptor, channel=channel)

    @property
    def public_key(self) -> PaillierPublicKey:
        """The shared Paillier public key."""
        return self.evaluator.public_key

    @property
    def engine(self) -> "PrecomputeEngine | None":
        """The evaluator's (P1's) precomputation engine (or ``None``).

        Stored on the party objects so that every ``TwoPartySetting`` view
        of the same deployment (they are constructed on the fly) resolves to
        the same engines, regardless of attachment order.
        """
        return self.evaluator.engine

    def attach_engine(self, engine: "PrecomputeEngine | None",
                      decryptor_engine: "PrecomputeEngine | None" = None
                      ) -> None:
        """Attach per-party precomputation engines to this deployment.

        ``engine`` becomes the evaluator's (P1's) source of mask tuples and
        constants; ``decryptor_engine`` (optional) the decryptor's (P2's)
        source for its re-encryptions and parity/alpha/indicator constants.
        The two are kept separate on purpose: each party's pools hold that
        party's own randomness, matching the paper's non-colluding model —
        a missing decryptor engine simply means P2 encrypts inline.  Pass
        ``None`` (twice) to detach.
        """
        for party, new_engine in ((self.evaluator, engine),
                                  (self.decryptor, decryptor_engine)):
            previous = party.engine
            if previous is not None and previous is not new_engine:
                previous.detach()
            party.engine = new_engine

    def reset_counters(self) -> None:
        """Reset crypto-operation counters and channel accounting."""
        self.evaluator.public_key.counter.reset()
        self.decryptor.private_key.counter.reset()
        self.channel.reset_accounting()
