"""Network substrate: channels, parties, traffic statistics, latency models.

The paper's two non-colluding clouds are modeled as two party objects that
exchange all data through a counted in-memory channel, preserving the protocol
transcript while remaining testable inside one process.
"""

from repro.network.channel import DuplexChannel, Message, message_wire_size
from repro.network.latency import (
    BandwidthLatency,
    FixedLatency,
    LatencyModel,
    ZeroLatency,
)
from repro.network.party import (
    DecryptorParty,
    EvaluatorParty,
    Party,
    TwoPartySetting,
)
from repro.network.stats import ProtocolRunStats, TrafficStats

__all__ = [
    "DuplexChannel",
    "Message",
    "message_wire_size",
    "LatencyModel",
    "ZeroLatency",
    "FixedLatency",
    "BandwidthLatency",
    "Party",
    "EvaluatorParty",
    "DecryptorParty",
    "TwoPartySetting",
    "TrafficStats",
    "ProtocolRunStats",
]
