"""In-memory duplex channel between the two cloud parties.

Protocol implementations never hand Python objects from one party to the
other directly: every value crosses a :class:`DuplexChannel`, which

* counts messages, ciphertexts and payload bytes in both directions,
* accumulates simulated network delay according to a
  :class:`~repro.network.latency.LatencyModel`, and
* enforces FIFO ordering so the transcript of a protocol run is well defined.

This is the reproduction's substitute for the paper's two cloud processes: it
preserves the protocol transcript (the sequence and content of exchanged
messages) while keeping everything testable inside one Python process.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.crypto.paillier import Ciphertext
from repro.crypto.serialization import (
    FRAME_HEADER_BYTES,
    message_envelope_to_bytes,
)
from repro.exceptions import ChannelError, SerializationError
from repro.network.latency import LatencyModel, ZeroLatency
from repro.network.stats import TrafficStats
from repro.telemetry import tracing as _tracing

__all__ = ["Message", "DuplexChannel", "message_wire_size"]


def _ambient_trace_context() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)`` pair, or ``None`` (common case).

    Both transports stamp outgoing messages identically, so byte accounting
    stays comparable between in-memory and TCP runs whether or not a trace
    is active.
    """
    context = _tracing.current_wire_context()
    return (context[0], context[1]) if context else None


@dataclass(frozen=True)
class Message:
    """A single message on the wire.

    Attributes:
        sender: logical name of the sending party (e.g. ``"C1"``).
        recipient: logical name of the receiving party.
        tag: protocol-defined label describing the payload (useful when
            inspecting transcripts in tests, e.g. ``"SM.masked_operands"``).
        payload: the transported value; may be a ciphertext, an integer, or a
            (possibly nested) list/tuple of those.
        trace: optional ``(trace_id, span_id)`` distributed-tracing context
            stamped on the envelope while a query trace is active.
        context: optional query-context id stamped on frames that belong to
            one of several pipelined in-flight queries sharing a connection
            (``None`` on the in-memory channel and plain TCP channels).
    """

    sender: str
    recipient: str
    tag: str
    payload: Any
    trace: tuple[str, str] | None = None
    context: str | None = None


def _count_payload(payload: Any) -> tuple[int, int]:
    """Return ``(ciphertexts, plaintext_items)`` for a payload."""
    if isinstance(payload, Ciphertext):
        return 1, 0
    if isinstance(payload, bool):
        return 0, 1
    if isinstance(payload, (int, float)):
        return 0, 1
    if isinstance(payload, (list, tuple)):
        ciphertexts = plaintexts = 0
        for item in payload:
            c, p = _count_payload(item)
            ciphertexts += c
            plaintexts += p
        return ciphertexts, plaintexts
    if isinstance(payload, dict):
        return _count_payload(list(payload.values()))
    if payload is None:
        return 0, 0
    if isinstance(payload, str):
        return 0, 1
    raise ChannelError(f"unsupported payload type on channel: {type(payload).__name__}")


def message_wire_size(message: Message) -> int:
    """Exact bytes ``message`` occupies on the TCP transport.

    The in-memory channel accounts its traffic with the same wire codec the
    :mod:`repro.transport` TCP framing uses (envelope JSON plus the 4-byte
    length prefix), so ``bytes_transferred`` is directly comparable between
    a simulated run and a distributed one.
    """
    try:
        body = message_envelope_to_bytes(
            message.sender, message.recipient, message.tag, message.payload,
            trace=message.trace, context=message.context)
    except SerializationError as exc:
        raise ChannelError(str(exc)) from exc
    return FRAME_HEADER_BYTES + len(body)


class DuplexChannel:
    """Bidirectional FIFO channel between two named endpoints.

    The channel is deliberately synchronous: a ``send`` enqueues a message and
    the matching ``receive`` dequeues it.  Protocol drivers interleave the two
    parties' steps in program order, which produces exactly the transcript a
    real sequential execution of the two-party protocol would produce.
    """

    #: Both endpoints live in this process, so protocol drivers must execute
    #: the remote party's steps inline (``p2_step`` dispatch).  The TCP
    #: transport's channel sets this ``False``: there the opposite endpoint
    #: is a separate OS process running its own steps.
    runs_both_parties = True

    def __init__(self, endpoint_a: str = "C1", endpoint_b: str = "C2",
                 latency_model: LatencyModel | None = None) -> None:
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self._queues: dict[str, deque[Message]] = {
            endpoint_a: deque(),
            endpoint_b: deque(),
        }
        self._latency_model = latency_model or ZeroLatency()
        #: traffic statistics per sending endpoint
        self.traffic: dict[str, TrafficStats] = {
            endpoint_a: TrafficStats(),
            endpoint_b: TrafficStats(),
        }
        #: total simulated network delay accumulated so far (seconds)
        self.simulated_delay_seconds = 0.0
        #: full transcript of every message sent (used by security tests)
        self.transcript: list[Message] = []

    # -- helpers ------------------------------------------------------------
    def _other(self, endpoint: str) -> str:
        if endpoint == self.endpoint_a:
            return self.endpoint_b
        if endpoint == self.endpoint_b:
            return self.endpoint_a
        raise ChannelError(f"unknown endpoint {endpoint!r}")

    # -- primary API ----------------------------------------------------------
    def send(self, sender: str, payload: Any, tag: str = "") -> None:
        """Send ``payload`` from ``sender`` to the opposite endpoint."""
        recipient = self._other(sender)
        message = Message(sender=sender, recipient=recipient, tag=tag,
                          payload=payload,
                          trace=_ambient_trace_context())
        ciphertexts, plaintexts = _count_payload(payload)
        size = message_wire_size(message)
        self.traffic[sender].record(ciphertexts, plaintexts, size, tag=tag)
        self.simulated_delay_seconds += self._latency_model.delay_for_message(size)
        self._queues[recipient].append(message)
        self.transcript.append(message)

    def receive(self, recipient: str, expected_tag: str | None = None) -> Any:
        """Receive the next pending message addressed to ``recipient``.

        Args:
            recipient: the endpoint reading its inbox.
            expected_tag: optional tag check; a mismatch indicates a protocol
                implementation bug and raises :class:`ChannelError`.
        """
        if recipient not in self._queues:
            raise ChannelError(f"unknown endpoint {recipient!r}")
        queue = self._queues[recipient]
        if not queue:
            raise ChannelError(f"no pending message for {recipient!r}")
        message = queue.popleft()
        if expected_tag is not None and message.tag != expected_tag:
            raise ChannelError(
                f"expected message tagged {expected_tag!r} but got {message.tag!r}"
            )
        return message.payload

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages waiting for ``recipient``."""
        if recipient not in self._queues:
            raise ChannelError(f"unknown endpoint {recipient!r}")
        return len(self._queues[recipient])

    # -- accounting -----------------------------------------------------------
    def total_traffic(self) -> TrafficStats:
        """Aggregate traffic over both directions."""
        a = self.traffic[self.endpoint_a]
        b = self.traffic[self.endpoint_b]
        return a.merged_with(b)

    def reset_accounting(self) -> None:
        """Clear traffic statistics and the transcript (queues must be empty)."""
        for queue in self._queues.values():
            if queue:
                raise ChannelError("cannot reset accounting with undelivered messages")
        for stats in self.traffic.values():
            stats.reset()
        self.simulated_delay_seconds = 0.0
        self.transcript.clear()

    def transcript_payloads(self, sender: str | None = None) -> Iterable[Any]:
        """Yield payloads from the transcript, optionally filtered by sender.

        Security tests use this to assert that everything a party ever sees on
        the wire is either a ciphertext or a value that is (statistically)
        independent of the private inputs.
        """
        for message in self.transcript:
            if sender is None or message.sender == sender:
                yield message.payload
