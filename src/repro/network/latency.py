"""Latency and bandwidth models for the simulated federated cloud.

The paper runs both cloud parties on a single machine, so network delay does
not appear in its measurements.  Real deployments of the protocol pay one
round-trip per interactive step, and the number of rounds differs hugely
between SkNN_b and SkNN_m.  To let users explore that dimension, the channel
accepts a :class:`LatencyModel` that converts the recorded traffic into a
simulated network delay, which the benchmark harness can add to (or keep
separate from) the computation time.

The default model is :class:`ZeroLatency`, matching the paper's single-machine
setup.
"""

from __future__ import annotations

from dataclasses import dataclass


class LatencyModel:
    """Interface: convert a message of ``payload_bytes`` into seconds of delay."""

    def delay_for_message(self, payload_bytes: int) -> float:
        """Return the one-way delay in seconds for a message of this size."""
        raise NotImplementedError


@dataclass(frozen=True)
class ZeroLatency(LatencyModel):
    """No network delay — both clouds co-located (the paper's setting)."""

    def delay_for_message(self, payload_bytes: int) -> float:
        return 0.0


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant per-message delay regardless of size (pure RTT/2 model)."""

    seconds_per_message: float = 0.001

    def delay_for_message(self, payload_bytes: int) -> float:
        return self.seconds_per_message


@dataclass(frozen=True)
class BandwidthLatency(LatencyModel):
    """Delay composed of a fixed per-message cost plus a bandwidth term.

    ``delay = latency + payload_bytes / bandwidth``; the defaults model a
    1 ms one-way delay on a 1 Gbit/s link between two cloud datacenters.
    """

    latency_seconds: float = 0.001
    bandwidth_bytes_per_second: float = 125_000_000.0

    def delay_for_message(self, payload_bytes: int) -> float:
        return self.latency_seconds + payload_bytes / self.bandwidth_bytes_per_second
