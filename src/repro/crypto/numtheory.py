"""Number-theoretic primitives used by the Paillier cryptosystem.

The paper's protocols rely on a semantically secure additively homomorphic
cryptosystem (Paillier).  Because this reproduction must run offline without
``phe`` or ``gmpy2``, the required number theory is implemented here from
scratch on top of Python's arbitrary-precision integers:

* probabilistic primality testing (Miller--Rabin with deterministic witness
  sets for small inputs),
* random prime generation,
* modular inverse via the extended Euclidean algorithm,
* least common multiple, integer square root, and
* cryptographically secure random sampling from ``Z_N`` and ``Z_N^*``.

All functions operate on plain ``int`` values and are deterministic given an
explicitly supplied random generator, which keeps the higher-level protocol
tests reproducible.
"""

from __future__ import annotations

import secrets
from random import Random
from typing import Iterable

from repro.crypto.backend import get_backend
from repro.exceptions import CryptoError

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_prime_pair",
    "egcd",
    "modinv",
    "lcm",
    "isqrt",
    "random_below",
    "random_in_zn",
    "random_in_zn_star",
    "crt_combine",
    "bit_length_of_product",
]

# Deterministic Miller-Rabin witness set: testing against these bases is
# sufficient for all integers below 3.3 * 10**24, which covers every small
# factor check we perform; larger candidates additionally get random bases.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
)

_DETERMINISTIC_WITNESSES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """Return ``True`` if ``n`` passes one Miller--Rabin round with base ``a``."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: Random | None = None) -> bool:
    """Decide whether ``n`` is prime with negligible error probability.

    Uses trial division by a table of small primes followed by Miller--Rabin.
    For candidates below 3.3e24 the deterministic witness set makes the answer
    exact; above that the error probability is at most ``4**-rounds``.

    Args:
        n: candidate integer (any size).
        rounds: number of random Miller--Rabin rounds for large candidates.
        rng: optional deterministic source for the random witnesses.  When
            omitted, :mod:`secrets` is used.

    Returns:
        ``True`` if ``n`` is (probably) prime.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for a in _DETERMINISTIC_WITNESSES:
        if a >= n:
            continue
        if not _miller_rabin_round(n, a, d, r):
            return False
    if n < 3_317_044_064_679_887_385_961_981:
        return True

    for _ in range(rounds):
        if rng is None:
            a = secrets.randbelow(n - 3) + 2
        else:
            a = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def random_below(bound: int, rng: Random | None = None) -> int:
    """Return a uniform random integer in ``[0, bound)``.

    Args:
        bound: exclusive upper bound, must be positive.
        rng: optional deterministic :class:`random.Random`; when omitted a
            cryptographically secure source is used.
    """
    if bound <= 0:
        raise CryptoError(f"random_below requires a positive bound, got {bound}")
    if rng is None:
        return secrets.randbelow(bound)
    return rng.randrange(bound)


def generate_prime(bits: int, rng: Random | None = None, max_attempts: int = 100_000) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The candidate always has its top bit and lowest bit set, so the product of
    two ``bits``-bit primes has either ``2*bits`` or ``2*bits - 1`` bits.

    Args:
        bits: bit length of the prime (>= 8).
        rng: optional deterministic randomness source (used by tests).
        max_attempts: safety bound on the number of candidates examined.

    Raises:
        CryptoError: if no prime is found within ``max_attempts`` candidates.
    """
    if bits < 8:
        raise CryptoError(f"prime bit length must be >= 8, got {bits}")
    for _ in range(max_attempts):
        candidate = random_below(1 << bits, rng)
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise CryptoError(f"failed to find a {bits}-bit prime after {max_attempts} attempts")


def generate_prime_pair(
    bits: int, rng: Random | None = None
) -> tuple[int, int]:
    """Generate two distinct primes ``p != q`` each of ``bits // 2`` bits.

    Used by Paillier key generation where ``N = p * q`` should have roughly
    ``bits`` bits.  The pair is rejected and regenerated when ``p == q`` or
    when ``gcd(p*q, (p-1)*(q-1)) != 1`` (which Paillier requires).

    Args:
        bits: target modulus size in bits (must be even and >= 16).
        rng: optional deterministic randomness source.
    """
    if bits < 16 or bits % 2 != 0:
        raise CryptoError(f"modulus bit length must be an even number >= 16, got {bits}")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if egcd(n, (p - 1) * (q - 1))[0] != 1:
            continue
        return p, q


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns:
        A tuple ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modinv(a: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``modulus``.

    Routed through the active bigint backend (C-level inversion on CPython,
    GMP when :mod:`gmpy2` is importable) — the extended-Euclid
    implementation above remains as the reference algorithm and for the
    Bezout coefficients.

    Raises:
        CryptoError: if ``a`` is not invertible modulo ``modulus``.
    """
    return get_backend().invert(a % modulus, modulus)


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a == 0 or b == 0:
        return 0
    g, _, _ = egcd(a, b)
    return abs(a // g * b)


def isqrt(n: int) -> int:
    """Integer square root (floor) of a non-negative integer."""
    if n < 0:
        raise CryptoError("isqrt of a negative number is undefined")
    if n < 2:
        return n
    x = 1 << ((n.bit_length() + 1) // 2)
    while True:
        y = (x + n // x) // 2
        if y >= x:
            return x
        x = y


def random_in_zn(n: int, rng: Random | None = None) -> int:
    """Sample a uniform element of ``Z_N`` (i.e. ``[0, N)``)."""
    return random_below(n, rng)


def random_in_zn_star(n: int, rng: Random | None = None, max_attempts: int = 1000) -> int:
    """Sample a uniform element of ``Z_N^*`` (units modulo ``N``).

    For an RSA-like modulus the rejection probability is negligible, so a
    small bounded number of attempts suffices.
    """
    for _ in range(max_attempts):
        candidate = random_below(n - 1, rng) + 1
        if egcd(candidate, n)[0] == 1:
            return candidate
    raise CryptoError(f"could not sample an invertible element modulo {n}")


def crt_combine(residues: Iterable[int], moduli: Iterable[int]) -> int:
    """Combine residues with the Chinese Remainder Theorem.

    Args:
        residues: remainders ``r_i``.
        moduli: pairwise coprime moduli ``m_i``.

    Returns:
        The unique ``x`` modulo ``prod(m_i)`` with ``x == r_i (mod m_i)``.
    """
    residues = list(residues)
    moduli = list(moduli)
    if len(residues) != len(moduli) or not residues:
        raise CryptoError("crt_combine requires equally sized, non-empty inputs")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, m_i)
        if g != 1:
            raise CryptoError("crt_combine requires pairwise coprime moduli")
        diff = (r_i - x) % m_i
        x = (x + m * ((diff * p) % m_i)) % (m * m_i)
        m *= m_i
    return x


def bit_length_of_product(*factors: int) -> int:
    """Bit length of the product of the given positive integers.

    A convenience used when validating that protocol domains (``2**l``) fit in
    the plaintext space ``Z_N`` with room for the random masks.
    """
    product = 1
    for f in factors:
        product *= f
    return product.bit_length()
