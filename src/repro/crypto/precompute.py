"""Offline/online split: a precomputation engine for the query hot path.

Almost every modular exponentiation the SkNN protocols perform is independent
of the query: obfuscation factors ``r^N mod N^2``, encryptions of protocol
constants (``E(0)``, ``E(1)``, ``E(2^i)``), and the random additive masks the
SM/SBD/SMIN rounds encrypt before handing values to C2.  A serving system can
therefore compute all of that in *idle time* and reduce the online cost of a
query to decryptions, the few genuinely query-dependent exponentiations, and
modular multiplications.

:class:`PrecomputeEngine` is that producer/consumer boundary.  It owns typed
pools:

* **obfuscators** — single-use ``r^N`` factors (a
  :class:`~repro.crypto.randomness_pool.RandomnessPool`); attached to the
  public key so *every* ``raw_encrypt``/``encrypt_batch`` call in the
  deployment consumes them transparently;
* **constants** — ready ciphertexts of 0, 1 and (optionally) powers of two
  ``E(2^i)``, for SBD parity bits, SMIN's ``H_0``/``alpha``, SkNN_m's
  indicator vectors and bit-recomposition helpers;
* **mask tuples** — pairs ``(r, E(r))`` with ``r`` drawn from the range a
  protocol needs (``Z_N`` for SM/SSED/delivery masks, ``Z_N^*`` for SMIN's
  ``rhat``, ``[0, N - 2^l)`` for SBD), fully materialized offline so taking a
  mask costs *zero* hot-path multiplications.

Every pooled item is handed out **exactly once**; a drained pool falls back
to fresh randomness (never reuse), counting a miss.  Consuming a pooled
ciphertext advances the key's :class:`~repro.crypto.paillier.
OperationCounter` exactly like the non-pooled path would, so operation
accounting (and the Section 4.4 cost model) stays comparable — the pools'
hit counters record how many of those logical operations were actually paid
offline.  The engine's own ``offline`` counter records the precomputation
work (one ``r^N`` exponentiation per pooled item).

Producers: call :meth:`refill` from any idle-time hook (the serving layer's
scheduler does this between batches), or :meth:`start_producer` for a
background thread that keeps the pools topped up.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import deque
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from pathlib import Path

from repro.crypto.backend import get_backend
from repro.crypto.paillier import (
    Ciphertext,
    OperationCounter,
    PaillierPublicKey,
)
from repro.crypto.randomness_pool import RandomnessPool
from repro.exceptions import ConfigurationError

__all__ = ["PrecomputeConfig", "PrecomputeEngine", "MASK_ZN", "MASK_NONZERO",
           "MASK_SBD"]

#: version of the on-disk pool cache format (see
#: :meth:`PrecomputeEngine.save_pools`)
_POOL_CACHE_VERSION = 1

#: Mask-tuple kinds (the sampling range each protocol requires).
MASK_ZN = "zn"            # r uniform in [0, N)      — SM, SSED, delivery
MASK_NONZERO = "nonzero"  # r uniform in [1, N)      — SMIN's rhat
MASK_SBD = "sbd"          # r uniform in [0, N - 2^l) — SBD round masks


@dataclass(frozen=True)
class PrecomputeConfig:
    """Target sizes of every typed pool (and the refill batch granularity).

    The defaults suit a small serving deployment; size them from the
    workload with :meth:`for_query_load`.
    """

    obfuscators: int = 256
    zeros: int = 32
    ones: int = 32
    #: height of the powers-of-two table (``E(2^i)`` for ``i < power_bits``);
    #: 0 disables the table.
    power_bits: int = 0
    powers_each: int = 4
    zn_masks: int = 128
    nonzero_masks: int = 0
    #: the SBD domain parameter ``l``; None disables the SBD mask pool.
    sbd_bit_length: int | None = None
    sbd_masks: int = 0
    #: largest number of items one :meth:`PrecomputeEngine.refill` call
    #: computes before re-checking deficits (keeps idle-slot refills short).
    refill_batch: int = 64

    @classmethod
    def for_query_load(cls, n_records: int, dimensions: int, k: int,
                       queries: int = 1,
                       sbd_bit_length: int | None = None,
                       worker_scan: bool = False) -> "PrecomputeConfig":
        """Evaluator-side (P1/C1) pool sizes covering ``queries`` warm queries.

        Per SkNN_b query P1 consumes ``n*m + k*m`` mask tuples (scan masks +
        delivery masks) plus a few obfuscators for fallbacks; the SBD/SMIN
        pools are sized only when ``l`` is given (SkNN_m workloads).  The
        powers-of-two table is *not* warmed here — no protocol consumes it
        yet (it backs the ciphertext-packing follow-up); configure
        ``power_bits`` explicitly to warm it.

        With ``worker_scan=True`` (the parallel/sharded modes, whose chunk
        workers sample their own scan masks and draw obfuscator *slices*
        instead of mask tuples) the mask pool covers only the delivery phase
        and the obfuscator pool is sized for the worker slices —
        ``2*n*m`` factors per query, one mask and one square encryption per
        (record, attribute) pair.

        The decryptor's material (re-encryptions of squares, parity/alpha/
        indicator constants) is sized by :meth:`for_decryptor_load` — in the
        paper's model each cloud precomputes with its *own* randomness.
        """
        scan_masks = 0 if worker_scan else n_records * dimensions
        per_query_masks = scan_masks + k * dimensions
        slice_factors = (2 * n_records * dimensions if worker_scan else 0)
        bits = sbd_bit_length or 0
        return cls(
            obfuscators=(slice_factors + 2 * dimensions) * queries + 16,
            zeros=8,
            ones=(bits * n_records * queries // 2 + 8 if bits else 8),
            zn_masks=per_query_masks * queries,
            nonzero_masks=(bits * n_records * queries if bits else 0),
            sbd_bit_length=sbd_bit_length,
            sbd_masks=(bits * n_records * queries if bits else 0),
        )

    @classmethod
    def for_decryptor_load(cls, n_records: int, dimensions: int, k: int,
                           queries: int = 1,
                           sbd_bit_length: int | None = None
                           ) -> "PrecomputeConfig":
        """Decryptor-side (P2/C2) pool sizes covering ``queries`` queries.

        P2's precomputable work is the obfuscators of its re-encryptions
        (``n*m`` squared-difference re-encryptions per SkNN_b scan, plus the
        SM products of SkNN_m rounds) and the 0/1 constant pools backing the
        SBD parity bits, SMIN's ``alpha`` and SkNN_m's indicator vectors.
        """
        bits = sbd_bit_length or 0
        per_query_obf = n_records * dimensions
        if bits:
            per_query_obf += 2 * bits * n_records
        constants = ((bits // 2 + 1) * n_records * queries if bits else 16)
        return cls(
            obfuscators=per_query_obf * queries,
            zeros=constants,
            ones=constants,
            zn_masks=0,
        )


class PrecomputeEngine:
    """Typed pools of precomputed Paillier material with offline accounting.

    An engine belongs to *one* party: its pools are filled with that party's
    randomness, so in the paper's two-cloud model C1 and C2 each run their
    own engine (see :meth:`~repro.network.party.TwoPartySetting.
    attach_engine`).  Handing one party material precomputed by the other
    would let the producer link or unmask the consumer's ciphertexts.

    Args:
        public_key: the deployment's Paillier public key.
        rng: optional deterministic randomness source (tests only).
        config: pool targets; defaults to :class:`PrecomputeConfig`.
        attach: when ``True`` the obfuscator pool is additionally attached
            to the public key, so *every* batch/scalar encryption under the
            key consumes it transparently.  Off by default — key-level
            attachment is only appropriate when a single party performs all
            encryptions under the key (e.g. a client session), because the
            key object is shared across parties.
    """

    def __init__(self, public_key: PaillierPublicKey,
                 rng: Random | None = None,
                 config: PrecomputeConfig | None = None,
                 attach: bool = False) -> None:
        self.public_key = public_key
        self.rng = rng
        self.config = config if config is not None else PrecomputeConfig()
        if self.config.sbd_masks and not self.config.sbd_bit_length:
            raise ConfigurationError(
                "sbd_masks requires sbd_bit_length to be set")
        self.obfuscators = RandomnessPool(
            public_key, size=max(self.config.obfuscators, 1), rng=rng,
            precompute=False)
        self._lock = threading.Lock()
        # Counters get their own lock so hit/miss/offline bookkeeping is
        # race-free without holding the pool lock during fallback work.
        self._stats_lock = threading.Lock()
        # One producer at a time: serializes refills so two concurrent
        # producers cannot both observe the same deficit and overfill.
        self._refill_lock = threading.Lock()
        self._constants: dict[int, deque[int]] = {}
        self._masks: dict[str, deque[tuple[int, int]]] = {
            MASK_ZN: deque(), MASK_NONZERO: deque(), MASK_SBD: deque(),
        }
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}
        #: offline work performed by refills — one encryption (i.e. one
        #: ``r^N`` exponentiation) per pooled item.
        self.offline = OperationCounter()
        self._producer: threading.Thread | None = None
        self._producer_stop = threading.Event()
        if attach:
            self.attach()

    # -- attachment ----------------------------------------------------------
    def attach(self) -> None:
        """Attach the obfuscator pool to the public key (idempotent)."""
        self.public_key.attach_randomness_pool(self.obfuscators)

    def detach(self) -> None:
        """Detach the obfuscator pool from the public key."""
        if self.public_key.attached_pool is self.obfuscators:
            self.public_key.attach_randomness_pool(None)

    # -- offline production ---------------------------------------------------
    def _fresh_factor(self) -> int:
        # One recipe for r^N factors across the code base (the pool's).
        return self.obfuscators._fresh_factor()

    def _raw_constant(self, value: int) -> int:
        """A fresh single-use raw ciphertext of ``value`` (one factor)."""
        pk = self.public_key
        encoded = pk.encode_signed(value)
        nude = (1 + encoded * pk.n) % pk.nsquare
        return get_backend().mulmod(nude, self._fresh_factor(), pk.nsquare)

    def _sample_mask(self, kind: str) -> int:
        n = self.public_key.n
        rng = self.rng if self.rng is not None else _module_rng()
        if kind == MASK_ZN:
            return rng.randrange(n)
        if kind == MASK_NONZERO:
            return rng.randrange(1, n)
        if kind == MASK_SBD:
            upper = self._sbd_upper()
            if upper is None:
                raise ConfigurationError(
                    "SBD mask pool requires sbd_bit_length in the config")
            return rng.randrange(upper)
        raise ConfigurationError(f"unknown mask kind {kind!r}")

    def _sbd_upper(self) -> int | None:
        if self.config.sbd_bit_length is None:
            return None
        return self.public_key.n - (1 << self.config.sbd_bit_length)

    def _constant_targets(self) -> dict[int, int]:
        targets = {0: self.config.zeros, 1: self.config.ones}
        for i in range(self.config.power_bits):
            targets[1 << i] = max(targets.get(1 << i, 0),
                                  self.config.powers_each)
        return targets

    def deficits(self) -> dict[str, int]:
        """How many items each pool is short of its configured target."""
        with self._lock:
            out: dict[str, int] = {}
            obf = self.config.obfuscators - self.obfuscators.remaining
            if obf > 0:
                out["obfuscators"] = obf
            for value, target in self._constant_targets().items():
                short = target - len(self._constants.get(value, ()))
                if short > 0:
                    out[f"constant:{value}"] = short
            mask_targets = {MASK_ZN: self.config.zn_masks,
                            MASK_NONZERO: self.config.nonzero_masks,
                            MASK_SBD: self.config.sbd_masks}
            for kind, target in mask_targets.items():
                short = target - len(self._masks[kind])
                if short > 0:
                    out[f"mask:{kind}"] = short
            return out

    def refill(self, budget: int | None = None) -> int:
        """Fill pools toward their targets; returns the items precomputed.

        This is the expensive producer step (one ``r^N`` exponentiation per
        item) and is meant to run off the query critical path — from an idle
        scheduler slot, the background producer thread, or setup code.
        ``budget`` caps the number of items computed in this call (``None``
        = fill everything); items are computed *outside* the pool locks so
        concurrent online takers never wait on a refill.
        """
        produced = 0
        remaining = budget if budget is not None else float("inf")
        with self._refill_lock:
            while remaining > 0:
                shortfalls = self.deficits()
                if not shortfalls:
                    break
                step = int(min(remaining, self.config.refill_batch))
                batch_done = 0
                for name, short in shortfalls.items():
                    take = min(short, step - batch_done)
                    if take <= 0:
                        break
                    if name == "obfuscators":
                        self.obfuscators.refill(take)
                    elif name.startswith("constant:"):
                        value = int(name.split(":", 1)[1])
                        fresh = [self._raw_constant(value)
                                 for _ in range(take)]
                        with self._lock:
                            self._constants.setdefault(value,
                                                       deque()).extend(fresh)
                    else:
                        kind = name.split(":", 1)[1]
                        fresh_masks = []
                        for _ in range(take):
                            r = self._sample_mask(kind)
                            fresh_masks.append((r, self._raw_constant(r)))
                        with self._lock:
                            self._masks[kind].extend(fresh_masks)
                    batch_done += take
                if batch_done == 0:
                    break
                with self._stats_lock:
                    self.offline.encryptions += batch_done
                produced += batch_done
                remaining -= batch_done
        return produced

    def warm(self) -> int:
        """Fill every pool to its target (alias for an unbounded refill)."""
        return self.refill(None)

    # -- background producer ---------------------------------------------------
    def start_producer(self, interval_seconds: float = 0.02) -> None:
        """Start a daemon thread that keeps the pools topped up (idempotent)."""
        if self._producer is not None and self._producer.is_alive():
            return
        self._producer_stop.clear()

        def _loop() -> None:
            while not self._producer_stop.is_set():
                if self.refill(self.config.refill_batch) == 0:
                    self._producer_stop.wait(interval_seconds)

        self._producer = threading.Thread(
            target=_loop, name="sknn-precompute-producer", daemon=True)
        self._producer.start()

    def stop_producer(self) -> None:
        """Stop the background producer thread (no-op when not running)."""
        if self._producer is None:
            return
        self._producer_stop.set()
        self._producer.join()
        self._producer = None

    # -- online consumers ------------------------------------------------------
    def _record(self, counters: dict[str, int], name: str) -> None:
        with self._stats_lock:
            counters[name] = counters.get(name, 0) + 1

    def encrypt(self, value: int) -> Ciphertext:
        """Encrypt using one pooled obfuscator.

        A dry pool falls back to the key's fixed-base comb (via the batch
        kernel), so a drained engine is never slower than no engine.
        """
        return self.public_key.encrypt_batch([value], rng=self.rng,
                                             pool=self.obfuscators)[0]

    def encrypt_batch(self, values: Sequence[int]) -> list[Ciphertext]:
        """Vectorized pooled encryption (comb fallback past the pool)."""
        return self.public_key.encrypt_batch(list(values), rng=self.rng,
                                             pool=self.obfuscators)

    def encrypt_constant(self, value: int) -> Ciphertext:
        """A fresh single-use encryption of a pooled constant.

        Values with a typed pool (0, 1 and the configured powers of two) are
        served as ready ciphertexts — zero hot-path multiplications; other
        values fall back to a pooled-obfuscator encryption.  The key counter
        advances by one encryption either way (parity with the plain path).
        """
        pk = self.public_key
        with self._lock:
            store = self._constants.get(value)
            if store:
                raw = store.popleft()
                self._record(self.hits, f"constant:{value}")
                pk.counter.encryptions += 1
                return Ciphertext(pk, raw)
        self._record(self.misses, f"constant:{value}")
        return self.encrypt(value)

    def encrypt_constants(self, values: Sequence[int]) -> list[Ciphertext]:
        """Vectorized :meth:`encrypt_constant` (one take per element)."""
        return [self.encrypt_constant(v) for v in values]

    def take_power_of_two(self, exponent: int) -> Ciphertext:
        """A single-use ``E(2^i)`` from the powers-of-two table."""
        if exponent < 0:
            raise ConfigurationError("power-of-two exponent must be >= 0")
        return self.encrypt_constant(1 << exponent)

    def take_mask(self, kind: str = MASK_ZN,
                  sbd_upper: int | None = None) -> tuple[int, Ciphertext]:
        """One precomputed additive mask ``(r, E(r))`` of the given kind.

        On a dry (or unconfigured) pool the mask is sampled online and
        encrypted through the obfuscator pool — fresh randomness, never a
        reused tuple.  ``sbd_upper`` guards the SBD kind: when the caller's
        mask range does not match the engine's configured ``l`` the pooled
        tuples are skipped (their range would be wrong for the caller).
        """
        pk = self.public_key
        usable = True
        if kind == MASK_SBD and sbd_upper is not None:
            usable = self._sbd_upper() == sbd_upper
        if usable:
            with self._lock:
                store = self._masks.get(kind)
                if store:
                    r, raw = store.popleft()
                    self._record(self.hits, f"mask:{kind}")
                    pk.counter.encryptions += 1
                    return r, Ciphertext(pk, raw)
        self._record(self.misses, f"mask:{kind}")
        if kind == MASK_SBD and sbd_upper is not None:
            rng = self.rng if self.rng is not None else _module_rng()
            r = rng.randrange(sbd_upper)
        else:
            r = self._sample_mask(kind)
        return r, self.encrypt(r)

    def take_masks(self, count: int,
                   kind: str = MASK_ZN) -> list[tuple[int, Ciphertext]]:
        """Vectorized :meth:`take_mask`.

        Pooled tuples are drained first; the shortfall is sampled online and
        encrypted in one batch-kernel call (pooled obfuscators, then the
        fixed-base comb), so even a fully drained engine pays comb rates —
        never per-element textbook exponentiations.
        """
        pk = self.public_key
        with self._lock:
            store = self._masks.get(kind)
            served = min(count, len(store)) if store is not None else 0
            pooled = [store.popleft() for _ in range(served)]
        out: list[tuple[int, Ciphertext]] = []
        if served:
            with self._stats_lock:
                name = f"mask:{kind}"
                self.hits[name] = self.hits.get(name, 0) + served
            pk.counter.encryptions += served
            out.extend((r, Ciphertext(pk, raw)) for r, raw in pooled)
        shortfall = count - served
        if shortfall:
            with self._stats_lock:
                name = f"mask:{kind}"
                self.misses[name] = self.misses.get(name, 0) + shortfall
            fresh = [self._sample_mask(kind) for _ in range(shortfall)]
            out.extend(zip(fresh, self.encrypt_batch(fresh)))
        return out

    # -- persistence -----------------------------------------------------------
    def save_pools(self, path: "str | Path") -> int:
        """Persist the warmed pools to ``path``; returns the items saved.

        The file is a versioned, CRC-stamped JSON document binding the
        material to the public key's modulus (a cache for a different key is
        rejected at load).  Pools are *drained* into the file, so a factor
        or mask tuple is either in memory or on disk, never both — the
        single-use guarantee survives the round trip.  The write is atomic
        (tmp + fsync + rename), so a crash mid-save leaves either the
        previous cache or the complete new one, never a torn file.  Meant
        to run at daemon shutdown (``--pool-cache``) so a restarted party
        starts hot.
        """
        from pathlib import Path

        # Function-level import: crypto is a lower layer than resilience
        # (resilience's chaos module imports transport framing, which
        # imports crypto serialization).
        from repro.resilience.durability import atomic_write_bytes

        with self._lock:
            constants = {str(value): [format(raw, "x") for raw in store]
                         for value, store in self._constants.items()
                         if store}
            masks = {kind: [[format(r, "x"), format(raw, "x")]
                            for r, raw in store]
                     for kind, store in self._masks.items() if store}
            for store in self._constants.values():
                store.clear()
            for store in self._masks.values():
                store.clear()
        factors = self.obfuscators.drain_factors()
        data = {
            "format": _POOL_CACHE_VERSION,
            "kind": "precompute-pool-cache",
            "n": format(self.public_key.n, "x"),
            "sbd_bit_length": self.config.sbd_bit_length,
            "obfuscators": [format(factor, "x") for factor in factors],
            "constants": constants,
            "masks": masks,
        }
        data["crc"] = format(
            zlib.crc32(json.dumps(data, sort_keys=True,
                                  separators=(",", ":")).encode("utf-8")),
            "08x")
        saved = (len(factors)
                 + sum(len(v) for v in constants.values())
                 + sum(len(v) for v in masks.values()))
        atomic_write_bytes(Path(path), json.dumps(data).encode("utf-8"))
        return saved

    def load_pools(self, path: "str | Path") -> int:
        """Reload pools saved by :meth:`save_pools`; returns items adopted.

        The cache file is **deleted** after a successful load: the stored
        randomness is single-use, and removing the file guarantees a crashed
        (or concurrently started) party can never replay it.  A cache bound
        to a different modulus raises
        :class:`~repro.exceptions.ConfigurationError`; SBD mask tuples whose
        recorded ``l`` differs from this engine's configuration are dropped
        (their sampling range would be wrong), everything else loads.
        """
        from pathlib import Path

        target = Path(path)
        try:
            data = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable pool cache {path}: {exc}")
        if (not isinstance(data, dict)
                or data.get("kind") != "precompute-pool-cache"
                or data.get("format") != _POOL_CACHE_VERSION):
            raise ConfigurationError(
                f"{path} is not a version-{_POOL_CACHE_VERSION} pool cache")
        stored_crc = data.pop("crc", None)
        if stored_crc is not None:
            computed = format(
                zlib.crc32(json.dumps(data, sort_keys=True,
                                      separators=(",", ":")).encode("utf-8")),
                "08x")
            if stored_crc != computed:
                # A corrupted cache is rejected, never half-adopted: bad
                # randomness here would silently weaken every masking step.
                raise ConfigurationError(
                    f"pool cache {path} failed its CRC check "
                    f"(stored {stored_crc}, computed {computed})")
        if data.get("n") != format(self.public_key.n, "x"):
            raise ConfigurationError(
                f"pool cache {path} was produced under a different key")
        adopted = self.obfuscators.adopt_factors(
            [int(factor, 16) for factor in data.get("obfuscators", [])])
        with self._lock:
            for value, store in data.get("constants", {}).items():
                raws = [int(raw, 16) for raw in store]
                self._constants.setdefault(int(value), deque()).extend(raws)
                adopted += len(raws)
            for kind, store in data.get("masks", {}).items():
                if kind not in self._masks:
                    continue
                if (kind == MASK_SBD
                        and data.get("sbd_bit_length")
                        != self.config.sbd_bit_length):
                    continue
                tuples = [(int(r, 16), int(raw, 16)) for r, raw in store]
                self._masks[kind].extend(tuples)
                adopted += len(tuples)
        target.unlink()
        return adopted

    # -- introspection ---------------------------------------------------------
    def remaining(self) -> dict[str, int]:
        """Items currently available per pool."""
        with self._lock:
            out = {"obfuscators": self.obfuscators.remaining}
            for value, store in self._constants.items():
                out[f"constant:{value}"] = len(store)
            for kind, store in self._masks.items():
                out[f"mask:{kind}"] = len(store)
            return out

    def stats(self) -> dict[str, object]:
        """Pool effectiveness and offline-work accounting.

        Counter fields are read under the stats lock (and the obfuscator
        pool's own lock), so concurrent online takers can never produce a
        torn snapshot — e.g. a hit counted but its dict resize observed
        mid-flight.
        """
        remaining = self.remaining()
        obfuscators = self.obfuscators.stats()
        with self._stats_lock:
            offline = self.offline.encryptions
            hits = dict(self.hits)
            misses = dict(self.misses)
        return {
            "remaining": remaining,
            "hits": hits,
            "misses": misses,
            "obfuscator_hits": obfuscators["hits"],
            "obfuscator_misses": obfuscators["misses"],
            "offline_encryptions": offline,
            "offline_powmods": offline,
        }

    def pool_hit_total(self) -> int:
        """Total pooled items consumed (tuples + constants + obfuscators)."""
        with self._stats_lock:
            pooled = sum(self.hits.values())
        return pooled + self.obfuscators.stats()["hits"]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"PrecomputeEngine(remaining={self.remaining()}, "
                f"offline={self.offline.encryptions})")


_MODULE_RNG = Random()


def _module_rng() -> Random:
    """Process-wide fallback randomness for engines without an explicit rng."""
    return _MODULE_RNG
