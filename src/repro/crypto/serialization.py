"""Serialization of Paillier keys and ciphertexts.

The data owner (Alice) encrypts her database once and ships it to cloud C1,
and ships the secret key to cloud C2.  In a real deployment those artifacts
cross process and machine boundaries, so the library provides a stable,
JSON-compatible wire format for:

* public keys,
* private keys,
* individual ciphertexts, and
* whole encrypted tables (see :mod:`repro.db.encrypted_table`).

Integers are encoded as lowercase hexadecimal strings so that arbitrarily
large values survive JSON round-trips without precision loss.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.paillier import (
    Ciphertext,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.exceptions import SerializationError

__all__ = [
    "public_key_to_dict",
    "public_key_from_dict",
    "private_key_to_dict",
    "private_key_from_dict",
    "keypair_to_dict",
    "keypair_from_dict",
    "ciphertext_to_dict",
    "ciphertext_from_dict",
    "payload_to_jsonable",
    "payload_from_jsonable",
    "message_envelope_to_bytes",
    "message_envelope_from_bytes",
    "FRAME_HEADER_BYTES",
    "dumps",
    "loads",
]

#: size of the TCP frame length prefix; part of the wire format, defined here
#: (rather than in :mod:`repro.transport.framing`) so the in-memory channel
#: can size its byte accounting without importing the transport package.
FRAME_HEADER_BYTES = 4

_FORMAT_VERSION = 1


def _int_to_hex(value: int) -> str:
    """Encode a non-negative integer as a hex string."""
    if value < 0:
        raise SerializationError("cannot serialize negative integers")
    return format(value, "x")


def _hex_to_int(value: str) -> int:
    """Decode a hex string produced by :func:`_int_to_hex`."""
    try:
        return int(value, 16)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid hex integer: {value!r}") from exc


def public_key_to_dict(public_key: PaillierPublicKey) -> dict[str, Any]:
    """Serialize a public key to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-public-key",
        "n": _int_to_hex(public_key.n),
    }


def public_key_from_dict(data: dict[str, Any]) -> PaillierPublicKey:
    """Reconstruct a public key from :func:`public_key_to_dict` output."""
    _validate_kind(data, "paillier-public-key")
    return PaillierPublicKey(_hex_to_int(data["n"]))


def private_key_to_dict(private_key: PaillierPrivateKey) -> dict[str, Any]:
    """Serialize a private key (including its public part)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-private-key",
        "n": _int_to_hex(private_key.public_key.n),
        "p": _int_to_hex(private_key.p),
        "q": _int_to_hex(private_key.q),
    }


def private_key_from_dict(data: dict[str, Any]) -> PaillierPrivateKey:
    """Reconstruct a private key from :func:`private_key_to_dict` output."""
    _validate_kind(data, "paillier-private-key")
    public = PaillierPublicKey(_hex_to_int(data["n"]))
    return PaillierPrivateKey(public, _hex_to_int(data["p"]), _hex_to_int(data["q"]))


def keypair_to_dict(keypair: PaillierKeyPair) -> dict[str, Any]:
    """Serialize a full key pair."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-keypair",
        "public": public_key_to_dict(keypair.public_key),
        "private": private_key_to_dict(keypair.private_key),
    }


def keypair_from_dict(data: dict[str, Any]) -> PaillierKeyPair:
    """Reconstruct a key pair from :func:`keypair_to_dict` output."""
    _validate_kind(data, "paillier-keypair")
    private = private_key_from_dict(data["private"])
    return PaillierKeyPair(private.public_key, private)


def ciphertext_to_dict(ciphertext: Ciphertext) -> dict[str, Any]:
    """Serialize a single ciphertext (without the key material)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-ciphertext",
        "value": _int_to_hex(ciphertext.value),
    }


def ciphertext_from_dict(data: dict[str, Any],
                         public_key: PaillierPublicKey) -> Ciphertext:
    """Reconstruct a ciphertext under the supplied public key."""
    _validate_kind(data, "paillier-ciphertext")
    return Ciphertext(public_key, _hex_to_int(data["value"]))


# ---------------------------------------------------------------------------
# Channel-payload codec
# ---------------------------------------------------------------------------
#
# Every value the two-party protocols put on a channel is built from a small
# closed set of shapes: ciphertexts, (signed) integers, booleans, strings,
# ``None`` and nested lists/tuples/dicts of those.  The encoding below maps
# each shape onto a JSON value unambiguously:
#
# * ``None``, booleans and strings encode as themselves;
# * every other shape encodes as a single-key dict whose key names the type
#   (``"c"`` ciphertext, ``"i"`` integer, ``"t"`` tuple, ``"d"`` dict) — a
#   payload dict is always wrapped in ``{"d": [...]}``, so the type-tag keys
#   can never collide with user data;
# * lists encode as JSON arrays of encoded items.
#
# Integers use sign-prefixed hex (consistent with the key/ciphertext formats
# above) so arbitrarily large residues survive any JSON implementation.  The
# TCP transport (:mod:`repro.transport.wire`) frames exactly this encoding,
# and the in-memory channel sizes its traffic accounting with it, so both
# transports report comparable byte counts.

def payload_to_jsonable(payload: Any) -> Any:
    """Encode a channel payload as a JSON-compatible value."""
    if payload is None or isinstance(payload, str):
        return payload
    if isinstance(payload, bool):  # before int: bool subclasses int
        return payload
    if isinstance(payload, int):
        sign = "-" if payload < 0 else ""
        return {"i": sign + format(abs(payload), "x")}
    if isinstance(payload, float):
        # Floats appear only in control/report messages (timings), never in
        # protocol payloads; JSON represents them natively.
        return payload
    if isinstance(payload, Ciphertext):
        return {"c": _int_to_hex(payload.value)}
    if isinstance(payload, list):
        return [payload_to_jsonable(item) for item in payload]
    if isinstance(payload, tuple):
        return {"t": [payload_to_jsonable(item) for item in payload]}
    if isinstance(payload, dict):
        return {"d": [[payload_to_jsonable(key), payload_to_jsonable(value)]
                      for key, value in payload.items()]}
    raise SerializationError(
        f"unsupported payload type on the wire: {type(payload).__name__}")


def payload_from_jsonable(data: Any,
                          public_key: PaillierPublicKey | None) -> Any:
    """Decode :func:`payload_to_jsonable` output.

    Args:
        data: the JSON-compatible encoding.
        public_key: key used to rebuild ciphertexts; ``None`` is accepted for
            payloads that cannot contain ciphertexts (e.g. the provisioning
            control messages that *carry* the key material itself).
    """
    if data is None or isinstance(data, (bool, str)):
        return data
    if isinstance(data, float):
        return data
    if isinstance(data, list):
        return [payload_from_jsonable(item, public_key) for item in data]
    if isinstance(data, dict):
        if len(data) != 1:
            raise SerializationError(f"malformed payload node: {data!r}")
        kind, value = next(iter(data.items()))
        if kind == "i":
            if not isinstance(value, str):
                raise SerializationError(f"malformed integer node: {value!r}")
            negative = value.startswith("-")
            magnitude = _hex_to_int(value[1:] if negative else value)
            return -magnitude if negative else magnitude
        if kind == "c":
            if public_key is None:
                raise SerializationError(
                    "cannot decode a ciphertext without a public key "
                    "(is the party provisioned yet?)")
            return Ciphertext(public_key, _hex_to_int(value))
        if kind == "t":
            return tuple(payload_from_jsonable(item, public_key)
                         for item in value)
        if kind == "d":
            return {payload_from_jsonable(key, public_key):
                    payload_from_jsonable(val, public_key)
                    for key, val in value}
        raise SerializationError(f"unknown payload node kind {kind!r}")
    raise SerializationError(
        f"unsupported wire value of type {type(data).__name__}")


def message_envelope_to_bytes(sender: str, recipient: str, tag: str,
                              payload: Any,
                              trace: Any = None,
                              context: str | None = None) -> bytes:
    """Encode one channel message as compact UTF-8 JSON bytes.

    The envelope is the four-element array ``[sender, recipient, tag,
    encoded-payload]``; when a distributed trace is active a fifth element
    ``[trace_id, span_id]`` rides along so the receiving daemon can stitch
    its spans into the originating query's trace.  A sixth element — the
    query-context id — appears when the frame belongs to one of several
    pipelined in-flight queries multiplexed over a single peer connection
    (the fifth element is ``null`` when a context rides without a trace).
    This is the exact byte sequence the TCP transport frames, and the
    in-memory channel sizes its accounting with it.
    """
    envelope = [sender, recipient, tag, payload_to_jsonable(payload)]
    if trace is not None:
        envelope.append([str(part) for part in trace])
    if context is not None:
        if trace is None:
            envelope.append(None)
        envelope.append(str(context))
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def message_envelope_from_bytes(
    body: bytes, public_key: PaillierPublicKey | None
) -> tuple[str, str, str, Any, list[str] | None, str | None]:
    """Decode :func:`message_envelope_to_bytes` output.

    Returns:
        ``(sender, recipient, tag, payload, trace, context)`` where
        ``trace`` is the optional ``[trace_id, span_id]`` pair and
        ``context`` the optional query-context id (both ``None`` when the
        envelope carried the plain four-element form).
    """
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"undecodable message envelope: {exc}") from exc
    if (not isinstance(envelope, list) or len(envelope) not in (4, 5, 6)
            or not all(isinstance(part, str) for part in envelope[:3])):
        raise SerializationError("malformed message envelope")
    trace: list[str] | None = None
    if len(envelope) >= 5 and envelope[4] is not None:
        trace_part = envelope[4]
        if (not isinstance(trace_part, list) or len(trace_part) != 2
                or not all(isinstance(part, str) for part in trace_part)):
            raise SerializationError("malformed trace context in envelope")
        trace = trace_part
    context: str | None = None
    if len(envelope) == 6 and envelope[5] is not None:
        if not isinstance(envelope[5], str):
            raise SerializationError("malformed query context in envelope")
        context = envelope[5]
    sender, recipient, tag, payload = envelope[:4]
    return (sender, recipient, tag,
            payload_from_jsonable(payload, public_key), trace, context)


def dumps(data: dict[str, Any]) -> str:
    """Serialize any of the dictionaries above to a JSON string."""
    return json.dumps(data, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    """Parse a JSON string produced by :func:`dumps`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError("expected a JSON object at the top level")
    return data


def _validate_kind(data: dict[str, Any], expected_kind: str) -> None:
    """Check the ``kind`` and ``format`` fields of a serialized object."""
    if not isinstance(data, dict):
        raise SerializationError(f"expected dict, got {type(data).__name__}")
    kind = data.get("kind")
    if kind != expected_kind:
        raise SerializationError(f"expected kind {expected_kind!r}, got {kind!r}")
    version = data.get("format")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported format version: {version!r}")
