"""Serialization of Paillier keys and ciphertexts.

The data owner (Alice) encrypts her database once and ships it to cloud C1,
and ships the secret key to cloud C2.  In a real deployment those artifacts
cross process and machine boundaries, so the library provides a stable,
JSON-compatible wire format for:

* public keys,
* private keys,
* individual ciphertexts, and
* whole encrypted tables (see :mod:`repro.db.encrypted_table`).

Integers are encoded as lowercase hexadecimal strings so that arbitrarily
large values survive JSON round-trips without precision loss.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.paillier import (
    Ciphertext,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.exceptions import SerializationError

__all__ = [
    "public_key_to_dict",
    "public_key_from_dict",
    "private_key_to_dict",
    "private_key_from_dict",
    "keypair_to_dict",
    "keypair_from_dict",
    "ciphertext_to_dict",
    "ciphertext_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def _int_to_hex(value: int) -> str:
    """Encode a non-negative integer as a hex string."""
    if value < 0:
        raise SerializationError("cannot serialize negative integers")
    return format(value, "x")


def _hex_to_int(value: str) -> int:
    """Decode a hex string produced by :func:`_int_to_hex`."""
    try:
        return int(value, 16)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid hex integer: {value!r}") from exc


def public_key_to_dict(public_key: PaillierPublicKey) -> dict[str, Any]:
    """Serialize a public key to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-public-key",
        "n": _int_to_hex(public_key.n),
    }


def public_key_from_dict(data: dict[str, Any]) -> PaillierPublicKey:
    """Reconstruct a public key from :func:`public_key_to_dict` output."""
    _validate_kind(data, "paillier-public-key")
    return PaillierPublicKey(_hex_to_int(data["n"]))


def private_key_to_dict(private_key: PaillierPrivateKey) -> dict[str, Any]:
    """Serialize a private key (including its public part)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-private-key",
        "n": _int_to_hex(private_key.public_key.n),
        "p": _int_to_hex(private_key.p),
        "q": _int_to_hex(private_key.q),
    }


def private_key_from_dict(data: dict[str, Any]) -> PaillierPrivateKey:
    """Reconstruct a private key from :func:`private_key_to_dict` output."""
    _validate_kind(data, "paillier-private-key")
    public = PaillierPublicKey(_hex_to_int(data["n"]))
    return PaillierPrivateKey(public, _hex_to_int(data["p"]), _hex_to_int(data["q"]))


def keypair_to_dict(keypair: PaillierKeyPair) -> dict[str, Any]:
    """Serialize a full key pair."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-keypair",
        "public": public_key_to_dict(keypair.public_key),
        "private": private_key_to_dict(keypair.private_key),
    }


def keypair_from_dict(data: dict[str, Any]) -> PaillierKeyPair:
    """Reconstruct a key pair from :func:`keypair_to_dict` output."""
    _validate_kind(data, "paillier-keypair")
    private = private_key_from_dict(data["private"])
    return PaillierKeyPair(private.public_key, private)


def ciphertext_to_dict(ciphertext: Ciphertext) -> dict[str, Any]:
    """Serialize a single ciphertext (without the key material)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "paillier-ciphertext",
        "value": _int_to_hex(ciphertext.value),
    }


def ciphertext_from_dict(data: dict[str, Any],
                         public_key: PaillierPublicKey) -> Ciphertext:
    """Reconstruct a ciphertext under the supplied public key."""
    _validate_kind(data, "paillier-ciphertext")
    return Ciphertext(public_key, _hex_to_int(data["value"]))


def dumps(data: dict[str, Any]) -> str:
    """Serialize any of the dictionaries above to a JSON string."""
    return json.dumps(data, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    """Parse a JSON string produced by :func:`dumps`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError("expected a JSON object at the top level")
    return data


def _validate_kind(data: dict[str, Any], expected_kind: str) -> None:
    """Check the ``kind`` and ``format`` fields of a serialized object."""
    if not isinstance(data, dict):
        raise SerializationError(f"expected dict, got {type(data).__name__}")
    kind = data.get("kind")
    if kind != expected_kind:
        raise SerializationError(f"expected kind {expected_kind!r}, got {kind!r}")
    version = data.get("format")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported format version: {version!r}")
