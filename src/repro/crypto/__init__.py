"""Cryptographic substrate: number theory, Paillier, and serialization.

The paper assumes a semantically secure additively homomorphic public-key
cryptosystem; this subpackage provides a self-contained Paillier
implementation (no external crypto dependencies) plus the supporting number
theory and a JSON wire format for keys and ciphertexts.
"""

from repro.crypto.paillier import (
    DEFAULT_KEY_SIZE,
    Ciphertext,
    OperationCounter,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.randomness_pool import RandomnessPool

__all__ = [
    "DEFAULT_KEY_SIZE",
    "Ciphertext",
    "OperationCounter",
    "PaillierKeyPair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "RandomnessPool",
    "generate_keypair",
]
