"""Cryptographic substrate: number theory, Paillier, and serialization.

The paper assumes a semantically secure additively homomorphic public-key
cryptosystem; this subpackage provides a self-contained Paillier
implementation (no external crypto dependencies) plus the supporting number
theory and a JSON wire format for keys and ciphertexts.
"""

from repro.crypto.backend import (
    BACKEND_ENV_VAR,
    BigintBackend,
    FixedBaseExp,
    Gmpy2Backend,
    PythonBackend,
    available_backends,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.crypto.paillier import (
    DEFAULT_KEY_SIZE,
    Ciphertext,
    OperationCounter,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.precompute import (
    MASK_NONZERO,
    MASK_SBD,
    MASK_ZN,
    PrecomputeConfig,
    PrecomputeEngine,
)
from repro.crypto.randomness_pool import RandomnessPool

__all__ = [
    "BACKEND_ENV_VAR",
    "BigintBackend",
    "DEFAULT_KEY_SIZE",
    "Ciphertext",
    "FixedBaseExp",
    "Gmpy2Backend",
    "MASK_NONZERO",
    "MASK_SBD",
    "MASK_ZN",
    "OperationCounter",
    "PaillierKeyPair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PrecomputeConfig",
    "PrecomputeEngine",
    "PythonBackend",
    "RandomnessPool",
    "available_backends",
    "generate_keypair",
    "get_backend",
    "resolve_backend",
    "set_backend",
]
