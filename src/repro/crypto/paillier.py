"""Paillier cryptosystem with the homomorphic operations used by the paper.

The SkNN protocols (Elmehdwi, Samanthula & Jiang, ICDE 2014) assume the data
owner encrypts every attribute value with the Paillier cryptosystem
[Paillier, EUROCRYPT'99].  This module provides a from-scratch implementation
with the three properties the paper relies on (Section 2.3):

* homomorphic addition:       ``E(a) * E(b) mod N^2  == E(a + b)``
* homomorphic scalar multiply: ``E(a) ** b  mod N^2  == E(a * b)``
* semantic security (probabilistic encryption with a fresh random nonce).

Implementation notes
--------------------
* The generator is fixed to ``g = N + 1`` which allows the encryption
  ``g^m = 1 + m*N (mod N^2)`` fast path and is standard practice.
* Decryption uses the CRT over ``p^2`` and ``q^2`` which is roughly 3x faster
  than the textbook formula; the naive path is kept for the ablation bench.
* Every public/private key tracks how many encryptions, decryptions and
  exponentiations have been performed.  The paper's complexity analysis
  (Section 4.4) is expressed in exactly those operation counts, so the
  counters let the test-suite check the analytic model against reality.
* Negative intermediate values (e.g. ``x_i - y_i`` inside SSED) are
  represented as elements of ``Z_N`` in the upper half of the range, exactly
  as the paper's ``N - x  ==  -x (mod N)`` convention.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from repro.crypto.randomness_pool import RandomnessPool

from repro.crypto import numtheory as nt
from repro.crypto.backend import FixedBaseExp, get_backend
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)

__all__ = [
    "OperationCounter",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierKeyPair",
    "Ciphertext",
    "generate_keypair",
    "counting_scope",
    "active_counting_scope",
    "DEFAULT_KEY_SIZE",
]

#: Default modulus size (bits).  The paper evaluates K = 512 and K = 1024;
#: tests use smaller keys for speed and benchmarks choose explicitly.
DEFAULT_KEY_SIZE = 512

#: the four counted operation kinds, in report order
_COUNTED_OPS = ("encryptions", "decryptions", "exponentiations",
                "homomorphic_additions")

# Thread-local counting scope: while a scope is active on a thread, every
# counter *increment* performed on that thread (through any key object) is
# additionally teed into the scope's counter.  This is how a daemon serving
# several pipelined queries on worker threads keeps per-query operation
# counts exact: the shared root-key counters keep their cumulative totals,
# and each query's thread-scoped counter sees exactly its own work —
# including pool consumption, which is charged to the root key at consume
# time deep inside the precompute engine.
_COUNTING_SCOPE = threading.local()


def active_counting_scope() -> "OperationCounter | None":
    """The :class:`OperationCounter` scoped to this thread, or ``None``."""
    return getattr(_COUNTING_SCOPE, "counter", None)


@contextmanager
def counting_scope(counter: "OperationCounter") -> Iterator["OperationCounter"]:
    """Tee this thread's crypto-operation increments into ``counter``.

    Scopes nest by shadowing: the innermost scope on a thread receives the
    deltas (exactly once — there is no cascading), and the previous scope is
    restored on exit.  Only positive deltas are teed, so a ``reset()`` on a
    root counter never subtracts from a scope.
    """
    previous = getattr(_COUNTING_SCOPE, "counter", None)
    _COUNTING_SCOPE.counter = counter
    try:
        yield counter
    finally:
        _COUNTING_SCOPE.counter = previous


@dataclass
class OperationCounter:
    """Counts the primitive cryptographic operations performed with a key.

    The paper reports protocol complexity in terms of *encryptions*,
    *decryptions* and *exponentiations* (Section 4.4).  A counter instance is
    attached to each key object, and protocol-level statistics aggregate them.
    Increments additionally land in the thread's active
    :func:`counting_scope`, which is how per-query statistics stay exact when
    several queries share one key on different threads.
    """

    encryptions: int = 0
    decryptions: int = 0
    exponentiations: int = 0
    homomorphic_additions: int = 0

    def __setattr__(self, name: str, value: int) -> None:
        # Tee positive deltas of established count fields into the active
        # thread scope.  First assignment (during __init__) has no previous
        # value in __dict__ and is deliberately not teed, so constructing a
        # merged/snapshot counter inside a scope does not double-count.
        if name in self.__dict__:
            scope = getattr(_COUNTING_SCOPE, "counter", None)
            if scope is not None and scope is not self:
                delta = value - self.__dict__[name]
                if delta > 0:
                    scope.__dict__[name] = scope.__dict__.get(name, 0) + delta
        self.__dict__[name] = value

    def reset(self) -> None:
        """Zero all counters."""
        self.encryptions = 0
        self.decryptions = 0
        self.exponentiations = 0
        self.homomorphic_additions = 0

    def snapshot(self) -> dict[str, int]:
        """Return the current counts as a plain dictionary."""
        return {
            "encryptions": self.encryptions,
            "decryptions": self.decryptions,
            "exponentiations": self.exponentiations,
            "homomorphic_additions": self.homomorphic_additions,
        }

    def merged_with(self, other: "OperationCounter") -> "OperationCounter":
        """Return a new counter holding the sum of ``self`` and ``other``."""
        return OperationCounter(
            encryptions=self.encryptions + other.encryptions,
            decryptions=self.decryptions + other.decryptions,
            exponentiations=self.exponentiations + other.exponentiations,
            homomorphic_additions=(
                self.homomorphic_additions + other.homomorphic_additions
            ),
        )


class PaillierPublicKey:
    """Paillier public key ``pk = (N, g)`` with ``g = N + 1``.

    The public key performs encryption and all ciphertext-space homomorphic
    operations.  It never needs (and never holds) the factorization of ``N``.
    """

    def __init__(self, n: int) -> None:
        if n < 15:
            raise KeyGenerationError(f"modulus too small: {n}")
        self.n = n
        self.nsquare = n * n
        self.g = n + 1
        #: maximum plaintext strictly below this bound
        self.max_plaintext = n
        self.counter = OperationCounter()
        # Fixed-base windowed obfuscator generator, built lazily by the batch
        # encryption path (see _windowed_obfuscators).
        self._obfuscator_comb: FixedBaseExp | None = None
        self._obfuscator_lock = threading.Lock()
        # Optional precomputed obfuscator source (a RandomnessPool) consumed
        # by raw_encrypt/encrypt_batch when no explicit nonce is given.
        self._attached_pool: "RandomnessPool | None" = None

    # -- representation ----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaillierPublicKey(bits={self.n.bit_length()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("PaillierPublicKey", self.n))

    @property
    def key_size(self) -> int:
        """Modulus size in bits (the paper's parameter ``K``)."""
        return self.n.bit_length()

    # -- plaintext encoding -------------------------------------------------
    def encode_signed(self, value: int) -> int:
        """Map a (possibly negative) integer into ``Z_N``.

        Negative values are represented as ``N - |value|`` which is the
        paper's ``-x == N - x (mod N)`` convention.  Values must satisfy
        ``|value| < N / 2`` so that encoding is unambiguous.
        """
        if value >= 0:
            if value >= self.n:
                raise EncryptionError(
                    f"plaintext {value} out of range for modulus of "
                    f"{self.key_size} bits"
                )
            return value
        if -value >= self.n // 2:
            raise EncryptionError(
                f"negative plaintext {value} too large in magnitude for modulus"
            )
        return self.n + value

    def decode_signed(self, value: int) -> int:
        """Inverse of :meth:`encode_signed` (values above N/2 are negative)."""
        value %= self.n
        if value > self.n // 2:
            return value - self.n
        return value

    # -- precomputed obfuscators --------------------------------------------
    def attach_randomness_pool(self, pool: "RandomnessPool | None") -> None:
        """Attach (or detach, with ``None``) a precomputed obfuscator source.

        While attached, :meth:`raw_encrypt` and :meth:`encrypt_batch` consume
        the pool's single-use ``r^N`` factors whenever no explicit nonce is
        supplied, falling back to their usual obfuscator generation when the
        pool runs dry.  Pool hits/misses are recorded on the pool; the key's
        :class:`OperationCounter` advances exactly as on the non-pooled path.
        """
        if pool is not None and pool.public_key != self:
            raise EncryptionError(
                "randomness pool belongs to a different public key")
        self._attached_pool = pool

    @property
    def attached_pool(self) -> "RandomnessPool | None":
        """The currently attached precomputed obfuscator source (or None)."""
        return self._attached_pool

    # -- encryption ---------------------------------------------------------
    def raw_encrypt(self, plaintext: int, r_value: int | None = None,
                    rng: Random | None = None) -> int:
        """Encrypt ``plaintext`` (already reduced mod N) to a raw ciphertext.

        ``c = (1 + m*N) * r^N  mod N^2`` using the ``g = N+1`` fast path.
        When a randomness pool is attached and no explicit nonce is given,
        the obfuscation factor is popped from the pool (one multiplication
        on the hot path instead of a full exponentiation).

        Args:
            plaintext: message in ``[0, N)``.
            r_value: optional explicit nonce in ``Z_N^*`` (used by tests and
                worked examples); when omitted a fresh random nonce is drawn.
            rng: optional deterministic randomness source.
        """
        backend = get_backend()
        m = plaintext % self.n
        nude = (1 + m * self.n) % self.nsquare
        if r_value is None and self._attached_pool is not None:
            factor = self._attached_pool.take_available_one()
            if factor is not None:
                self.counter.encryptions += 1
                return backend.mulmod(nude, factor, self.nsquare)
        if r_value is None:
            r_value = nt.random_in_zn_star(self.n, rng)
        obfuscator = backend.powmod(r_value, self.n, self.nsquare)
        self.counter.encryptions += 1
        return backend.mulmod(nude, obfuscator, self.nsquare)

    def encrypt(self, value: int, r_value: int | None = None,
                rng: Random | None = None) -> "Ciphertext":
        """Encrypt a signed integer and wrap it in a :class:`Ciphertext`."""
        encoded = self.encode_signed(value)
        return Ciphertext(self, self.raw_encrypt(encoded, r_value, rng))

    def encrypt_vector(self, values: Sequence[int],
                       rng: Random | None = None) -> list["Ciphertext"]:
        """Attribute-wise encryption of a vector (the paper's ``Epk(t_i)``).

        Routes through :meth:`encrypt_batch`, so vector callers get the
        fixed-base comb (and any attached randomness pool) for free instead
        of a per-element Python loop over the scalar path.
        """
        return self.encrypt_batch(list(values), rng=rng)

    def encrypt_zero(self, rng: Random | None = None) -> "Ciphertext":
        """Fresh probabilistic encryption of zero (used for re-randomization)."""
        return self.encrypt(0, rng=rng)

    # -- ciphertext-space helpers -------------------------------------------
    def raw_add(self, c1: int, c2: int) -> int:
        """Homomorphic addition of two raw ciphertexts."""
        self.counter.homomorphic_additions += 1
        return get_backend().mulmod(c1, c2, self.nsquare)

    def raw_scalar_mul(self, c: int, scalar: int) -> int:
        """Homomorphic multiplication of a raw ciphertext by a plaintext scalar.

        The scalar is reduced into ``Z_N`` first, so negative scalars follow
        the paper's ``-x == N - x (mod N)`` convention automatically.
        """
        self.counter.exponentiations += 1
        return get_backend().powmod(c, scalar % self.n, self.nsquare)

    def raw_negate(self, c: int) -> int:
        """Homomorphic negation ``E(-a)`` via modular inversion of ``E(a)``.

        ``E(a)**-1 mod N**2 = g**-a * (r**-1)**N`` is a valid encryption of
        ``-a``, and a modular inverse costs a small fraction of the
        ``E(a)**(N-1)`` exponentiation the textbook negation performs (about
        18x less at K=512 on CPython).  It is *counted* as one exponentiation
        because it replaces exactly one in the paper's accounting, keeping the
        Section 4.4 operation counts comparable across code paths.
        """
        self.counter.exponentiations += 1
        return get_backend().invert(c, self.nsquare)

    # -- batched kernel ------------------------------------------------------
    def _check_batch_key(self, ciphertexts: Sequence["Ciphertext"]) -> None:
        """Reject ciphertexts produced under a different key, loudly."""
        for ciphertext in ciphertexts:
            if ciphertext.public_key != self:
                raise KeyMismatchError(
                    "cannot combine ciphertexts under different keys")

    def _windowed_obfuscators(self, rng: Random | None = None) -> FixedBaseExp:
        """The per-key fixed-base comb table for obfuscator generation.

        Built once per key (lazily, thread-safely): draw ``y`` uniformly from
        ``Z_N^*`` and tabulate ``h = y**N mod N**2``.  A fresh obfuscator is
        then ``h**s = (y**s)**N`` for a random ``s``, i.e. an ordinary
        obfuscation factor with nonce ``r = y**s`` — one comb lookup chain
        (``~N_bits/8`` multiplications, no squarings) instead of a full
        ``r**N`` exponentiation.  Nonces are drawn from the cyclic group
        generated by ``y`` rather than all of ``Z_N^*``; distinguishing the
        two is believed hard for RSA-type moduli (the standard assumption
        behind fixed-base Paillier precomputation), and each ``s`` is used
        exactly once.
        """
        if self._obfuscator_comb is None:
            with self._obfuscator_lock:
                if self._obfuscator_comb is None:
                    y = nt.random_in_zn_star(self.n, rng)
                    h = get_backend().powmod(y, self.n, self.nsquare)
                    self._obfuscator_comb = FixedBaseExp(
                        h, self.nsquare, self.n.bit_length())
        return self._obfuscator_comb

    def encrypt_batch(self, values: Sequence[int], rng: Random | None = None,
                      r_values: Sequence[int] | None = None,
                      windowed: bool = True,
                      pool: "RandomnessPool | None" = None) -> list["Ciphertext"]:
        """Encrypt a vector of signed integers in one vectorized kernel call.

        Element-wise equivalent to ``[self.encrypt(v) for v in values]`` (and
        bit-identical to it when explicit ``r_values`` are supplied), while
        amortizing counter bookkeeping and attribute dispatch over the whole
        vector and sourcing obfuscators from the fixed-base window table.

        Obfuscator precedence: explicit ``r_values`` > precomputed pool
        (the ``pool`` argument, else an attached randomness pool) > the
        fixed-base comb (``windowed=True``) > textbook ``r**N``.  A pool
        covers as many elements as it has factors available; the remainder
        falls through to the next source, so a dry pool never stalls a batch.

        Args:
            values: signed plaintexts (each ``|v| < N/2``).
            rng: optional deterministic randomness source.
            r_values: optional explicit nonces, one per value; forces the
                per-element ``r**N`` path so ciphertexts match the scalar API
                exactly (tests and worked examples).
            windowed: when ``True`` (default) draw obfuscators from the
                per-key comb table; ``False`` computes textbook ``r**N``
                factors (same cost profile as the scalar path).
            pool: optional :class:`~repro.crypto.randomness_pool.
                RandomnessPool` of precomputed factors, overriding any
                key-attached pool for this call.

        Returns:
            One :class:`Ciphertext` per value, in order.
        """
        n = self.n
        nsquare = self.nsquare
        backend = get_backend()
        mulmod = backend.mulmod
        encoded = [self.encode_signed(v) for v in values]
        if r_values is not None:
            if len(r_values) != len(encoded):
                raise EncryptionError(
                    "encrypt_batch needs exactly one nonce per value")
            factors = [backend.powmod(r, n, nsquare) for r in r_values]
        else:
            if pool is None:
                pool = self._attached_pool
            factors = (pool.take_available(len(encoded))
                       if pool is not None and encoded else [])
            missing = len(encoded) - len(factors)
            if missing > 0 and windowed:
                comb = self._windowed_obfuscators(rng)
                comb_pow = comb.pow
                factors.extend(comb_pow(nt.random_below(n - 1, rng) + 1)
                               for _ in range(missing))
            elif missing > 0:
                factors.extend(
                    backend.powmod(nt.random_in_zn_star(n, rng), n, nsquare)
                    for _ in range(missing)
                )
        self.counter.encryptions += len(encoded)
        return [
            Ciphertext(self, mulmod((1 + m * n) % nsquare, factor, nsquare))
            for m, factor in zip(encoded, factors)
        ]

    def scalar_mul_batch(self, ciphertexts: Sequence["Ciphertext"],
                         scalars: Sequence[int] | int) -> list["Ciphertext"]:
        """Homomorphic scalar multiplication over whole vectors.

        Element-wise equivalent to ``[c * s for c, s in zip(...)]`` — and raw
        identical to it, except that scalars congruent to ``-1 mod N``
        (homomorphic negation, the protocols' most common scalar) take the
        modular-inverse shortcut of :meth:`raw_negate`.  Counters advance by
        one exponentiation per element, exactly like the scalar path.

        Args:
            ciphertexts: the operand vector.
            scalars: one scalar per ciphertext, or a single shared scalar.
        """
        if isinstance(scalars, int):
            scalars = [scalars] * len(ciphertexts)
        elif len(scalars) != len(ciphertexts):
            raise EncryptionError(
                "scalar_mul_batch needs exactly one scalar per ciphertext")
        self._check_batch_key(ciphertexts)
        n = self.n
        nsquare = self.nsquare
        backend = get_backend()
        powmod = backend.powmod
        invert = backend.invert
        negation = n - 1
        out = []
        for ciphertext, scalar in zip(ciphertexts, scalars):
            exponent = scalar % n
            if exponent == negation:
                raw = invert(ciphertext.value, nsquare)
            else:
                raw = powmod(ciphertext.value, exponent, nsquare)
            out.append(Ciphertext(self, raw))
        self.counter.exponentiations += len(out)
        return out

    def add_batch(self, left: Sequence["Ciphertext"],
                  right: Sequence["Ciphertext"]) -> list["Ciphertext"]:
        """Pairwise homomorphic addition of two equal-length vectors."""
        if len(left) != len(right):
            raise EncryptionError("add_batch needs equal-length vectors")
        self._check_batch_key(left)
        self._check_batch_key(right)
        nsquare = self.nsquare
        mulmod = get_backend().mulmod
        out = [Ciphertext(self, mulmod(a.value, b.value, nsquare))
               for a, b in zip(left, right)]
        self.counter.homomorphic_additions += len(out)
        return out


class PaillierPrivateKey:
    """Paillier private key holding the factorization ``N = p * q``.

    Decryption uses ``lambda = lcm(p-1, q-1)`` and ``mu = lambda^{-1} mod N``
    (valid because ``g = N + 1``).  A CRT-accelerated path over ``p^2`` and
    ``q^2`` is used by default.
    """

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("given p and q do not match the public key")
        if p == q:
            raise KeyGenerationError("p and q must be distinct primes")
        self.public_key = public_key
        self.p = p
        self.q = q
        self.lam = nt.lcm(p - 1, q - 1)
        self.mu = nt.modinv(self.lam, public_key.n)
        # CRT precomputation
        self.psquare = p * p
        self.qsquare = q * q
        self.p_inverse_mod_q = nt.modinv(p, q)
        self.hp = self._h_function(p, self.psquare)
        self.hq = self._h_function(q, self.qsquare)
        self.counter = OperationCounter()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaillierPrivateKey(bits={self.public_key.key_size})"

    # -- decryption ---------------------------------------------------------
    def _h_function(self, x: int, xsquare: int) -> int:
        """CRT helper ``h = L_x(g^{x-1} mod x^2)^{-1} mod x``."""
        g = self.public_key.g
        lx = self._l_function(pow(g, x - 1, xsquare), x)
        return nt.modinv(lx, x)

    @staticmethod
    def _l_function(u: int, n: int) -> int:
        """Paillier's ``L(u) = (u - 1) / n`` function."""
        return (u - 1) // n

    def raw_decrypt(self, ciphertext: int, use_crt: bool = True) -> int:
        """Decrypt a raw ciphertext to its plaintext residue in ``[0, N)``.

        Args:
            ciphertext: element of ``Z_{N^2}``.
            use_crt: when ``True`` (default) use the CRT-accelerated path;
                the naive path is kept for the ablation benchmark.
        """
        if not 0 < ciphertext < self.public_key.nsquare:
            raise DecryptionError("ciphertext out of range for this key")
        backend = get_backend()
        self.counter.decryptions += 1
        if use_crt:
            mp = (
                (backend.powmod(ciphertext, self.p - 1, self.psquare) - 1)
                // self.p * self.hp % self.p
            )
            mq = (
                (backend.powmod(ciphertext, self.q - 1, self.qsquare) - 1)
                // self.q * self.hq % self.q
            )
            u = (mq - mp) * self.p_inverse_mod_q % self.q
            return (mp + u * self.p) % self.public_key.n
        u = backend.powmod(ciphertext, self.lam, self.public_key.nsquare)
        return (self._l_function(u, self.public_key.n) * self.mu) % self.public_key.n

    def decrypt(self, ciphertext: "Ciphertext", use_crt: bool = True) -> int:
        """Decrypt a :class:`Ciphertext` and decode the signed representation."""
        if ciphertext.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        raw = self.raw_decrypt(ciphertext.value, use_crt=use_crt)
        return self.public_key.decode_signed(raw)

    def decrypt_raw_residue(self, ciphertext: "Ciphertext") -> int:
        """Decrypt without signed decoding (returns the residue in ``[0, N)``).

        Several protocol steps (e.g. SM's ``h = (a+r_a)(b+r_b) mod N``) operate
        on the raw residue, where interpreting large values as negative would
        be incorrect.
        """
        if ciphertext.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return self.raw_decrypt(ciphertext.value)

    def decrypt_vector(self, ciphertexts: Iterable["Ciphertext"]) -> list[int]:
        """Decrypt a sequence of ciphertexts (signed decoding applied)."""
        return [self.decrypt(c) for c in ciphertexts]

    # -- batched kernel ------------------------------------------------------
    def _raw_decrypt_batch(self, raw_values: Sequence[int]) -> list[int]:
        """CRT decryption of raw ciphertexts with hoisted per-key constants.

        Element-wise identical to :meth:`raw_decrypt`; the per-element Python
        overhead (attribute dispatch, bounds bookkeeping) is paid once for the
        whole vector.  Counters advance by one decryption per element.
        """
        nsquare = self.public_key.nsquare
        n = self.public_key.n
        powmod = get_backend().powmod
        p, q = self.p, self.q
        psquare, qsquare = self.psquare, self.qsquare
        hp, hq = self.hp, self.hq
        p_inv_q = self.p_inverse_mod_q
        pm1, qm1 = p - 1, q - 1
        out = []
        for raw in raw_values:
            if not 0 < raw < nsquare:
                raise DecryptionError("ciphertext out of range for this key")
            mp = (powmod(raw, pm1, psquare) - 1) // p * hp % p
            mq = (powmod(raw, qm1, qsquare) - 1) // q * hq % q
            u = (mq - mp) * p_inv_q % q
            out.append((mp + u * p) % n)
        self.counter.decryptions += len(out)
        return out

    def _check_batch_keys(self, ciphertexts: Sequence["Ciphertext"]) -> None:
        for ciphertext in ciphertexts:
            if ciphertext.public_key != self.public_key:
                raise KeyMismatchError(
                    "ciphertext was produced under a different key")

    def decrypt_batch(self, ciphertexts: Sequence["Ciphertext"]) -> list[int]:
        """Vectorized decryption with signed decoding.

        Element-wise identical to ``[self.decrypt(c) for c in ciphertexts]``
        (same CRT path, same counter totals), with per-key constants hoisted
        out of the loop.
        """
        self._check_batch_keys(ciphertexts)
        residues = self._raw_decrypt_batch([c.value for c in ciphertexts])
        decode = self.public_key.decode_signed
        return [decode(residue) for residue in residues]

    def decrypt_residue_batch(
            self, ciphertexts: Sequence["Ciphertext"]) -> list[int]:
        """Vectorized decryption to raw residues in ``[0, N)`` (no decoding)."""
        self._check_batch_keys(ciphertexts)
        return self._raw_decrypt_batch([c.value for c in ciphertexts])


@dataclass(frozen=True)
class PaillierKeyPair:
    """A matching Paillier public/private key pair."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey

    @property
    def key_size(self) -> int:
        """Modulus size in bits."""
        return self.public_key.key_size


class Ciphertext:
    """A Paillier ciphertext with operator sugar for the homomorphic ops.

    The class is intentionally small: it pairs the raw integer with the public
    key it belongs to so that mixing ciphertexts from different key pairs is
    detected immediately, and it exposes the two homomorphic operations the
    paper uses:

    * ``c1 + c2``  — encryption of the sum (ciphertext * ciphertext mod N^2);
    * ``c1 + int`` — encryption of sum with a plaintext constant;
    * ``c1 * int`` — encryption of the product with a plaintext constant
      (ciphertext exponentiation);
    * ``-c1`` and ``c1 - c2`` — negation/subtraction via the ``N - x`` trick.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int) -> None:
        self.public_key = public_key
        self.value = value % public_key.nsquare

    # -- helpers ------------------------------------------------------------
    def _check_same_key(self, other: "Ciphertext") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Ciphertext(0x{self.value:x})"

    def __eq__(self, other: object) -> bool:
        """Ciphertext equality (same key and same raw value).

        Note that two encryptions of the same plaintext are *not* equal unless
        they used the same nonce — that is exactly the semantic-security
        property the protocols rely on.
        """
        return (
            isinstance(other, Ciphertext)
            and other.public_key == self.public_key
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.public_key.n, self.value))

    # -- homomorphic operations ----------------------------------------------
    def __add__(self, other: "Ciphertext | int") -> "Ciphertext":
        if isinstance(other, Ciphertext):
            self._check_same_key(other)
            return Ciphertext(
                self.public_key, self.public_key.raw_add(self.value, other.value)
            )
        if isinstance(other, int):
            encoded = self.public_key.encode_signed(other)
            # Adding a known constant does not need a fresh encryption: we use
            # the deterministic (1 + c*N) ciphertext of the constant.
            constant = (1 + encoded * self.public_key.n) % self.public_key.nsquare
            return Ciphertext(
                self.public_key, self.public_key.raw_add(self.value, constant)
            )
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "Ciphertext":
        return self * -1

    def __sub__(self, other: "Ciphertext | int") -> "Ciphertext":
        if isinstance(other, Ciphertext):
            return self + (-other)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar: int) -> "Ciphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        encoded = scalar % self.public_key.n
        return Ciphertext(
            self.public_key, self.public_key.raw_scalar_mul(self.value, encoded)
        )

    __rmul__ = __mul__

    def randomize(self, rng: Random | None = None) -> "Ciphertext":
        """Return a re-randomized encryption of the same plaintext.

        Multiplying by a fresh encryption of zero changes the ciphertext
        representation without changing the plaintext; protocol steps use this
        so that forwarded ciphertexts cannot be linked to earlier ones.
        """
        zero = self.public_key.encrypt_zero(rng)
        return self + zero


def generate_keypair(key_size: int = DEFAULT_KEY_SIZE,
                     rng: Random | None = None) -> PaillierKeyPair:
    """Generate a fresh Paillier key pair.

    Args:
        key_size: modulus size in bits (the paper's ``K``; 512 or 1024 in the
            evaluation, smaller values are accepted for fast tests).
        rng: optional deterministic randomness source (tests only — do not use
            a seeded generator for real deployments).

    Returns:
        A :class:`PaillierKeyPair`.
    """
    if key_size < 16:
        raise KeyGenerationError(f"key size too small: {key_size}")
    p, q = nt.generate_prime_pair(key_size, rng)
    public = PaillierPublicKey(p * q)
    private = PaillierPrivateKey(public, p, q)
    return PaillierKeyPair(public, private)
