"""Paillier cryptosystem with the homomorphic operations used by the paper.

The SkNN protocols (Elmehdwi, Samanthula & Jiang, ICDE 2014) assume the data
owner encrypts every attribute value with the Paillier cryptosystem
[Paillier, EUROCRYPT'99].  This module provides a from-scratch implementation
with the three properties the paper relies on (Section 2.3):

* homomorphic addition:       ``E(a) * E(b) mod N^2  == E(a + b)``
* homomorphic scalar multiply: ``E(a) ** b  mod N^2  == E(a * b)``
* semantic security (probabilistic encryption with a fresh random nonce).

Implementation notes
--------------------
* The generator is fixed to ``g = N + 1`` which allows the encryption
  ``g^m = 1 + m*N (mod N^2)`` fast path and is standard practice.
* Decryption uses the CRT over ``p^2`` and ``q^2`` which is roughly 3x faster
  than the textbook formula; the naive path is kept for the ablation bench.
* Every public/private key tracks how many encryptions, decryptions and
  exponentiations have been performed.  The paper's complexity analysis
  (Section 4.4) is expressed in exactly those operation counts, so the
  counters let the test-suite check the analytic model against reality.
* Negative intermediate values (e.g. ``x_i - y_i`` inside SSED) are
  represented as elements of ``Z_N`` in the upper half of the range, exactly
  as the paper's ``N - x  ==  -x (mod N)`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Sequence

from repro.crypto import numtheory as nt
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)

__all__ = [
    "OperationCounter",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierKeyPair",
    "Ciphertext",
    "generate_keypair",
    "DEFAULT_KEY_SIZE",
]

#: Default modulus size (bits).  The paper evaluates K = 512 and K = 1024;
#: tests use smaller keys for speed and benchmarks choose explicitly.
DEFAULT_KEY_SIZE = 512


@dataclass
class OperationCounter:
    """Counts the primitive cryptographic operations performed with a key.

    The paper reports protocol complexity in terms of *encryptions*,
    *decryptions* and *exponentiations* (Section 4.4).  A counter instance is
    attached to each key object, and protocol-level statistics aggregate them.
    """

    encryptions: int = 0
    decryptions: int = 0
    exponentiations: int = 0
    homomorphic_additions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.encryptions = 0
        self.decryptions = 0
        self.exponentiations = 0
        self.homomorphic_additions = 0

    def snapshot(self) -> dict[str, int]:
        """Return the current counts as a plain dictionary."""
        return {
            "encryptions": self.encryptions,
            "decryptions": self.decryptions,
            "exponentiations": self.exponentiations,
            "homomorphic_additions": self.homomorphic_additions,
        }

    def merged_with(self, other: "OperationCounter") -> "OperationCounter":
        """Return a new counter holding the sum of ``self`` and ``other``."""
        return OperationCounter(
            encryptions=self.encryptions + other.encryptions,
            decryptions=self.decryptions + other.decryptions,
            exponentiations=self.exponentiations + other.exponentiations,
            homomorphic_additions=(
                self.homomorphic_additions + other.homomorphic_additions
            ),
        )


class PaillierPublicKey:
    """Paillier public key ``pk = (N, g)`` with ``g = N + 1``.

    The public key performs encryption and all ciphertext-space homomorphic
    operations.  It never needs (and never holds) the factorization of ``N``.
    """

    def __init__(self, n: int) -> None:
        if n < 15:
            raise KeyGenerationError(f"modulus too small: {n}")
        self.n = n
        self.nsquare = n * n
        self.g = n + 1
        #: maximum plaintext strictly below this bound
        self.max_plaintext = n
        self.counter = OperationCounter()

    # -- representation ----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaillierPublicKey(bits={self.n.bit_length()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("PaillierPublicKey", self.n))

    @property
    def key_size(self) -> int:
        """Modulus size in bits (the paper's parameter ``K``)."""
        return self.n.bit_length()

    # -- plaintext encoding -------------------------------------------------
    def encode_signed(self, value: int) -> int:
        """Map a (possibly negative) integer into ``Z_N``.

        Negative values are represented as ``N - |value|`` which is the
        paper's ``-x == N - x (mod N)`` convention.  Values must satisfy
        ``|value| < N / 2`` so that encoding is unambiguous.
        """
        if value >= 0:
            if value >= self.n:
                raise EncryptionError(
                    f"plaintext {value} out of range for modulus of "
                    f"{self.key_size} bits"
                )
            return value
        if -value >= self.n // 2:
            raise EncryptionError(
                f"negative plaintext {value} too large in magnitude for modulus"
            )
        return self.n + value

    def decode_signed(self, value: int) -> int:
        """Inverse of :meth:`encode_signed` (values above N/2 are negative)."""
        value %= self.n
        if value > self.n // 2:
            return value - self.n
        return value

    # -- encryption ---------------------------------------------------------
    def raw_encrypt(self, plaintext: int, r_value: int | None = None,
                    rng: Random | None = None) -> int:
        """Encrypt ``plaintext`` (already reduced mod N) to a raw ciphertext.

        ``c = (1 + m*N) * r^N  mod N^2`` using the ``g = N+1`` fast path.

        Args:
            plaintext: message in ``[0, N)``.
            r_value: optional explicit nonce in ``Z_N^*`` (used by tests and
                worked examples); when omitted a fresh random nonce is drawn.
            rng: optional deterministic randomness source.
        """
        m = plaintext % self.n
        if r_value is None:
            r_value = nt.random_in_zn_star(self.n, rng)
        nude = (1 + m * self.n) % self.nsquare
        obfuscator = pow(r_value, self.n, self.nsquare)
        self.counter.encryptions += 1
        return (nude * obfuscator) % self.nsquare

    def encrypt(self, value: int, r_value: int | None = None,
                rng: Random | None = None) -> "Ciphertext":
        """Encrypt a signed integer and wrap it in a :class:`Ciphertext`."""
        encoded = self.encode_signed(value)
        return Ciphertext(self, self.raw_encrypt(encoded, r_value, rng))

    def encrypt_vector(self, values: Sequence[int],
                       rng: Random | None = None) -> list["Ciphertext"]:
        """Attribute-wise encryption of a vector (the paper's ``Epk(t_i)``)."""
        return [self.encrypt(v, rng=rng) for v in values]

    def encrypt_zero(self, rng: Random | None = None) -> "Ciphertext":
        """Fresh probabilistic encryption of zero (used for re-randomization)."""
        return self.encrypt(0, rng=rng)

    # -- ciphertext-space helpers -------------------------------------------
    def raw_add(self, c1: int, c2: int) -> int:
        """Homomorphic addition of two raw ciphertexts."""
        self.counter.homomorphic_additions += 1
        return (c1 * c2) % self.nsquare

    def raw_scalar_mul(self, c: int, scalar: int) -> int:
        """Homomorphic multiplication of a raw ciphertext by a plaintext scalar."""
        self.counter.exponentiations += 1
        return pow(c, scalar % self.n if scalar >= 0 else scalar % self.n, self.nsquare)


class PaillierPrivateKey:
    """Paillier private key holding the factorization ``N = p * q``.

    Decryption uses ``lambda = lcm(p-1, q-1)`` and ``mu = lambda^{-1} mod N``
    (valid because ``g = N + 1``).  A CRT-accelerated path over ``p^2`` and
    ``q^2`` is used by default.
    """

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("given p and q do not match the public key")
        if p == q:
            raise KeyGenerationError("p and q must be distinct primes")
        self.public_key = public_key
        self.p = p
        self.q = q
        self.lam = nt.lcm(p - 1, q - 1)
        self.mu = nt.modinv(self.lam, public_key.n)
        # CRT precomputation
        self.psquare = p * p
        self.qsquare = q * q
        self.p_inverse_mod_q = nt.modinv(p, q)
        self.hp = self._h_function(p, self.psquare)
        self.hq = self._h_function(q, self.qsquare)
        self.counter = OperationCounter()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaillierPrivateKey(bits={self.public_key.key_size})"

    # -- decryption ---------------------------------------------------------
    def _h_function(self, x: int, xsquare: int) -> int:
        """CRT helper ``h = L_x(g^{x-1} mod x^2)^{-1} mod x``."""
        g = self.public_key.g
        lx = self._l_function(pow(g, x - 1, xsquare), x)
        return nt.modinv(lx, x)

    @staticmethod
    def _l_function(u: int, n: int) -> int:
        """Paillier's ``L(u) = (u - 1) / n`` function."""
        return (u - 1) // n

    def raw_decrypt(self, ciphertext: int, use_crt: bool = True) -> int:
        """Decrypt a raw ciphertext to its plaintext residue in ``[0, N)``.

        Args:
            ciphertext: element of ``Z_{N^2}``.
            use_crt: when ``True`` (default) use the CRT-accelerated path;
                the naive path is kept for the ablation benchmark.
        """
        if not 0 < ciphertext < self.public_key.nsquare:
            raise DecryptionError("ciphertext out of range for this key")
        self.counter.decryptions += 1
        if use_crt:
            mp = (
                self._l_function(pow(ciphertext, self.p - 1, self.psquare), self.p)
                * self.hp
                % self.p
            )
            mq = (
                self._l_function(pow(ciphertext, self.q - 1, self.qsquare), self.q)
                * self.hq
                % self.q
            )
            u = (mq - mp) * self.p_inverse_mod_q % self.q
            return (mp + u * self.p) % self.public_key.n
        u = pow(ciphertext, self.lam, self.public_key.nsquare)
        return (self._l_function(u, self.public_key.n) * self.mu) % self.public_key.n

    def decrypt(self, ciphertext: "Ciphertext", use_crt: bool = True) -> int:
        """Decrypt a :class:`Ciphertext` and decode the signed representation."""
        if ciphertext.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        raw = self.raw_decrypt(ciphertext.value, use_crt=use_crt)
        return self.public_key.decode_signed(raw)

    def decrypt_raw_residue(self, ciphertext: "Ciphertext") -> int:
        """Decrypt without signed decoding (returns the residue in ``[0, N)``).

        Several protocol steps (e.g. SM's ``h = (a+r_a)(b+r_b) mod N``) operate
        on the raw residue, where interpreting large values as negative would
        be incorrect.
        """
        if ciphertext.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return self.raw_decrypt(ciphertext.value)

    def decrypt_vector(self, ciphertexts: Iterable["Ciphertext"]) -> list[int]:
        """Decrypt a sequence of ciphertexts (signed decoding applied)."""
        return [self.decrypt(c) for c in ciphertexts]


@dataclass(frozen=True)
class PaillierKeyPair:
    """A matching Paillier public/private key pair."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey

    @property
    def key_size(self) -> int:
        """Modulus size in bits."""
        return self.public_key.key_size


class Ciphertext:
    """A Paillier ciphertext with operator sugar for the homomorphic ops.

    The class is intentionally small: it pairs the raw integer with the public
    key it belongs to so that mixing ciphertexts from different key pairs is
    detected immediately, and it exposes the two homomorphic operations the
    paper uses:

    * ``c1 + c2``  — encryption of the sum (ciphertext * ciphertext mod N^2);
    * ``c1 + int`` — encryption of sum with a plaintext constant;
    * ``c1 * int`` — encryption of the product with a plaintext constant
      (ciphertext exponentiation);
    * ``-c1`` and ``c1 - c2`` — negation/subtraction via the ``N - x`` trick.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int) -> None:
        self.public_key = public_key
        self.value = value % public_key.nsquare

    # -- helpers ------------------------------------------------------------
    def _check_same_key(self, other: "Ciphertext") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Ciphertext(0x{self.value:x})"

    def __eq__(self, other: object) -> bool:
        """Ciphertext equality (same key and same raw value).

        Note that two encryptions of the same plaintext are *not* equal unless
        they used the same nonce — that is exactly the semantic-security
        property the protocols rely on.
        """
        return (
            isinstance(other, Ciphertext)
            and other.public_key == self.public_key
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.public_key.n, self.value))

    # -- homomorphic operations ----------------------------------------------
    def __add__(self, other: "Ciphertext | int") -> "Ciphertext":
        if isinstance(other, Ciphertext):
            self._check_same_key(other)
            return Ciphertext(
                self.public_key, self.public_key.raw_add(self.value, other.value)
            )
        if isinstance(other, int):
            encoded = self.public_key.encode_signed(other)
            # Adding a known constant does not need a fresh encryption: we use
            # the deterministic (1 + c*N) ciphertext of the constant.
            constant = (1 + encoded * self.public_key.n) % self.public_key.nsquare
            return Ciphertext(
                self.public_key, self.public_key.raw_add(self.value, constant)
            )
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "Ciphertext":
        return self * -1

    def __sub__(self, other: "Ciphertext | int") -> "Ciphertext":
        if isinstance(other, Ciphertext):
            return self + (-other)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar: int) -> "Ciphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        encoded = scalar % self.public_key.n
        return Ciphertext(
            self.public_key, self.public_key.raw_scalar_mul(self.value, encoded)
        )

    __rmul__ = __mul__

    def randomize(self, rng: Random | None = None) -> "Ciphertext":
        """Return a re-randomized encryption of the same plaintext.

        Multiplying by a fresh encryption of zero changes the ciphertext
        representation without changing the plaintext; protocol steps use this
        so that forwarded ciphertexts cannot be linked to earlier ones.
        """
        zero = self.public_key.encrypt_zero(rng)
        return self + zero


def generate_keypair(key_size: int = DEFAULT_KEY_SIZE,
                     rng: Random | None = None) -> PaillierKeyPair:
    """Generate a fresh Paillier key pair.

    Args:
        key_size: modulus size in bits (the paper's ``K``; 512 or 1024 in the
            evaluation, smaller values are accepted for fast tests).
        rng: optional deterministic randomness source (tests only — do not use
            a seeded generator for real deployments).

    Returns:
        A :class:`PaillierKeyPair`.
    """
    if key_size < 16:
        raise KeyGenerationError(f"key size too small: {key_size}")
    p, q = nt.generate_prime_pair(key_size, rng)
    public = PaillierPublicKey(p * q)
    private = PaillierPrivateKey(public, p, q)
    return PaillierKeyPair(public, private)
