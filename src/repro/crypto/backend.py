"""Pluggable bigint-arithmetic backend for the crypto kernel.

Every Paillier operation in this reproduction bottoms out in three modular
primitives — ``powmod``, ``mulmod`` and ``invert`` — executed on integers of
1-2 kilobits.  The paper's complexity analysis (Section 4.4) counts protocol
cost in exactly these operations, so making them fast multiplies through every
protocol, shard and benchmark figure.

This module routes all of that traffic through a small backend interface:

* :class:`PythonBackend` — the default; plain ``pow``/``%`` on CPython's
  arbitrary-precision integers, with ``pow(a, -1, m)`` for C-speed modular
  inversion.  Always available.
* :class:`Gmpy2Backend` — used automatically when ``gmpy2`` is importable;
  GMP's assembly kernels are typically 5-20x faster on 512/1024-bit operands.
  The repository never *requires* gmpy2 — it is detected, never installed.

Backend selection (first match wins):

1. an explicit :func:`set_backend` call (the CLI's ``--crypto-backend`` flag);
2. the ``REPRO_CRYPTO_BACKEND`` environment variable (``python``, ``gmpy2``
   or ``auto``);
3. ``auto``: gmpy2 when importable, pure Python otherwise.

The module also provides :class:`FixedBaseExp`, a fixed-base windowed
exponentiation table (the "comb" method).  For a fixed base ``b`` it
precomputes ``b**(d << w*i)`` for every window row ``i`` and digit ``d``,
after which ``b**e`` costs only ``ceil(bits/w)`` modular multiplications and
*zero* squarings — 5-7x faster than a cold ``pow`` at K=512 even from pure
Python.  The Paillier layer uses it for the recurring obfuscator base
``h = y**N mod N**2`` (see :mod:`repro.crypto.paillier`), turning batched
encryption into a stream of cheap multiplications.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

from repro.exceptions import ConfigurationError, CryptoError

__all__ = [
    "BigintBackend",
    "PythonBackend",
    "Gmpy2Backend",
    "FixedBaseExp",
    "available_backends",
    "get_backend",
    "set_backend",
    "resolve_backend",
    "backend_from_env",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted when no backend was set programmatically.
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"


class BigintBackend:
    """Interface of a bigint-arithmetic backend (three modular primitives)."""

    #: short name used by the CLI flag and the env var ("python", "gmpy2")
    name = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` (exponent >= 0)."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        """``a * b mod modulus``."""
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        """Multiplicative inverse of ``a`` modulo ``modulus``.

        Raises:
            CryptoError: when ``a`` is not invertible.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class PythonBackend(BigintBackend):
    """Pure-Python backend on CPython's built-in arbitrary-precision ints."""

    name = "python"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return (a * b) % modulus

    def invert(self, a: int, modulus: int) -> int:
        try:
            return pow(a, -1, modulus)
        except ValueError as exc:
            raise CryptoError(
                f"{a} has no inverse modulo {modulus}") from exc


class Gmpy2Backend(BigintBackend):
    """GMP-accelerated backend; constructed only when ``gmpy2`` imports."""

    name = "gmpy2"

    def __init__(self) -> None:
        import gmpy2  # raises ImportError when unavailable

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(self._mpz(base), exponent, modulus))

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(self._mpz(a), modulus))
        except ZeroDivisionError as exc:
            raise CryptoError(
                f"{a} has no inverse modulo {modulus}") from exc


def _try_gmpy2() -> Gmpy2Backend | None:
    """Instantiate the gmpy2 backend, or ``None`` when gmpy2 is missing."""
    try:
        return Gmpy2Backend()
    except ImportError:
        return None


def available_backends() -> list[str]:
    """Names of the backends usable on this machine (always incl. python)."""
    names = ["python"]
    if _try_gmpy2() is not None:
        names.append("gmpy2")
    return names


def resolve_backend(name: str) -> BigintBackend:
    """Build a backend instance from its name (``python``/``gmpy2``/``auto``).

    ``auto`` prefers gmpy2 when importable and falls back to pure Python.

    Raises:
        ConfigurationError: for an unknown name, or when ``gmpy2`` was
            requested explicitly but is not importable.
    """
    normalized = name.strip().lower()
    if normalized == "python":
        return PythonBackend()
    if normalized == "gmpy2":
        backend = _try_gmpy2()
        if backend is None:
            raise ConfigurationError(
                "crypto backend 'gmpy2' requested but gmpy2 is not importable"
            )
        return backend
    if normalized == "auto":
        return _try_gmpy2() or PythonBackend()
    raise ConfigurationError(
        f"unknown crypto backend {name!r} (choose from python, gmpy2, auto)"
    )


def backend_from_env() -> BigintBackend:
    """Resolve the backend from ``REPRO_CRYPTO_BACKEND`` (default ``auto``)."""
    return resolve_backend(os.environ.get(BACKEND_ENV_VAR, "auto"))


_active: BigintBackend | None = None
_active_lock = threading.Lock()


def get_backend() -> BigintBackend:
    """The process-wide active backend (resolved lazily on first use)."""
    global _active
    if _active is None:
        with _active_lock:
            if _active is None:
                _active = backend_from_env()
    return _active


def set_backend(backend: BigintBackend | str | None) -> BigintBackend:
    """Select the process-wide backend.

    Args:
        backend: a :class:`BigintBackend` instance, a name accepted by
            :func:`resolve_backend`, or ``None`` to re-resolve from the
            environment on next use.

    Returns:
        The backend now active (for ``None``, the freshly re-resolved one).
    """
    global _active
    with _active_lock:
        if backend is None:
            _active = None
        elif isinstance(backend, str):
            _active = resolve_backend(backend)
        else:
            _active = backend
    return get_backend()


class FixedBaseExp:
    """Fixed-base windowed exponentiation (comb method) for one base.

    Precomputes ``table[i][d] = base ** (d << (window * i)) mod modulus`` for
    every window position ``i`` and digit ``d in [1, 2**window)``.  A later
    :meth:`pow` call then assembles ``base ** e`` as the product of one table
    entry per non-zero exponent digit: at most ``ceil(max_exponent_bits /
    window)`` modular multiplications and no squarings at all.

    The precomputation costs roughly ``rows * 2**window`` multiplications and
    ``rows * window`` squarings, so the table pays off once more than a few
    dozen exponentiations share the base.  Paillier obfuscator generation
    (thousands of exponentiations of one ``h = y**N``) is the ideal consumer.

    Args:
        base: the fixed base.
        modulus: the modulus (e.g. ``N**2``).
        max_exponent_bits: largest exponent bit length :meth:`pow` must
            support; larger exponents raise :class:`CryptoError`.
        window: window width in bits (default 8; table memory grows as
            ``2**window`` per row while per-call work shrinks as ``1/window``).
        backend: backend used for the precomputation and the per-call
            multiplications (default: the active backend).
    """

    def __init__(self, base: int, modulus: int, max_exponent_bits: int,
                 window: int = 8, backend: BigintBackend | None = None) -> None:
        if max_exponent_bits < 1:
            raise CryptoError("max_exponent_bits must be positive")
        if not 1 <= window <= 16:
            raise CryptoError("window width must be in [1, 16]")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.max_exponent_bits = max_exponent_bits
        self.backend = backend if backend is not None else get_backend()
        self.rows = (max_exponent_bits + window - 1) // window
        self._digit_mask = (1 << window) - 1
        self._table = self._build()

    def _build(self) -> list[list[int]]:
        mulmod = self.backend.mulmod
        modulus = self.modulus
        digits = 1 << self.window
        table: list[list[int]] = []
        row_base = self.base
        for _ in range(self.rows):
            row = [1] * digits
            acc = 1
            for d in range(1, digits):
                acc = mulmod(acc, row_base, modulus)
                row[d] = acc
            table.append(row)
            # next row's base is row_base ** (2 ** window)
            for _ in range(self.window):
                row_base = mulmod(row_base, row_base, modulus)
        return table

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` via table lookups.

        Uses the *currently active* backend for the multiplications (the
        table entries are plain integers, independent of the backend that
        built them), so a later :func:`set_backend` call takes effect even
        on combs cached inside long-lived key objects.

        Args:
            exponent: non-negative, at most ``max_exponent_bits`` bits.
        """
        if exponent < 0:
            raise CryptoError("FixedBaseExp.pow requires a non-negative exponent")
        if exponent.bit_length() > self.max_exponent_bits:
            raise CryptoError(
                f"exponent of {exponent.bit_length()} bits exceeds the "
                f"precomputed range of {self.max_exponent_bits} bits"
            )
        mulmod = get_backend().mulmod
        modulus = self.modulus
        mask = self._digit_mask
        window = self.window
        table = self._table
        acc = 1
        row = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = mulmod(acc, table[row][digit], modulus)
            exponent >>= window
            row += 1
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"FixedBaseExp(bits={self.max_exponent_bits}, "
                f"window={self.window}, rows={self.rows})")
