"""Precomputed Paillier randomness for hot serving paths.

Paillier encryption under the ``g = N + 1`` fast path is

    ``E(m) = (1 + m*N) * r^N  mod N^2``

where the modular exponentiation ``r^N mod N^2`` (the *obfuscation factor*)
dominates the cost — the ``(1 + m*N)`` part is a single multiplication.  The
factor does not depend on the message, so a serving system can compute a stock
of factors *off the hot path* (at deployment time, or between batches) and
turn every hot-path encryption into one modular multiplication.

Two quantities are precomputed, and with ``g = N + 1`` they coincide:

* **obfuscation factors** ``r^N mod N^2`` for fresh encryptions, and
* **encryptions of zero** — because ``E(0) = (1 + 0*N) * r^N = r^N mod N^2``,
  a pooled factor *is* a fresh probabilistic encryption of zero, ready for
  ciphertext re-randomization.

:class:`RandomnessPool` therefore keeps a single store of factors and exposes
both views.  Every factor is handed out **exactly once** (popped from the
store): reusing an obfuscation factor across two encryptions would make the
pair linkable, which breaks the semantic-security property the SkNN protocols
rely on.  The pool is thread-safe so concurrent query sessions can share one.

Used by :mod:`repro.service` for the delivery-phase masking of
:class:`~repro.service.sharding.ShardedCloud` and (optionally) for Bob-side
query encryption in :class:`~repro.core.roles.QueryClient`.
"""

from __future__ import annotations

import threading
from collections import deque
from random import Random

from repro.crypto import numtheory as nt
from repro.crypto.backend import get_backend
from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.exceptions import ConfigurationError

__all__ = ["RandomnessPool"]

#: Default number of factors precomputed by the constructor.
DEFAULT_POOL_SIZE = 128


class RandomnessPool:
    """A pool of single-use Paillier obfuscation factors ``r^N mod N^2``.

    Args:
        public_key: the Paillier public key the factors belong to.
        size: number of factors to precompute immediately (and the refill
            batch size used when the pool runs dry).
        rng: optional deterministic randomness source (tests only).
        precompute: when ``False`` the constructor does not precompute; call
            :meth:`refill` explicitly (useful when construction must be cheap).

    Attributes:
        hits: hot-path requests served from the precomputed store.
        misses: hot-path requests that had to compute a factor on demand
            (the pool was empty — a sign ``size`` is too small for the load).
    """

    def __init__(self, public_key: PaillierPublicKey, size: int = DEFAULT_POOL_SIZE,
                 rng: Random | None = None, precompute: bool = True) -> None:
        if size < 1:
            raise ConfigurationError("randomness pool size must be >= 1")
        self.public_key = public_key
        self.size = size
        self.rng = rng
        self._factors: deque[int] = deque()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.precomputed_total = 0
        if precompute:
            self.refill()

    # -- precomputation (off the hot path) ----------------------------------
    def _fresh_factor(self) -> int:
        """Compute one obfuscation factor (one modular exponentiation)."""
        r_value = nt.random_in_zn_star(self.public_key.n, self.rng)
        return get_backend().powmod(r_value, self.public_key.n,
                                    self.public_key.nsquare)

    def refill(self, count: int | None = None) -> int:
        """Top the store up by ``count`` factors (default: the pool size).

        This is the expensive step (one ``r^N mod N^2`` exponentiation per
        factor) and is meant to run off the hot path.  Returns the number of
        factors computed.
        """
        count = self.size if count is None else count
        fresh = [self._fresh_factor() for _ in range(count)]
        with self._lock:
            self._factors.extend(fresh)
            self.precomputed_total += len(fresh)
        return len(fresh)

    @classmethod
    def from_factors(cls, public_key: PaillierPublicKey,
                     factors: "list[int]") -> "RandomnessPool":
        """Wrap already-computed factors (e.g. a pool slice shipped to a
        worker process) in a pool; no precomputation happens locally."""
        pool = cls(public_key, size=max(len(factors), 1), precompute=False)
        with pool._lock:
            pool._factors.extend(factors)
        return pool

    # -- persistence support -------------------------------------------------
    def drain_factors(self) -> "list[int]":
        """Remove and return every stored factor (for persisting to disk).

        Draining (rather than copying) preserves the single-use guarantee:
        a factor is either in memory or in the cache file, never both.
        """
        with self._lock:
            taken = list(self._factors)
            self._factors.clear()
        return taken

    def adopt_factors(self, factors: "list[int]") -> int:
        """Add already-computed factors (e.g. reloaded from a pool cache).

        The factors count toward ``precomputed_total`` (they were computed
        offline, just not by this process).  Returns the number adopted.
        """
        with self._lock:
            self._factors.extend(factors)
            self.precomputed_total += len(factors)
        return len(factors)

    # -- hot path -----------------------------------------------------------
    def take_factor(self) -> int:
        """Pop one single-use factor; computes on demand when the pool is dry."""
        with self._lock:
            if self._factors:
                self.hits += 1
                return self._factors.popleft()
            self.misses += 1
        return self._fresh_factor()

    def take_available(self, count: int) -> "list[int]":
        """Pop up to ``count`` factors *without* computing missing ones.

        The batch encryption path uses this to consume whatever the pool has
        and cover the shortfall with its own (comb-windowed) obfuscators, so
        a dry pool degrades gracefully instead of stalling the hot path.
        ``hits`` advances by the number served, ``misses`` by the shortfall.
        """
        with self._lock:
            served = min(count, len(self._factors))
            taken = [self._factors.popleft() for _ in range(served)]
            self.hits += served
            self.misses += count - served
        return taken

    def take_available_one(self) -> "int | None":
        """Pop one factor, or ``None`` when dry (no on-demand computation)."""
        taken = self.take_available(1)
        return taken[0] if taken else None

    def encrypt(self, value: int) -> Ciphertext:
        """Encrypt a signed integer using one pooled factor (cheap multiply).

        Produces the same distribution of ciphertexts as
        :meth:`~repro.crypto.paillier.PaillierPublicKey.encrypt`; the key's
        encryption counter is incremented so operation accounting stays
        comparable with the non-pooled path.
        """
        pk = self.public_key
        encoded = pk.encode_signed(value)
        nude = (1 + encoded * pk.n) % pk.nsquare
        pk.counter.encryptions += 1
        return Ciphertext(pk, (nude * self.take_factor()) % pk.nsquare)

    def encrypt_batch(self, values: "list[int]") -> "list[Ciphertext]":
        """Vectorized pooled encryption (delegates to the key's batch kernel).

        Available factors are consumed first; any shortfall falls back to the
        key's fixed-base comb path, so the call never blocks on a dry pool.
        Counter parity with the non-pooled batch path is exact.
        """
        return self.public_key.encrypt_batch(values, rng=self.rng, pool=self)

    def encrypt_zero(self) -> Ciphertext:
        """A fresh probabilistic encryption of zero (one pooled factor)."""
        pk = self.public_key
        pk.counter.encryptions += 1
        return Ciphertext(pk, self.take_factor())

    def rerandomize(self, ciphertext: Ciphertext) -> Ciphertext:
        """Re-randomize a ciphertext by multiplying in a pooled ``E(0)``."""
        pk = ciphertext.public_key
        if pk != self.public_key:
            raise ConfigurationError(
                "ciphertext belongs to a different public key than the pool")
        return Ciphertext(pk, pk.raw_add(ciphertext.value, self.take_factor()))

    # -- introspection ------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Factors currently available without recomputation."""
        with self._lock:
            return len(self._factors)

    def stats(self) -> dict[str, int]:
        """Pool effectiveness counters (for reports and benchmarks).

        The whole snapshot is taken under the pool lock, so the returned
        fields are mutually consistent even while the hot path is popping
        factors concurrently.
        """
        with self._lock:
            return {
                "remaining": len(self._factors),
                "hits": self.hits,
                "misses": self.misses,
                "precomputed_total": self.precomputed_total,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"RandomnessPool(size={self.size}, remaining={self.remaining}, "
                f"hits={self.hits}, misses={self.misses})")
