"""repro — Secure k-Nearest Neighbor query over encrypted data (SkNN).

A from-scratch Python reproduction of *"Secure k-Nearest Neighbor Query over
Encrypted Data in Outsourced Environments"* (Elmehdwi, Samanthula & Jiang,
ICDE 2014).  The package contains:

* :mod:`repro.crypto` — Paillier cryptosystem and number theory;
* :mod:`repro.network` — the simulated federated cloud (channels, parties);
* :mod:`repro.protocols` — the secure sub-protocols SM, SSED, SBD, SMIN,
  SMIN_n, SBOR of Section 3;
* :mod:`repro.db` — schemas, tables, encrypted tables, datasets, plaintext kNN;
* :mod:`repro.core` — the SkNN_b and SkNN_m query protocols and the
  end-to-end :class:`SkNNSystem`;
* :mod:`repro.baselines` — plaintext kNN and the ASPE comparator;
* :mod:`repro.analysis` — the analytic cost model and calibrated projections
  used to regenerate the paper's figures;
* :mod:`repro.service` — the multi-client serving layer: sharded encrypted
  storage, batched query scheduling and precomputed ciphertext randomness;
* :mod:`repro.transport` — the distributed runtime: C1 and C2 as separate
  OS processes exchanging length-prefixed TCP frames (party daemons, wire
  codec, local supervisor, remote query clients).

Quickstart::

    from repro import SkNNSystem
    from repro.db import heart_disease_table, heart_disease_example_query

    table = heart_disease_table(include_diagnosis=False)
    system = SkNNSystem.setup(table, key_size=256, mode="secure")
    print(system.query(heart_disease_example_query(), k=2))
"""

from repro.core import (
    DataOwner,
    FederatedCloud,
    ParallelSkNNBasic,
    QueryAnswer,
    QueryClient,
    SkNNBasic,
    SkNNSecure,
    SkNNSystem,
)
from repro.crypto import (
    PrecomputeConfig,
    PrecomputeEngine,
    RandomnessPool,
    generate_keypair,
)
from repro.db import Schema, Table
from repro.service import QueryServer, ShardedCloud

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "SkNNSystem",
    "SkNNBasic",
    "SkNNSecure",
    "ParallelSkNNBasic",
    "DataOwner",
    "QueryClient",
    "QueryAnswer",
    "FederatedCloud",
    "QueryServer",
    "ShardedCloud",
    "PrecomputeConfig",
    "PrecomputeEngine",
    "RandomnessPool",
    "generate_keypair",
    "Schema",
    "Table",
]
