"""Sharded encrypted store: N C1-style shards queried scatter-gather style.

The paper's C1 hosts the whole encrypted table ``Epk(T)`` and its per-record
distance work is embarrassingly parallel (Section 5.3).  A serving deployment
takes the natural next step: partition the table across ``N`` shard servers,
run the SkNN_b distance phase on every shard concurrently, have each shard
return only its local top-k candidates, and merge the per-shard candidates
into the global top-k — a scatter-gather query plan over C1 replicas, as in
the related multi-server spatial-query systems (one Flask ``server_i`` per
partition).

Trust model: every shard is a C1-role party — it sees only ciphertexts plus
the plaintext distances that SkNN_b already reveals by design, so splitting
C1 into shards does not change the protocol's leakage profile.  The single C2
(key holder) and the delivery phase are unchanged.

:class:`ShardedCloud` keeps the shards inside one process and executes their
record scans on a shared :class:`~repro.core.parallel.PersistentWorkerPool`
(created once, reused across queries).  Batches of queries share a single
scan pass: each worker task carries one contiguous *chunk* of a shard's
records and *all* queries of the batch, and the whole chunk runs through one
vectorized crypto-kernel call — record serialization, key-object
reconstruction, obfuscator precomputation and batched CRT decryption are all
amortized across the chunk (see
:func:`~repro.core.parallel.ssed_chunk_worker`).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.cloud import FederatedCloud
from repro.core.parallel import (
    ChunkWorkerTask,
    PersistentWorkerPool,
    chunk_records,
    ssed_chunk_worker,
)
from repro.core.roles import ResultShares
from repro.core.sknn_base import RunStatsRecorder, SkNNRunReport
from repro.core.sknn_basic import SkNNBasic
from repro.crypto.paillier import Ciphertext
from repro.crypto.precompute import PrecomputeEngine
from repro.crypto.randomness_pool import RandomnessPool
from repro.db.encrypted_table import EncryptedRecord
from repro.exceptions import ConfigurationError
from repro.resilience.policy import Deadline

__all__ = ["TableShard", "ShardCandidate", "BatchPhaseTimings", "ShardedCloud"]


@dataclass(frozen=True)
class TableShard:
    """One C1-style shard: a contiguous slice of the encrypted table.

    Record indices are *global* (positions in the unsharded table) so that
    distance ties across shards break by insertion order, exactly like the
    plaintext oracle and the single-server protocols.
    """

    shard_id: int
    start: int
    records: tuple[EncryptedRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def global_indices(self) -> range:
        """The global record indices this shard covers."""
        return range(self.start, self.start + len(self.records))


@dataclass(frozen=True)
class ShardCandidate:
    """One top-k candidate produced by a shard's local scan."""

    distance: int
    global_index: int
    shard_id: int


@dataclass
class BatchPhaseTimings:
    """Wall-clock breakdown of one batched scatter-gather execution."""

    queries: int
    shards: int
    records: int
    distance_seconds: float = 0.0
    merge_seconds: float = 0.0
    deliver_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total batch time across the three phases."""
        return self.distance_seconds + self.merge_seconds + self.deliver_seconds


class ShardedCloud:
    """The encrypted table partitioned across N C1 shards, queried in batches.

    Args:
        cloud: the federated cloud already hosting ``Epk(T)`` (its C1 plays
            the role of the shard coordinator; its C2 is the key holder).
        shards: number of partitions (each at least one record).
        workers: worker count for the shared persistent pool.
        backend: pool backend (``"process"``, ``"thread"`` or ``"serial"``).
        pool: optionally share an existing pool instead of owning one.
        randomness_pool: optional precomputed Paillier randomness; when given,
            the delivery-phase mask encryptions become cheap multiplications.
        precompute: optional :class:`~repro.crypto.precompute.
            PrecomputeEngine`; when given it is attached to the cloud (the
            delivery phase consumes its mask tuples), one per-shard
            obfuscator pool is derived from it, and every chunk task ships a
            slice of its shard's pool so worker-side encryptions run
            powmod-free while warm.  Refill the pools off the hot path with
            :meth:`refill_precompute` (the serving layer does this in idle
            scheduler slots).
    """

    def __init__(self, cloud: FederatedCloud, shards: int = 2,
                 workers: int = 4, backend: str = "process",
                 pool: PersistentWorkerPool | None = None,
                 randomness_pool: RandomnessPool | None = None,
                 precompute: PrecomputeEngine | None = None) -> None:
        table = cloud.c1.encrypted_table
        if shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        if shards > len(table):
            raise ConfigurationError(
                f"cannot split {len(table)} records into {shards} shards")
        self.cloud = cloud
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = PersistentWorkerPool(workers=workers, backend=backend)
            self._owns_pool = True
        self.randomness_pool = randomness_pool
        self.shards = self._partition(table.records, shards)
        self.precompute = precompute
        if precompute is not None and cloud.engine is not precompute:
            # Attach as C1's engine, preserving any C2 engine already there.
            cloud.attach_engine(precompute, cloud.c2.engine)
        # One obfuscator pool per shard, drained into the chunk tasks of
        # that shard (the workers' pool slices) and refilled from idle time.
        # Sized so one full refill covers one query batch: the chunk worker
        # encrypts one mask and one square per (record, attribute) pair.
        # (The chunk worker plays both cloud roles by construction — see
        # repro.core.parallel — so a single slice feeds both encryptions.)
        self.shard_pools: tuple[RandomnessPool, ...] = tuple(
            RandomnessPool(cloud.c1.public_key,
                           size=max(2 * len(shard) * table.dimensions, 1),
                           rng=precompute.rng, precompute=False)
            for shard in self.shards
        ) if precompute is not None else ()
        # The delivery phase (masking + two-share hand-off) is exactly
        # Algorithm 5 steps 4-6; reuse the serial protocol's implementation.
        self._delivery = SkNNBasic(cloud)
        if randomness_pool is not None and precompute is None:
            self._delivery.mask_encryptor = randomness_pool.encrypt
        self.last_batch_timings: BatchPhaseTimings | None = None
        self.last_report: SkNNRunReport | None = None
        if precompute is not None:
            # Deployment-time prefill (off the query path by definition).
            self.refill_precompute()

    @staticmethod
    def _partition(records: Sequence[EncryptedRecord],
                   shards: int) -> tuple[TableShard, ...]:
        """Split the records into ``shards`` near-equal contiguous slices."""
        base, extra = divmod(len(records), shards)
        result = []
        start = 0
        for shard_id in range(shards):
            size = base + (1 if shard_id < extra else 0)
            result.append(TableShard(shard_id, start,
                                     tuple(records[start:start + size])))
            start += size
        return tuple(result)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (no-op for a shared pool)."""
        if self.precompute is not None:
            self.precompute.stop_producer()
        if self._owns_pool:
            self.pool.close()

    # -- precomputation (off the query critical path) ------------------------
    def refill_precompute(self, budget: int | None = None) -> int:
        """Top up the engine and per-shard pools; returns items precomputed.

        Meant to run between queries (the serving layer calls it from idle
        scheduler slots).  The budget is split between the engine's typed
        pools and the per-shard obfuscator pools that feed worker slices.
        """
        if self.precompute is None:
            return 0
        produced = self.precompute.refill(budget)
        for shard_pool in self.shard_pools:
            deficit = shard_pool.size - shard_pool.remaining
            if budget is not None:
                deficit = min(deficit, max(budget - produced, 0))
            if deficit > 0:
                produced += shard_pool.refill(deficit)
        return produced

    def __enter__(self) -> "ShardedCloud":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the query-store contract (shared with transport.client.RemoteStore) --
    #: protocol label stamped on reports produced through this store
    protocol_label = "SkNNb-sharded"

    @property
    def public_key(self):
        """The deployment's Paillier public key."""
        return self.cloud.c1.public_key

    @property
    def table_size(self) -> int:
        """Number of records in the hosted encrypted table."""
        return len(self.cloud.c1.encrypted_table)

    @property
    def dimensions(self) -> int:
        """Attribute count of the hosted encrypted table."""
        return self.cloud.c1.encrypted_table.dimensions

    def start_recorder(self) -> RunStatsRecorder:
        """Snapshot counters/traffic ahead of one batch execution."""
        return RunStatsRecorder(self.cloud)

    # -- introspection ------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards the table is partitioned into."""
        return len(self.shards)

    @property
    def shard_sizes(self) -> list[int]:
        """Record count of every shard, in shard order."""
        return [len(shard) for shard in self.shards]

    def validate_query(self, encrypted_query: Sequence[Ciphertext],
                       k: int) -> None:
        """Validate query arity and ``k`` against the hosted table.

        Raises :class:`~repro.exceptions.QueryError` on malformed input; used
        by the serving layer to reject bad queries at submission time, before
        they can poison a batch.
        """
        self._delivery._validate_query(encrypted_query, k)

    # -- scatter-gather query plan ------------------------------------------
    def _build_batch_tasks(
        self, encrypted_queries: Sequence[Sequence[Ciphertext]]
    ) -> list[ChunkWorkerTask]:
        """One task per record chunk, each carrying every query of the batch.

        Chunks never cross shard boundaries (each shard is an independent
        C1-role server), and every task ships its whole record slice through
        one vectorized kernel call — see
        :func:`~repro.core.parallel.ssed_chunk_worker`.
        """
        from repro.crypto.backend import get_backend

        c1 = self.cloud.c1
        private_key = self.cloud.c2.private_key
        n = c1.public_key.n
        backend_name = get_backend().name
        query_values = [[cipher.value for cipher in query]
                        for query in encrypted_queries]
        workers_per_shard = max(1, self.pool.workers // len(self.shards))
        dimensions = len(encrypted_queries[0]) if encrypted_queries else 0
        tasks: list[ChunkWorkerTask] = []
        for shard in self.shards:
            shard_pool = (self.shard_pools[shard.shard_id]
                          if self.shard_pools else None)
            for start, stop in chunk_records(len(shard.records),
                                             workers_per_shard):
                seed = c1.rng.getrandbits(63)
                # The chunk worker encrypts one mask and one square per
                # (record, attribute, query) pair — drain that many factors
                # from the shard's pool (whatever is available) so the
                # worker's encryptions are multiplications while warm.
                pool_slice = None
                if shard_pool is not None:
                    wanted = 2 * (stop - start) * dimensions * len(
                        encrypted_queries)
                    pool_slice = shard_pool.take_available(wanted) or None
                tasks.append((
                    shard.start + start,
                    [[cipher.value for cipher in record.ciphertexts]
                     for record in shard.records[start:stop]],
                    query_values,
                    n,
                    private_key.p,
                    private_key.q,
                    seed,
                    backend_name,
                    pool_slice,
                ))
        return tasks

    def scatter_distances(
        self, encrypted_queries: Sequence[Sequence[Ciphertext]],
        deadline: Deadline | None = None,
    ) -> list[list[int]]:
        """Distance phase for a whole batch in one scan pass over all shards.

        The chunk tasks are built exactly once — each carries its own RNG
        seed drawn from C1's stream — and the *same* task list is what the
        pool resubmits if a worker dies mid-scatter, so a retried chunk
        reproduces bit-identical distances (see
        :meth:`~repro.core.parallel.PersistentWorkerPool.map`).  ``deadline``
        bounds the scatter including any respawn rounds.

        Returns ``distances[query][global_record_index]`` — the plaintext
        squared distances SkNN_b reveals to the C2 role.
        """
        tasks = self._build_batch_tasks(encrypted_queries)
        results = self.pool.map(ssed_chunk_worker, tasks, deadline=deadline)
        n_records = len(self.cloud.c1.encrypted_table)
        distances = [[0] * n_records for _ in encrypted_queries]
        for start_index, chunk_distances in results:
            for offset, per_query in enumerate(chunk_distances):
                for query_index, distance in enumerate(per_query):
                    distances[query_index][start_index + offset] = distance
        return distances

    def shard_top_k(self, distances: Sequence[int], k: int) -> list[list[ShardCandidate]]:
        """Each shard's local top-k candidates for one query's distances."""
        candidates: list[list[ShardCandidate]] = []
        for shard in self.shards:
            local = [
                ShardCandidate(distances[index], index, shard.shard_id)
                for index in shard.global_indices()
            ]
            best = heapq.nsmallest(min(k, len(local)), local,
                                   key=lambda c: (c.distance, c.global_index))
            candidates.append(best)
        return candidates

    @staticmethod
    def merge_top_k(per_shard: Sequence[Sequence[ShardCandidate]],
                    k: int) -> list[ShardCandidate]:
        """Gather step: merge per-shard candidates into the global top-k.

        Ties break by global record index (insertion order), matching the
        plaintext :class:`~repro.db.knn.LinearScanKNN` oracle even when the
        tied records live on different shards.
        """
        gathered = [candidate for shard in per_shard for candidate in shard]
        return heapq.nsmallest(k, gathered,
                               key=lambda c: (c.distance, c.global_index))

    # -- answering ----------------------------------------------------------
    def answer_batch(self, encrypted_queries: Sequence[Sequence[Ciphertext]],
                     ks: Sequence[int],
                     deadline: Deadline | None = None) -> list[ResultShares]:
        """Answer a batch of queries sharing one scan pass over the shards.

        Args:
            encrypted_queries: one attribute-wise encrypted query per entry.
            ks: the requested ``k`` for each query (same length as the batch).
            deadline: optional request deadline bounding the scatter phase,
                including any worker-crash respawn rounds.

        Returns:
            One :class:`~repro.core.roles.ResultShares` per query, in order.
        """
        if len(encrypted_queries) != len(ks):
            raise ConfigurationError("batch queries and ks differ in length")
        if not encrypted_queries:
            return []
        for query, k in zip(encrypted_queries, ks):
            self.validate_query(query, k)

        started = time.perf_counter()
        distances = self.scatter_distances(encrypted_queries,
                                           deadline=deadline)
        distance_elapsed = time.perf_counter() - started

        merge_started = time.perf_counter()
        winners = [
            self.merge_top_k(self.shard_top_k(query_distances, k), k)
            for query_distances, k in zip(distances, ks)
        ]
        merge_elapsed = time.perf_counter() - merge_started

        deliver_started = time.perf_counter()
        table = self.cloud.c1.encrypted_table
        all_shares = []
        for per_query in winners:
            selected = [list(table.record_at(c.global_index).ciphertexts)
                        for c in per_query]
            all_shares.append(self._delivery._deliver_records(selected))
        deliver_elapsed = time.perf_counter() - deliver_started

        self.last_batch_timings = BatchPhaseTimings(
            queries=len(encrypted_queries),
            shards=self.shard_count,
            records=len(table),
            distance_seconds=distance_elapsed,
            merge_seconds=merge_elapsed,
            deliver_seconds=deliver_elapsed,
        )
        return all_shares

    # -- single-query protocol interface (SkNNSystem mode="sharded") --------
    def run(self, encrypted_query: Sequence[Ciphertext], k: int) -> ResultShares:
        """Answer one query (a batch of size one)."""
        return self.answer_batch([encrypted_query], [k])[0]

    def run_with_report(self, encrypted_query: Sequence[Ciphertext], k: int,
                        distance_bits: int | None = None) -> ResultShares:
        """Answer one query and record a populated run report."""
        recorder = RunStatsRecorder(self.cloud)
        started = time.perf_counter()

        shares = self.run(encrypted_query, k)

        elapsed = time.perf_counter() - started
        timings = self.last_batch_timings
        stats = recorder.finish("SkNNb-sharded", elapsed)
        table = self.cloud.c1.encrypted_table
        self.last_report = SkNNRunReport(
            protocol="SkNNb-sharded",
            n_records=len(table),
            dimensions=table.dimensions,
            k=k,
            key_size=self.cloud.c1.public_key.key_size,
            distance_bits=distance_bits,
            wall_time_seconds=elapsed,
            stats=stats,
            phase_seconds={
                "distance": timings.distance_seconds,
                "merge": timings.merge_seconds,
                "deliver": timings.deliver_seconds,
            } if timings is not None else {},
        )
        return shares
