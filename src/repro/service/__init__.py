"""Query-serving subsystem: sharded storage, batched scheduling, sessions.

This package is the multi-user serving layer on top of the protocol stack:

* :mod:`repro.service.sharding` — :class:`ShardedCloud` partitions the
  encrypted table across N C1-style shards and answers query batches
  scatter-gather style on a persistent worker pool;
* :mod:`repro.service.scheduler` — :class:`QueryServer`, the multi-session
  front door that queues, batches and answers concurrent queries, and
  :class:`QueryScheduler`, its batching policy.

Ciphertext precomputation lives in :class:`repro.crypto.RandomnessPool`:
both the server (delivery-phase masking) and the sessions (query encryption)
can draw single-use Paillier obfuscation factors from pools filled off the
hot path.

Quickstart::

    from repro import SkNNSystem

    system = SkNNSystem.setup(table, key_size=256, mode="sharded", shards=2)
    with system.serve(batch_size=4) as server:
        bob = server.open_session("bob")
        answer = bob.query(record, k=3)
"""

from repro.service.scheduler import (
    PendingQuery,
    QueryScheduler,
    QueryServer,
    ServerStats,
    ServiceSession,
)
from repro.service.sharding import (
    BatchPhaseTimings,
    ShardCandidate,
    ShardedCloud,
    TableShard,
)

__all__ = [
    "BatchPhaseTimings",
    "PendingQuery",
    "QueryScheduler",
    "QueryServer",
    "ServerStats",
    "ServiceSession",
    "ShardCandidate",
    "ShardedCloud",
    "TableShard",
]
