"""Multi-client query serving: sessions, batched scheduling, per-query answers.

This module turns the one-query-at-a-time protocol stack into a serving
layer.  Three pieces cooperate:

* :class:`ServiceSession` — one authorized Bob.  Each session owns its own
  :class:`~repro.core.roles.QueryClient` (its own randomness, its own cost
  accounting), encrypts its queries locally and reconstructs its own results
  from the two shares, so concurrent users are cryptographically isolated
  from each other exactly as in the paper's single-user setting.
* :class:`QueryScheduler` — a thread-safe FIFO of submitted queries that
  groups them into batches of at most ``batch_size``.  All queries in a batch
  share one scan pass over the sharded store, amortizing query-encryption
  and per-record task-serialization overhead.
* :class:`QueryServer` — accepts many concurrent sessions, drains the
  scheduler (either on a background serving thread started with
  :meth:`QueryServer.start`, or synchronously via :meth:`QueryServer.flush`)
  and resolves every :class:`PendingQuery` with a fully populated
  :class:`~repro.core.system.QueryAnswer` including per-phase timings.

The server answers queries through a :class:`~repro.service.sharding.
ShardedCloud`, so the distance phase is scatter-gathered across shards on a
persistent worker pool, and (when a :class:`~repro.crypto.RandomnessPool` is
configured) the delivery-phase mask encryptions are cheap multiplications.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Sequence

from repro.core.roles import QueryClient
from repro.core.sknn_base import SkNNRunReport
from repro.core.system import QueryAnswer
from repro.crypto.paillier import Ciphertext
from repro.crypto.randomness_pool import RandomnessPool
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceeded,
    PeerUnavailable,
    ServiceUnavailable,
)
from repro.service.sharding import ShardedCloud
from repro.telemetry import SlowQueryLog
from repro.telemetry import metrics as _metrics

__all__ = ["PendingQuery", "ServiceSession", "QueryScheduler", "QueryServer",
           "ServerStats"]


@dataclass
class _QueryRequest:
    """Internal record of one submitted query."""

    request_id: int
    session: "ServiceSession"
    encrypted_query: list[Ciphertext]
    k: int
    encrypt_seconds: float
    submitted_at: float
    done: threading.Event = field(default_factory=threading.Event)
    answer: QueryAnswer | None = None
    error: BaseException | None = None


class PendingQuery:
    """Handle for a submitted query; resolves to a :class:`QueryAnswer`."""

    def __init__(self, server: "QueryServer", request: _QueryRequest) -> None:
        self._server = server
        self._request = request

    @property
    def request_id(self) -> int:
        """Server-wide sequence number of this query."""
        return self._request.request_id

    def done(self) -> bool:
        """Whether the answer is available."""
        return self._request.done.is_set()

    def result(self, timeout: float | None = None) -> QueryAnswer:
        """Block until the answer is available and return it.

        When the server's background thread is not running, the calling
        thread drives the scheduler itself (synchronous mode), so single-
        threaded callers never deadlock.
        """
        if not self._request.done.is_set() and not self._server.running:
            self._server.flush()
        if not self._request.done.wait(timeout):
            raise TimeoutError(
                f"query {self._request.request_id} not answered in time")
        if self._request.error is not None:
            raise self._request.error
        assert self._request.answer is not None
        return self._request.answer


class ServiceSession:
    """One authorized query user (Bob) connected to a :class:`QueryServer`."""

    def __init__(self, server: "QueryServer", session_id: str,
                 rng: Random | None = None,
                 randomness_pool: RandomnessPool | None = None) -> None:
        self.server = server
        self.session_id = session_id
        self.client = QueryClient(server.store.public_key,
                                  server.store.dimensions, rng=rng,
                                  randomness_pool=randomness_pool)

    def submit(self, query_record: Sequence[int], k: int) -> PendingQuery:
        """Encrypt the query locally and enqueue it with the server."""
        return self.server.submit(self, query_record, k)

    def query(self, query_record: Sequence[int], k: int,
              timeout: float | None = None) -> QueryAnswer:
        """Convenience: submit and wait for the answer."""
        return self.submit(query_record, k).result(timeout)


class QueryScheduler:
    """Thread-safe FIFO that hands out batches of at most ``batch_size``."""

    def __init__(self, batch_size: int = 4) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch size must be >= 1")
        self.batch_size = batch_size
        self._queue: deque[_QueryRequest] = deque()
        # Reentrant so `pending` can be read while holding the condition.
        self._lock = threading.RLock()
        self.not_empty = threading.Condition(self._lock)

    def enqueue(self, request: _QueryRequest) -> None:
        """Add a request and wake the serving thread."""
        with self.not_empty:
            self._queue.append(request)
            self.not_empty.notify()

    def next_batch(self) -> list[_QueryRequest]:
        """Pop up to ``batch_size`` requests (may be empty; never blocks)."""
        with self._lock:
            batch = []
            while self._queue and len(batch) < self.batch_size:
                batch.append(self._queue.popleft())
            return batch

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-served requests."""
        with self._lock:
            return len(self._queue)


@dataclass
class ServerStats:
    """Aggregate serving statistics (the benchmark's throughput numbers).

    All mutation goes through :meth:`record_batch` and all multi-field
    reads through :meth:`snapshot` — both hold the stats lock, so readers
    polling a live server (``transport.stats``, benchmark emitters) never
    see a batch's query count without its busy time.
    """

    queries_served: int = 0
    batches_served: int = 0
    busy_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_batch(self, queries: int, elapsed: float) -> None:
        """Account one executed batch atomically."""
        with self._lock:
            self.queries_served += queries
            self.batches_served += 1
            self.busy_seconds += elapsed

    def snapshot(self) -> dict[str, float]:
        """A mutually consistent view of every field and derived rate."""
        with self._lock:
            queries = self.queries_served
            batches = self.batches_served
            busy = self.busy_seconds
        return {
            "queries_served": queries,
            "batches_served": batches,
            "busy_seconds": busy,
            "mean_batch_size": queries / batches if batches else 0.0,
            "queries_per_second": queries / busy if busy else 0.0,
        }

    @property
    def mean_batch_size(self) -> float:
        """Average number of queries per executed batch."""
        if self.batches_served == 0:
            return 0.0
        return self.queries_served / self.batches_served

    def queries_per_second(self) -> float:
        """Serving throughput over the server's busy time."""
        if self.busy_seconds == 0.0:
            return 0.0
        return self.queries_served / self.busy_seconds


class QueryServer:
    """Accepts concurrent Bob sessions and serves them in scheduled batches.

    Args:
        store: the query store answering the batches.  Usually a
            :class:`~repro.service.sharding.ShardedCloud` (in-process
            scatter-gather over the worker pool); a
            :class:`~repro.transport.client.RemoteStore` plugs the same
            scheduler into the distributed runtime, dispatching every batch
            over the remote channel to the C1 daemon.  Any object with the
            store contract (``validate_query``, ``answer_batch``,
            ``start_recorder``, ``refill_precompute``, ``close``,
            ``public_key``/``table_size``/``dimensions``/
            ``protocol_label``/``last_batch_timings``) works.
        batch_size: maximum queries grouped into one scan pass.
        batch_window_seconds: how long the background serving thread waits
            for a batch to fill before executing a partial one.
        rng: optional deterministic randomness source; per-session client
            RNGs are derived from it so test runs are reproducible.
        session_pool_size: when positive, every session gets its own
            :class:`~repro.crypto.RandomnessPool` of this size so Bob-side
            query encryption is a cheap multiply too.
        precompute_idle_budget: cap on the number of pool items the serving
            thread precomputes per idle scheduler slot (only relevant when
            the sharded store carries a
            :class:`~repro.crypto.precompute.PrecomputeEngine`); keeps each
            refill burst short so a freshly enqueued query is picked up
            promptly.
    """

    def __init__(self, store: ShardedCloud, batch_size: int = 4,
                 batch_window_seconds: float = 0.01,
                 rng: Random | None = None,
                 session_pool_size: int = 0,
                 precompute_idle_budget: int = 32,
                 slow_query_seconds: float | None = 1.0,
                 degraded_cooldown_seconds: float = 5.0) -> None:
        self.store = store
        # Graceful degradation: when a batch dies on an unreachable/dead
        # backend (distributed C1/C2), submissions are rejected fast with a
        # typed, retriable error for this long instead of piling queries
        # onto a store that cannot answer them.
        self.degraded_cooldown_seconds = degraded_cooldown_seconds
        self._degraded_until = 0.0
        self._degraded_reason: str | None = None
        self.scheduler = QueryScheduler(batch_size)
        self.batch_window_seconds = batch_window_seconds
        self.rng = rng
        self.session_pool_size = session_pool_size
        self.precompute_idle_budget = precompute_idle_budget
        self.stats = ServerStats()
        self.slow_log = SlowQueryLog(threshold_seconds=slow_query_seconds)
        self.sessions: dict[str, ServiceSession] = {}
        self._request_ids = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._serve_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        _metrics.get_registry().add_collector(self._collect_metrics)

    def _collect_metrics(self, registry: "_metrics.MetricsRegistry") -> None:
        """Scrape-time collector mirroring serving state into the registry."""
        registry.gauge(
            "repro_scheduler_queue_depth",
            "Queries queued and not yet dispatched to a batch.").set(
                self.scheduler.pending)
        registry.gauge(
            "repro_scheduler_sessions",
            "Open query sessions.").set(len(self.sessions))
        registry.gauge(
            "repro_scheduler_degraded",
            "Whether the server is shedding load (1 = backpressure).").set(
                1.0 if time.monotonic() < self._degraded_until else 0.0)
        for name, value in self.stats.snapshot().items():
            registry.gauge(
                "repro_scheduler_serving",
                "Aggregate serving statistics of the query scheduler.",
                ("stat",)).set(value, stat=name)

    @property
    def sharded(self) -> ShardedCloud:
        """Back-compat alias for :attr:`store` (historically always sharded)."""
        return self.store

    # -- sessions -----------------------------------------------------------
    def open_session(self, name: str | None = None) -> ServiceSession:
        """Register a new query user and return their session."""
        session_id = name if name is not None else f"bob-{next(self._session_ids)}"
        if session_id in self.sessions:
            raise ConfigurationError(f"session {session_id!r} already exists")
        session_rng = (Random(self.rng.getrandbits(63))
                       if self.rng is not None else None)
        pool = None
        if self.session_pool_size > 0:
            pool = RandomnessPool(self.store.public_key,
                                  size=self.session_pool_size, rng=session_rng)
        session = ServiceSession(self, session_id, rng=session_rng,
                                 randomness_pool=pool)
        self.sessions[session_id] = session
        return session

    # -- submission ---------------------------------------------------------
    def submit(self, session: ServiceSession, query_record: Sequence[int],
               k: int) -> PendingQuery:
        """Encrypt (client-side) and enqueue one query.

        Malformed queries (wrong arity, bad ``k``) raise immediately at the
        submitting caller instead of being enqueued, so they can never poison
        a batch shared with other sessions' queries.  While the backend is
        known-unreachable the server is *degraded*: submissions fail fast
        with a typed, retriable :class:`ServiceUnavailable` (backpressure)
        instead of queueing onto a store that cannot answer.
        """
        remaining = self._degraded_until - time.monotonic()
        if remaining > 0:
            _metrics.get_registry().counter(
                "repro_rejected_queries_total",
                "Queries rejected before enqueueing, by reason.",
                ("reason",)).inc(reason="backpressure")
            raise ServiceUnavailable(
                f"query service is degraded ({self._degraded_reason}); "
                f"retry in {remaining:.1f}s", retry_after_seconds=remaining)
        started = time.perf_counter()
        encrypted_query = session.client.encrypt_query(query_record)
        encrypt_elapsed = time.perf_counter() - started
        self.store.validate_query(encrypted_query, k)
        request = _QueryRequest(
            request_id=next(self._request_ids),
            session=session,
            encrypted_query=encrypted_query,
            k=k,
            encrypt_seconds=encrypt_elapsed,
            submitted_at=time.perf_counter(),
        )
        self.scheduler.enqueue(request)
        return PendingQuery(self, request)

    # -- execution ----------------------------------------------------------
    def flush(self) -> int:
        """Synchronously serve everything currently queued; returns count."""
        served = 0
        while True:
            batch = self.scheduler.next_batch()
            if not batch:
                return served
            self._serve_batch(batch)
            served += len(batch)

    def _serve_batch(self, batch: list[_QueryRequest]) -> None:
        """Execute one batch over the sharded store and resolve its requests."""
        # One consumer at a time: the two-cloud channel and the shard pool
        # are shared state, so batch execution is serialized even when both
        # a background thread and a flushing caller are active.
        with self._serve_lock:
            pk = self.store.public_key
            recorder = self.store.start_recorder()
            started = time.perf_counter()
            try:
                all_shares = self.store.answer_batch(
                    [request.encrypted_query for request in batch],
                    [request.k for request in batch],
                )
            except BaseException as error:  # resolve waiters, then re-raise
                if isinstance(error, (PeerUnavailable, DeadlineExceeded)):
                    # The backend is unreachable, not merely erroring on one
                    # query: shed load for a cooldown instead of feeding it
                    # batches that will all blow their deadlines.
                    self._degraded_until = (time.monotonic()
                                            + self.degraded_cooldown_seconds)
                    self._degraded_reason = str(error)
                for request in batch:
                    request.error = error
                    request.done.set()
                raise
            elapsed = time.perf_counter() - started
            # A served batch proves the backend is back: lift backpressure.
            self._degraded_until = 0.0
            self._degraded_reason = None
            # Counters/traffic are per batch; see RunStatsRecorder for the
            # attribution caveat under concurrent client-side encryption.
            batch_stats = recorder.finish(self.store.protocol_label, elapsed)
            timings = self.store.last_batch_timings
            self.stats.record_batch(len(batch), elapsed)
            registry = _metrics.get_registry()
            registry.counter(
                "repro_scheduler_batches_total",
                "Batches executed by the query scheduler.",
                ("protocol",)).inc(protocol=self.store.protocol_label)
            registry.histogram(
                "repro_batch_seconds", "Wall time of one scheduler batch.",
                ("protocol",)).observe(
                    elapsed, protocol=self.store.protocol_label)
            self.slow_log.observe(elapsed,
                                  protocol=self.store.protocol_label,
                                  queries=len(batch))

        for request, shares in zip(batch, all_shares):
            reconstruct_started = time.perf_counter()
            neighbors = request.session.client.reconstruct(shares)
            reconstruct_elapsed = time.perf_counter() - reconstruct_started
            # Counters and traffic are per batch (the scan pass is shared);
            # the per-query phase timings divide the shared phases evenly.
            share = 1.0 / len(batch)
            report = SkNNRunReport(
                protocol=self.store.protocol_label,
                n_records=self.store.table_size,
                dimensions=self.store.dimensions,
                k=request.k,
                key_size=pk.key_size,
                distance_bits=None,
                wall_time_seconds=elapsed,
                stats=batch_stats,
                phase_seconds={
                    "encrypt": request.encrypt_seconds,
                    "queue_wait": started - request.submitted_at,
                    "distance": timings.distance_seconds * share,
                    "merge": timings.merge_seconds * share,
                    "deliver": timings.deliver_seconds * share,
                    "reconstruct": reconstruct_elapsed,
                } if timings is not None else {},
            )
            request.answer = QueryAnswer(
                neighbors=neighbors,
                report=report,
                client_encrypt_seconds=request.encrypt_seconds,
                client_reconstruct_seconds=reconstruct_elapsed,
            )
            request.done.set()

    # -- background serving thread ------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the background serving thread is active."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background serving thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="sknn-query-server", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the serving thread, draining anything still queued."""
        if self._thread is None:
            return
        self._stop.set()
        with self.scheduler.not_empty:
            self.scheduler.not_empty.notify_all()
        self._thread.join()
        self._thread = None
        self.flush()

    def close(self) -> None:
        """Stop serving and release the sharded store's worker pool."""
        self.stop()
        _metrics.get_registry().remove_collector(self._collect_metrics)
        self.store.close()

    def __enter__(self) -> "QueryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            with self.scheduler.not_empty:
                if self.scheduler.pending == 0:
                    self.scheduler.not_empty.wait(timeout=0.1)
            if self.scheduler.pending == 0:
                # Idle slot: spend it refilling the precomputation pools so
                # the next query's obfuscators/masks are already paid for.
                if self.precompute_idle_budget > 0:
                    self.store.refill_precompute(self.precompute_idle_budget)
                continue
            # Give the batch a short window to fill before executing it.
            if (self.scheduler.pending < self.scheduler.batch_size
                    and self.batch_window_seconds > 0):
                time.sleep(self.batch_window_seconds)
            batch = self.scheduler.next_batch()
            if not batch:
                continue
            try:
                self._serve_batch(batch)
            except Exception:
                # The batch's waiters were already resolved with the error;
                # the serving thread must survive one bad batch so the other
                # sessions keep getting answers.
                continue
