"""Exception hierarchy for the SkNN reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the broad failure classes (cryptography, protocol,
database, configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class CryptoError(ReproError):
    """Base class for cryptographic failures (key generation, enc/dec)."""


class KeyGenerationError(CryptoError):
    """Raised when Paillier key generation cannot produce a valid key pair."""


class EncryptionError(CryptoError):
    """Raised when a plaintext cannot be encrypted (e.g. out of range)."""


class DecryptionError(CryptoError):
    """Raised when a ciphertext cannot be decrypted with the given key."""


class KeyMismatchError(CryptoError):
    """Raised when ciphertexts under different public keys are combined."""


class SerializationError(ReproError):
    """Raised when keys, ciphertexts or tables fail to (de)serialize."""


class ProtocolError(ReproError):
    """Base class for secure two-party protocol failures."""


class ProtocolAbortError(ProtocolError):
    """Raised when a party aborts a protocol because of malformed input."""


class DomainError(ProtocolError):
    """Raised when a value falls outside the declared domain ``[0, 2**l)``."""


class ChannelError(ReproError):
    """Raised on misuse of the in-memory communication channel."""


class DeadlineExceeded(ChannelError):
    """Raised when a blocking channel/socket operation outlives its deadline.

    Every wait in the distributed runtime (frame reads, share-mailbox waits,
    request/reply round trips) is bounded; when the bound is hit the caller
    gets this typed error instead of a hung thread.  The failure is
    *retriable*: the peer may simply be slow, so retry layers treat it as a
    transient fault.
    """

    retriable = True


class PeerUnavailable(ChannelError):
    """Raised when the remote party cannot be reached or went away.

    Covers refused/reset/broken connections and clean EOF mid-protocol.
    Like :class:`DeadlineExceeded` this is a *retriable* transport failure:
    the peer may be restarting, so retry layers reconnect and try again.
    """

    retriable = True


class ServiceUnavailable(ReproError):
    """Raised when a serving layer rejects work instead of queueing it.

    The typed backpressure signal: the :class:`~repro.service.scheduler.
    QueryServer` raises it at submit time while its store is known to be
    unreachable, so clients fail fast (and may retry after
    :attr:`retry_after_seconds`) instead of wedging a scheduler slot.
    """

    retriable = True

    def __init__(self, message: str,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class DatabaseError(ReproError):
    """Base class for database substrate failures."""


class SchemaError(DatabaseError):
    """Raised when records do not conform to the declared schema."""


class QueryError(DatabaseError):
    """Raised when a kNN query is malformed (wrong arity, bad k, ...)."""


class ConfigurationError(ReproError):
    """Raised when a system component is configured inconsistently."""


class CorruptStateError(ReproError):
    """Raised when persisted daemon state fails its integrity checks.

    A snapshot or journal that is torn, truncated or bit-flipped beyond
    what a single crash can explain (see
    :mod:`repro.resilience.durability`) raises this instead of a raw
    decode error, so recovery code can reject the state — log, discard,
    start fresh — rather than crash the daemon at startup.
    """
