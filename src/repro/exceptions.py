"""Exception hierarchy for the SkNN reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the broad failure classes (cryptography, protocol,
database, configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class CryptoError(ReproError):
    """Base class for cryptographic failures (key generation, enc/dec)."""


class KeyGenerationError(CryptoError):
    """Raised when Paillier key generation cannot produce a valid key pair."""


class EncryptionError(CryptoError):
    """Raised when a plaintext cannot be encrypted (e.g. out of range)."""


class DecryptionError(CryptoError):
    """Raised when a ciphertext cannot be decrypted with the given key."""


class KeyMismatchError(CryptoError):
    """Raised when ciphertexts under different public keys are combined."""


class SerializationError(ReproError):
    """Raised when keys, ciphertexts or tables fail to (de)serialize."""


class ProtocolError(ReproError):
    """Base class for secure two-party protocol failures."""


class ProtocolAbortError(ProtocolError):
    """Raised when a party aborts a protocol because of malformed input."""


class DomainError(ProtocolError):
    """Raised when a value falls outside the declared domain ``[0, 2**l)``."""


class ChannelError(ReproError):
    """Raised on misuse of the in-memory communication channel."""


class DatabaseError(ReproError):
    """Base class for database substrate failures."""


class SchemaError(DatabaseError):
    """Raised when records do not conform to the declared schema."""


class QueryError(DatabaseError):
    """Raised when a kNN query is malformed (wrong arity, bad k, ...)."""


class ConfigurationError(ReproError):
    """Raised when a system component is configured inconsistently."""
