"""ASPE baseline — Wong et al., "Secure kNN computation on encrypted
databases" (SIGMOD 2009), the paper's reference [28].

The paper's related-work section dismisses ASPE (and the privacy-homomorphism
scheme of Hu et al.) because they are "vulnerable to chosen and known
plaintext attacks".  To let users reproduce that argument — not just read it —
this module implements:

* the basic ASPE scheme (scalar-product-preserving matrix encryption) with
  exact kNN query answering, and
* the known-plaintext attack: an attacker who obtains enough
  (plaintext tuple, encrypted tuple) pairs recovers the secret matrix by
  solving a linear system and can then decrypt every remaining tuple.

ASPE in brief
-------------
Each database point ``p`` (dimension ``d``) is extended to
``p_hat = (p, -0.5 * |p|^2)`` and encrypted as ``p' = M^T @ p_hat`` with a
secret invertible matrix ``M`` of size ``(d+1) x (d+1)``.  A query ``q`` is
extended to ``q_hat = r * (q, 1)`` with a random ``r > 0`` and encrypted as
``q' = M^{-1} @ q_hat``.  Then::

    p' . q' = p_hat . q_hat = r * (p . q - 0.5 * |p|^2)

which is a monotone transformation of ``-0.5 * |p - q|^2`` (up to the
query-constant term ``|q|^2``), so comparing scalar products ranks points by
their true distance to ``q`` — that is exactly what kNN needs, and it is also
exactly the structural leak the attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.table import Table
from repro.exceptions import ConfigurationError, QueryError

__all__ = ["ASPEKey", "ASPEEncryptedDatabase", "ASPESystem", "known_plaintext_attack"]


@dataclass
class ASPEKey:
    """The ASPE secret key: an invertible ``(d+1) x (d+1)`` matrix."""

    matrix: np.ndarray

    @classmethod
    def generate(cls, dimensions: int, seed: int | None = None) -> "ASPEKey":
        """Generate a random invertible key matrix for ``dimensions`` attributes."""
        rng = np.random.default_rng(seed)
        size = dimensions + 1
        while True:
            candidate = rng.uniform(-1.0, 1.0, size=(size, size))
            if abs(np.linalg.det(candidate)) > 1e-6:
                return cls(matrix=candidate)

    @property
    def dimensions(self) -> int:
        """Number of data attributes supported by this key."""
        return self.matrix.shape[0] - 1

    @property
    def inverse(self) -> np.ndarray:
        """The inverse matrix used for query encryption."""
        return np.linalg.inv(self.matrix)


@dataclass
class ASPEEncryptedDatabase:
    """Encrypted tuples (one row per record) plus the record identifiers."""

    encrypted_points: np.ndarray
    record_ids: list[str]

    def __len__(self) -> int:
        return len(self.record_ids)


class ASPESystem:
    """The ASPE secure-kNN scheme of Wong et al. (comparator baseline)."""

    def __init__(self, table: Table, seed: int | None = None) -> None:
        self.table = table
        self.key = ASPEKey.generate(table.dimensions, seed)
        self._rng = np.random.default_rng(None if seed is None else seed + 1)
        self.encrypted_database = self._encrypt_database()

    # -- data owner side -----------------------------------------------------------
    def _extend_point(self, values: Sequence[int]) -> np.ndarray:
        """Extend a data point to ``(p, -0.5 * |p|^2)``."""
        vector = np.asarray(values, dtype=float)
        return np.concatenate([vector, [-0.5 * float(vector @ vector)]])

    def _encrypt_database(self) -> ASPEEncryptedDatabase:
        """Encrypt every record with ``p' = M^T @ p_hat``."""
        encrypted_rows = []
        record_ids = []
        for record in self.table:
            extended = self._extend_point(record.values)
            encrypted_rows.append(self.key.matrix.T @ extended)
            record_ids.append(record.record_id)
        return ASPEEncryptedDatabase(
            encrypted_points=np.vstack(encrypted_rows), record_ids=record_ids
        )

    # -- query user side --------------------------------------------------------------
    def encrypt_query(self, query: Sequence[int]) -> np.ndarray:
        """Encrypt a query with ``q' = M^{-1} @ (r * (q, 1))``, random ``r > 0``."""
        if len(query) != self.table.dimensions:
            raise QueryError(
                f"query has {len(query)} attributes, table has {self.table.dimensions}"
            )
        scale = float(self._rng.uniform(0.5, 2.0))
        extended = np.concatenate([np.asarray(query, dtype=float), [1.0]]) * scale
        return self.key.inverse @ extended

    # -- server side -------------------------------------------------------------------
    def query(self, query_record: Sequence[int], k: int) -> list[tuple[int, ...]]:
        """Answer a kNN query over the ASPE-encrypted database.

        The server ranks records by the scalar product between the encrypted
        query and each encrypted tuple (larger product = closer record) and
        returns the plaintext values of the winners (in a real deployment the
        server would return encrypted tuples; returning plaintext keeps the
        comparison harness uniform).
        """
        if not isinstance(k, int) or k < 1 or k > len(self.table):
            raise QueryError(f"invalid k: {k!r}")
        encrypted_query = self.encrypt_query(query_record)
        scores = self.encrypted_database.encrypted_points @ encrypted_query
        order = np.argsort(-scores, kind="stable")[:k]
        return [self.table.records[int(index)].values for index in order]


def known_plaintext_attack(system: ASPESystem,
                           known_indices: Sequence[int]) -> np.ndarray:
    """Recover all plaintext tuples from a set of known (plaintext, ciphertext) pairs.

    The attack the paper alludes to: ASPE encryption is the *linear* map
    ``p' = M^T @ p_hat``, so an attacker holding ``d + 1`` linearly
    independent known plaintext/ciphertext pairs can solve for ``M^T`` exactly
    and invert it to decrypt every other tuple in the database.

    Args:
        system: a deployed ASPE system (the attacker sees its encrypted
            database; the secret key is *not* read — it is reconstructed).
        known_indices: indices of records whose plaintext the attacker knows
            (at least ``d + 1`` and they must span the extended space).

    Returns:
        The recovered plaintext attribute matrix for *all* records
        (shape ``n x d``), which callers can compare to the true table.

    Raises:
        ConfigurationError: if too few known pairs are supplied or they are
            linearly dependent.
    """
    dimensions = system.table.dimensions
    if len(known_indices) < dimensions + 1:
        raise ConfigurationError(
            f"the known-plaintext attack needs at least {dimensions + 1} pairs, "
            f"got {len(known_indices)}"
        )
    known_extended = np.vstack([
        system._extend_point(system.table.records[index].values)
        for index in known_indices
    ])
    known_encrypted = system.encrypted_database.encrypted_points[list(known_indices)]
    if np.linalg.matrix_rank(known_extended) < dimensions + 1:
        raise ConfigurationError("known plaintexts are linearly dependent")

    # Solve  known_extended @ M^T_recovered = known_encrypted  for M^T.
    m_transpose, *_ = np.linalg.lstsq(known_extended, known_encrypted, rcond=None)
    # Decrypt the whole database: p_hat = p' @ (M^T)^{-1}.
    recovered_extended = system.encrypted_database.encrypted_points @ np.linalg.inv(
        m_transpose
    )
    return recovered_extended[:, :dimensions]
