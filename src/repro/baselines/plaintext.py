"""Plaintext kNN baseline wrapped in the same interface as the secure system.

The paper's motivation is the cost of *not* leaking anything: the secure
protocols pay orders of magnitude more than a plaintext scan.  To make that
trade-off measurable with the same harness, :class:`PlaintextKNNSystem`
exposes the same ``query`` interface as :class:`repro.core.SkNNSystem`, backed
by either the linear scan or the k-d tree engine from :mod:`repro.db.knn`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Sequence

from repro.db.knn import KDTreeKNN, LinearScanKNN
from repro.db.table import Table
from repro.exceptions import ConfigurationError

__all__ = ["PlaintextQueryReport", "PlaintextKNNSystem"]

Engine = Literal["linear", "kdtree"]


@dataclass
class PlaintextQueryReport:
    """Timing of one plaintext kNN query."""

    engine: str
    n_records: int
    dimensions: int
    k: int
    wall_time_seconds: float


class PlaintextKNNSystem:
    """Unencrypted kNN with the same calling convention as ``SkNNSystem``."""

    def __init__(self, table: Table, engine: Engine = "linear") -> None:
        """Create a plaintext baseline.

        Args:
            table: the plaintext database.
            engine: ``"linear"`` for the exhaustive scan (the same access
                pattern as the secure protocols) or ``"kdtree"`` for the
                indexed search that encryption forecloses.
        """
        if engine not in ("linear", "kdtree"):
            raise ConfigurationError(f"unknown plaintext engine {engine!r}")
        self.table = table
        self.engine = engine
        self._index = LinearScanKNN(table) if engine == "linear" else KDTreeKNN(table)
        self.last_report: PlaintextQueryReport | None = None

    def query(self, query_record: Sequence[int], k: int) -> list[tuple[int, ...]]:
        """Return the k nearest records as plaintext attribute tuples."""
        started = time.perf_counter()
        neighbors = self._index.query(list(query_record), k)
        elapsed = time.perf_counter() - started
        self.last_report = PlaintextQueryReport(
            engine=self.engine,
            n_records=len(self.table),
            dimensions=self.table.dimensions,
            k=k,
            wall_time_seconds=elapsed,
        )
        return [result.record.values for result in neighbors]
