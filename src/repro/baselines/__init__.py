"""Baselines the paper compares against (conceptually or empirically).

* :class:`PlaintextKNNSystem` — unencrypted kNN (linear scan / k-d tree).
* :class:`ASPESystem` — Wong et al.'s scalar-product-preserving encryption,
  together with :func:`known_plaintext_attack` demonstrating why the paper
  considers it insecure.
"""

from repro.baselines.aspe import (
    ASPEEncryptedDatabase,
    ASPEKey,
    ASPESystem,
    known_plaintext_attack,
)
from repro.baselines.plaintext import PlaintextKNNSystem, PlaintextQueryReport

__all__ = [
    "PlaintextKNNSystem",
    "PlaintextQueryReport",
    "ASPESystem",
    "ASPEKey",
    "ASPEEncryptedDatabase",
    "known_plaintext_attack",
]
