"""Secure Bit-OR (SBOR) and Secure Bit-XOR (SBXOR) protocols.

SBOR (Section 3 of the paper): P1 holds encryptions of two bits ``o_1`` and
``o_2``; with the help of P2 it computes ``Epk(o_1 OR o_2)`` using the
identity ``o_1 OR o_2 = o_1 + o_2 - o_1 AND o_2``, where the AND of two bits
is their product and is computed with one Secure Multiplication.

SBXOR is not named as a separate primitive in Section 3, but the identity
``o_1 XOR o_2 = o_1 + o_2 - 2 * (o_1 AND o_2)`` is used inside SMIN
(the ``G_i`` vector of Algorithm 3); it is exposed here as a reusable
protocol for symmetry and for testing.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round
from repro.protocols.sm import SecureMultiplication

__all__ = ["SecureBitOr", "SecureBitXor"]


class SecureBitOr(TwoPartyProtocol):
    """Two-party secure OR of two encrypted bits."""

    name = "SBOR"

    def __init__(self, setting) -> None:
        super().__init__(setting)
        self._sm = SecureMultiplication(setting)

    @traced_round("run")
    def run(self, enc_bit_a: Ciphertext, enc_bit_b: Ciphertext) -> Ciphertext:
        """Compute ``Epk(o_1 OR o_2)`` from ``Epk(o_1)`` and ``Epk(o_2)``.

        The inputs must encrypt bits (0 or 1); the protocol does not — and by
        design cannot — check this, exactly as in the paper.
        """
        enc_and = self._sm.run(enc_bit_a, enc_bit_b)
        # E(o1 + o2) * E(o1*o2)^{N-1}  ==  E(o1 + o2 - o1*o2)
        return self.sub(enc_bit_a + enc_bit_b, enc_and)

    @traced_round("run_batch", sized=True)
    def run_batch(self, pairs: Sequence[tuple[Ciphertext, Ciphertext]]
                  ) -> list[Ciphertext]:
        """Vectorized OR over many bit pairs (one batched SM round).

        Per-pair operation counts match ``[self.run(a, b) for a, b in pairs]``
        exactly; SkNN_m's elimination phase calls this with all ``n * l``
        (indicator, distance-bit) pairs of an iteration.
        """
        if not pairs:
            return []
        enc_ands = self._sm.run_batch(pairs)
        sums = self.pk.add_batch([a for a, _ in pairs], [b for _, b in pairs])
        return self.pk.add_batch(sums, self.neg_batch(enc_ands))


class SecureBitXor(TwoPartyProtocol):
    """Two-party secure XOR of two encrypted bits (used inside SMIN)."""

    name = "SBXOR"

    def __init__(self, setting) -> None:
        super().__init__(setting)
        self._sm = SecureMultiplication(setting)

    @traced_round("run")
    def run(self, enc_bit_a: Ciphertext, enc_bit_b: Ciphertext) -> Ciphertext:
        """Compute ``Epk(o_1 XOR o_2)`` from ``Epk(o_1)`` and ``Epk(o_2)``."""
        enc_and = self._sm.run(enc_bit_a, enc_bit_b)
        return self.xor_from_product(enc_bit_a, enc_bit_b, enc_and)

    def xor_from_product(self, enc_bit_a: Ciphertext, enc_bit_b: Ciphertext,
                         enc_product: Ciphertext) -> Ciphertext:
        """XOR given an already-computed encrypted product of the two bits.

        SMIN computes ``Epk(u_i * v_i)`` once and reuses it for both its
        ``W_i`` and ``G_i`` vectors; this helper performs only the local
        (non-interactive) part: ``E(a + b - 2ab)``.
        """
        return self.sub(enc_bit_a + enc_bit_b, enc_product * 2)
