"""Secure Squared Euclidean Distance (SSED) protocol — Algorithm 2.

P1 holds two attribute-wise encrypted vectors ``Epk(X)`` and ``Epk(Y)``; with
the help of P2 (who holds the secret key) it computes ``Epk(|X - Y|^2)``
without either party learning ``X`` or ``Y``.

The construction is a direct homomorphic evaluation of

    |X - Y|^2 = sum_i (x_i - y_i)^2

where each encrypted difference ``Epk(x_i - y_i)`` is obtained locally by P1
(homomorphic subtraction) and each square is obtained through one invocation
of the Secure Multiplication protocol.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round
from repro.protocols.sm import SecureMultiplication

__all__ = ["SecureSquaredEuclideanDistance"]


class SecureSquaredEuclideanDistance(TwoPartyProtocol):
    """Two-party secure squared Euclidean distance over encrypted vectors."""

    name = "SSED"

    def __init__(self, setting) -> None:
        super().__init__(setting)
        self._sm = SecureMultiplication(setting)

    @traced_round("run")
    def run(self, enc_x: Sequence[Ciphertext],
            enc_y: Sequence[Ciphertext]) -> Ciphertext:
        """Compute ``Epk(|X - Y|^2)`` from ``Epk(X)`` and ``Epk(Y)``.

        Args:
            enc_x: attribute-wise encryption of the m-dimensional vector X.
            enc_y: attribute-wise encryption of the m-dimensional vector Y.

        Returns:
            ``Epk(sum_i (x_i - y_i)^2)``, known only to P1.
        """
        self.require(len(enc_x) == len(enc_y),
                     f"dimension mismatch: {len(enc_x)} vs {len(enc_y)}")
        self.require(len(enc_x) > 0, "vectors must have at least one attribute")

        total: Ciphertext | None = None
        for enc_xi, enc_yi in zip(enc_x, enc_y):
            # Step 1: E(x_i - y_i) computed locally by P1.
            enc_diff = self.sub(enc_xi, enc_yi)
            # Step 2: E((x_i - y_i)^2) via the SM protocol with P2.
            enc_square = self._sm.run(enc_diff, enc_diff)
            # Step 3: homomorphic accumulation by P1.
            total = enc_square if total is None else total + enc_square
        assert total is not None
        return total

    @traced_round("run_many")
    def run_many(self, enc_x: Sequence[Ciphertext],
                 enc_y_list: Sequence[Sequence[Ciphertext]]
                 ) -> list[Ciphertext]:
        """Compute ``Epk(|X - Y_i|^2)`` against many vectors in one round.

        The vectorized form of the protocols' distance scan (step 2 of
        Algorithms 5 and 6, where ``X`` is the query and the ``Y_i`` are the
        table records).  Two batching effects apply:

        * the shared operand is negated **once per attribute** instead of once
          per (record, attribute) pair — valid because
          ``(x - y)^2 == (y - x)^2``, so every record can reuse ``E(-x_j)``
          in ``E(y_{i,j} - x_j)``; the scan's exponentiation count drops from
          ``3*n*m`` to ``2*n*m + m``; and
        * all ``n*m`` squarings run through one batched SM round instead of
          ``n*m`` sequential two-message exchanges.

        Args:
            enc_x: the shared m-dimensional encrypted vector (the query).
            enc_y_list: the encrypted vectors to compute distances against;
                entries longer than ``m`` are truncated to the leading ``m``
                attributes (trailing label columns do not join the distance).

        Returns:
            ``Epk(|X - Y_i|^2)`` for every ``Y_i``, in input order.
        """
        self.require(len(enc_x) > 0, "vectors must have at least one attribute")
        width = len(enc_x)
        for enc_y in enc_y_list:
            self.require(len(enc_y) >= width,
                         f"dimension mismatch: {len(enc_y)} vs {width}")
        if not enc_y_list:
            return []

        # E(-x_j), hoisted across all records.
        neg_x = self.neg_batch(list(enc_x))
        # E(y_ij - x_j) for every record and attribute (flattened).
        diffs: list[Ciphertext] = []
        for enc_y in enc_y_list:
            diffs.extend(self.pk.add_batch(list(enc_y[:width]), neg_x))
        # E((y_ij - x_j)^2) in one batched round.  With a precomputation
        # engine attached the squaring specialization applies (one engine
        # mask tuple, one decryption and one exponentiation per attribute
        # instead of the generic SM pair costs) — the offline/online split
        # the serving layer's warm pools rely on.
        if self.engine is not None:
            squares = self._sm.run_square_batch(diffs)
        else:
            squares = self._sm.run_batch([(diff, diff) for diff in diffs])
        # Per-record homomorphic accumulation.
        totals: list[Ciphertext] = []
        for index in range(len(enc_y_list)):
            row = squares[index * width:(index + 1) * width]
            total = row[0]
            for enc_square in row[1:]:
                total = total + enc_square
            totals.append(total)
        return totals
