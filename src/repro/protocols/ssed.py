"""Secure Squared Euclidean Distance (SSED) protocol — Algorithm 2.

P1 holds two attribute-wise encrypted vectors ``Epk(X)`` and ``Epk(Y)``; with
the help of P2 (who holds the secret key) it computes ``Epk(|X - Y|^2)``
without either party learning ``X`` or ``Y``.

The construction is a direct homomorphic evaluation of

    |X - Y|^2 = sum_i (x_i - y_i)^2

where each encrypted difference ``Epk(x_i - y_i)`` is obtained locally by P1
(homomorphic subtraction) and each square is obtained through one invocation
of the Secure Multiplication protocol.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol
from repro.protocols.sm import SecureMultiplication

__all__ = ["SecureSquaredEuclideanDistance"]


class SecureSquaredEuclideanDistance(TwoPartyProtocol):
    """Two-party secure squared Euclidean distance over encrypted vectors."""

    name = "SSED"

    def __init__(self, setting) -> None:
        super().__init__(setting)
        self._sm = SecureMultiplication(setting)

    def run(self, enc_x: Sequence[Ciphertext],
            enc_y: Sequence[Ciphertext]) -> Ciphertext:
        """Compute ``Epk(|X - Y|^2)`` from ``Epk(X)`` and ``Epk(Y)``.

        Args:
            enc_x: attribute-wise encryption of the m-dimensional vector X.
            enc_y: attribute-wise encryption of the m-dimensional vector Y.

        Returns:
            ``Epk(sum_i (x_i - y_i)^2)``, known only to P1.
        """
        self.require(len(enc_x) == len(enc_y),
                     f"dimension mismatch: {len(enc_x)} vs {len(enc_y)}")
        self.require(len(enc_x) > 0, "vectors must have at least one attribute")

        total: Ciphertext | None = None
        for enc_xi, enc_yi in zip(enc_x, enc_y):
            # Step 1: E(x_i - y_i) computed locally by P1.
            enc_diff = self.sub(enc_xi, enc_yi)
            # Step 2: E((x_i - y_i)^2) via the SM protocol with P2.
            enc_square = self._sm.run(enc_diff, enc_diff)
            # Step 3: homomorphic accumulation by P1.
            total = enc_square if total is None else total + enc_square
        assert total is not None
        return total
