"""Secure Minimum (SMIN) protocol — Algorithm 3 of the paper.

P1 holds two encrypted bit vectors ``[u]`` and ``[v]`` (most significant bit
first, ``0 <= u, v < 2**l``); P2 holds the secret key.  The protocol outputs
``[min(u, v)]`` to P1 while hiding ``u``, ``v`` *and which of the two is the
minimum* from both parties.

The trick that hides the comparison outcome is that P1 secretly flips a coin
to choose the functionality ``F`` — either "is u > v?" or "is v > u?" — and
runs an oblivious comparison whose one-bit outcome ``alpha`` is learned only
by P2 in terms of the *randomly chosen* F.  Since P2 does not know F, alpha
tells it nothing; since P1 never sees alpha in the clear (only ``Epk(alpha)``)
it also learns nothing.  P1 then combines ``Epk(alpha)`` with the masked
differences ``Gamma_i`` so that the final encrypted bits satisfy::

    F: u > v   ->   min_i = u_i + alpha * (v_i - u_i)
    F: v > u   ->   min_i = v_i + alpha * (u_i - v_i)

Vector roles (for one index ``i``, following the paper's notation):

* ``W_i``     encrypts 1 exactly when the bit of the *potential maximum*
  (according to F) is 1 and the other bit is 0;
* ``Gamma_i`` encrypts the randomized bit difference (+ mask ``rhat_i``);
* ``G_i``     encrypts ``u_i XOR v_i``;
* ``H_i``     marks (with an encryption of 1) the first index where the bits
  differ; earlier indices encrypt 0 and later indices encrypt random values;
* ``Phi_i``   is ``H_i - 1`` so the marked index encrypts 0;
* ``L_i``     equals ``W_i`` at the marked index and a random value elsewhere.

P2 decrypts the permuted ``L`` vector: the single index that decrypts to 1 or
0 (rather than a random value) reveals the outcome of the oblivious
functionality F, from which P2 forms ``alpha``.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round
from repro.protocols.sbor import SecureBitXor
from repro.protocols.sm import SecureMultiplication

__all__ = ["SecureMinimum"]


class SecureMinimum(TwoPartyProtocol):
    """Two-party secure minimum of two encrypted bit-decomposed values."""

    name = "SMIN"

    P2_STEPS = {
        "SMIN.gamma_and_l": "_p2_decide_alpha",
        "SMIN.batch_gamma_and_l": "_p2_decide_alpha_batch",
    }

    def __init__(self, setting) -> None:
        super().__init__(setting)
        self._sm = SecureMultiplication(setting)
        self._xor = SecureBitXor(setting)

    @traced_round("run")
    def run(self, enc_u_bits: Sequence[Ciphertext],
            enc_v_bits: Sequence[Ciphertext]) -> list[Ciphertext]:
        """Compute ``[min(u, v)]`` from ``[u]`` and ``[v]``.

        Args:
            enc_u_bits: encrypted bits of ``u`` (MSB first).
            enc_v_bits: encrypted bits of ``v`` (MSB first).

        Returns:
            Encrypted bits of ``min(u, v)`` (MSB first), known only to P1.
        """
        self.require(len(enc_u_bits) == len(enc_v_bits),
                     "bit vectors must have equal length")
        self.require(len(enc_u_bits) > 0, "bit vectors must be non-empty")
        bit_length = len(enc_u_bits)
        n = self.pk.n

        # ---- P1: step 1 -----------------------------------------------------
        # Randomly choose the oblivious functionality F.
        f_is_u_greater = bool(self.p1.rng.getrandbits(1))

        gamma_vector: list[Ciphertext] = []
        l_vector: list[Ciphertext] = []
        gamma_masks: list[int] = []

        enc_h_previous = self.encrypt_pooled_constant(self.p1, 0)
        for enc_u_bit, enc_v_bit in zip(enc_u_bits, enc_v_bits):
            enc_uv = self._sm.run(enc_u_bit, enc_v_bit)
            _, enc_gamma, enc_l, rhat, enc_h_previous = \
                self._p1_bit_vectors(enc_u_bit, enc_v_bit, enc_uv,
                                     f_is_u_greater, enc_h_previous)
            gamma_masks.append(rhat)
            gamma_vector.append(enc_gamma)
            l_vector.append(enc_l)

        # Permute Gamma and L with two independent random permutations.
        permutation_gamma = list(range(bit_length))
        permutation_l = list(range(bit_length))
        self.p1.rng.shuffle(permutation_gamma)
        self.p1.rng.shuffle(permutation_l)
        permuted_gamma = [gamma_vector[j] for j in permutation_gamma]
        permuted_l = [l_vector[j] for j in permutation_l]
        self.p1.send([permuted_gamma, permuted_l], tag="SMIN.gamma_and_l")

        # ---- P2: step 2 -----------------------------------------------------
        self.p2_step("SMIN.gamma_and_l")

        # ---- P1: step 3 -----------------------------------------------------
        received_m_prime, received_alpha = self.p1.receive(
            expected_tag="SMIN.masked_minimum"
        )
        # Invert the Gamma permutation.
        unpermuted = [None] * bit_length
        for position, original_index in enumerate(permutation_gamma):
            unpermuted[original_index] = received_m_prime[position]

        minimum_bits: list[Ciphertext] = []
        for i in range(bit_length):
            # lambda_i = M~_i * E(alpha)^{N - rhat_i}  ==  E(alpha * diff_i)
            enc_lambda = unpermuted[i] + (received_alpha * (n - gamma_masks[i]))
            if f_is_u_greater:
                enc_min_bit = enc_u_bits[i] + enc_lambda
            else:
                enc_min_bit = enc_v_bits[i] + enc_lambda
            minimum_bits.append(enc_min_bit)
        return minimum_bits

    # -- shared P1 bookkeeping -------------------------------------------------
    def _p1_bit_vectors(
        self, enc_u_bit: Ciphertext, enc_v_bit: Ciphertext,
        enc_uv: Ciphertext, f_is_u_greater: bool, enc_h_previous: Ciphertext,
    ) -> tuple[Ciphertext, Ciphertext, Ciphertext, int, Ciphertext]:
        """One bit's W/Gamma/G/H/Phi/L bookkeeping (step 1 of Algorithm 3).

        Shared between the scalar and the batched execution paths; the SM
        product ``Epk(u_i * v_i)`` is supplied by the caller.

        Returns:
            ``(W_i, Gamma_i, L_i, rhat_i, H_i)``.
        """
        n = self.pk.n
        if f_is_u_greater:
            # W_i = E(u_i * (1 - v_i));  Gamma_i = E(v_i - u_i + rhat_i)
            enc_w = self.sub(enc_u_bit, enc_uv)
            enc_diff = self.sub(enc_v_bit, enc_u_bit)
        else:
            # W_i = E(v_i * (1 - u_i));  Gamma_i = E(u_i - v_i + rhat_i)
            enc_w = self.sub(enc_v_bit, enc_uv)
            enc_diff = self.sub(enc_u_bit, enc_v_bit)
        # Randomized difference mask: a precomputed nonzero tuple when an
        # engine is attached (``E(rhat)`` paid offline), inline otherwise.
        rhat, enc_rhat = self.take_mask("nonzero")
        enc_gamma = enc_diff + enc_rhat

        # G_i = E(u_i XOR v_i), reusing the product computed above.
        enc_g = self._xor.xor_from_product(enc_u_bit, enc_v_bit, enc_uv)

        # H_i = H_{i-1}^{r_i} * G_i  — marks the first differing bit.
        r_i = self.p1.random_nonzero()
        enc_h = (enc_h_previous * r_i) + enc_g

        # Phi_i = E(-1) * H_i;  L_i = W_i * Phi_i^{r'_i}
        enc_phi = self.add_plain(enc_h, n - 1)
        r_prime = self.p1.random_nonzero()
        enc_l = enc_w + (enc_phi * r_prime)
        return enc_w, enc_gamma, enc_l, rhat, enc_h

    # -- batched execution -----------------------------------------------------
    @traced_round("run_batch", sized=True)
    def run_batch(
        self, pairs: Sequence[tuple[Sequence[Ciphertext], Sequence[Ciphertext]]]
    ) -> list[list[Ciphertext]]:
        """Compute ``[min(u_i, v_i)]`` for a whole vector of bit-vector pairs.

        Functionally (and in per-pair operation counts) identical to
        ``[self.run(u, v) for u, v in pairs]``, executed as one three-message
        round: every pair's per-bit SM products run through one batched SM
        invocation, P2 decrypts all permuted L vectors with the vectorized
        CRT kernel, and each pair keeps its own oblivious-functionality coin
        and permutations so the security argument is unchanged.  SMIN_n's
        tournament rounds call this with all pairs of a level.

        Args:
            pairs: ``(u_bits, v_bits)`` tuples; every bit vector across all
                pairs must share one length (MSB first).

        Returns:
            The encrypted minimum bit vector of each pair, in input order.
        """
        if not pairs:
            return []
        lengths = {len(bits) for pair in pairs for bits in pair}
        self.require(len(lengths) == 1,
                     "all bit vectors in a batch must share one length")
        bit_length = lengths.pop()
        self.require(bit_length > 0, "bit vectors must be non-empty")
        n = self.pk.n

        # ---- P1: step 1 for every pair --------------------------------------
        f_flags = [bool(self.p1.rng.getrandbits(1)) for _ in pairs]
        sm_inputs: list[tuple[Ciphertext, Ciphertext]] = []
        for enc_u_bits, enc_v_bits in pairs:
            sm_inputs.extend(zip(enc_u_bits, enc_v_bits))
        products = self._sm.run_batch(sm_inputs)

        payload = []
        pair_states: list[tuple[list[int], list[int]]] = []
        for index, (enc_u_bits, enc_v_bits) in enumerate(pairs):
            f_is_u_greater = f_flags[index]
            enc_h_previous = self.encrypt_pooled_constant(self.p1, 0)
            gamma_vector: list[Ciphertext] = []
            l_vector: list[Ciphertext] = []
            gamma_masks: list[int] = []
            for i in range(bit_length):
                enc_uv = products[index * bit_length + i]
                _, enc_gamma, enc_l, rhat, enc_h_previous = \
                    self._p1_bit_vectors(enc_u_bits[i], enc_v_bits[i], enc_uv,
                                         f_is_u_greater, enc_h_previous)
                gamma_masks.append(rhat)
                gamma_vector.append(enc_gamma)
                l_vector.append(enc_l)

            permutation_gamma = list(range(bit_length))
            permutation_l = list(range(bit_length))
            self.p1.rng.shuffle(permutation_gamma)
            self.p1.rng.shuffle(permutation_l)
            payload.append([
                [gamma_vector[j] for j in permutation_gamma],
                [l_vector[j] for j in permutation_l],
            ])
            pair_states.append((gamma_masks, permutation_gamma))
        self.p1.send(payload, tag="SMIN.batch_gamma_and_l")

        # ---- P2: step 2 for every pair --------------------------------------
        self.p2_step("SMIN.batch_gamma_and_l")

        # ---- P1: step 3 for every pair --------------------------------------
        received_m, received_alphas = self.p1.receive(
            expected_tag="SMIN.batch_masked_minimums")
        results: list[list[Ciphertext]] = []
        for index, (enc_u_bits, enc_v_bits) in enumerate(pairs):
            gamma_masks, permutation_gamma = pair_states[index]
            enc_alpha = received_alphas[index]
            unpermuted: list[Ciphertext | None] = [None] * bit_length
            for position, original_index in enumerate(permutation_gamma):
                unpermuted[original_index] = received_m[index][position]
            # lambda_i = M~_i * E(alpha)^{N - rhat_i}
            lambdas = self.pk.add_batch(
                unpermuted,
                self.pk.scalar_mul_batch(
                    [enc_alpha] * bit_length,
                    [n - mask for mask in gamma_masks]),
            )
            base_bits = enc_u_bits if f_flags[index] else enc_v_bits
            results.append(self.pk.add_batch(list(base_bits), lambdas))
        return results

    # -- P2 side -------------------------------------------------------------
    def _p2_decide_alpha(self) -> None:
        """P2 decrypts the permuted L vector and forms ``alpha`` and ``M'``.

        ``alpha = 1`` when some entry of the decrypted L vector equals 1 (the
        outcome of P1's secretly chosen functionality F is true), otherwise 0.
        ``M'_i = Gamma'_i ^ alpha`` so that P1 later recovers
        ``alpha * (diff_i + rhat_i)`` without learning alpha.
        """
        permuted_gamma, permuted_l = self.p2.receive(expected_tag="SMIN.gamma_and_l")
        decrypted_l = [self.p2.decrypt_residue(c) for c in permuted_l]
        alpha = 1 if any(value == 1 for value in decrypted_l) else 0
        m_prime = [enc_gamma * alpha for enc_gamma in permuted_gamma]
        enc_alpha = self.encrypt_pooled_constant(self.p2, alpha)
        self.p2.send([m_prime, enc_alpha], tag="SMIN.masked_minimum")

    def _p2_decide_alpha_batch(self) -> None:
        """Batched step 2: one alpha decision per pair, vectorized decryption."""
        received_payload = self.p2.receive(expected_tag="SMIN.batch_gamma_and_l")
        flat_l = [cipher for _, permuted_l in received_payload
                  for cipher in permuted_l]
        bit_length = (len(flat_l) // len(received_payload)
                      if received_payload else 0)
        decrypted_l = self.p2.decrypt_residue_batch(flat_l)
        alphas: list[int] = []
        m_primes: list[list[Ciphertext]] = []
        for index, (permuted_gamma, _) in enumerate(received_payload):
            window = decrypted_l[index * bit_length:(index + 1) * bit_length]
            alpha = 1 if any(value == 1 for value in window) else 0
            alphas.append(alpha)
            m_primes.append(self.pk.scalar_mul_batch(permuted_gamma, alpha))
        enc_alphas = self.encrypt_pooled_constants(self.p2, alphas)
        self.p2.send([m_primes, enc_alphas], tag="SMIN.batch_masked_minimums")
