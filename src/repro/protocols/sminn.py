"""Secure Minimum out of n numbers (SMIN_n) — Algorithm 4 of the paper.

P1 holds ``n`` encrypted bit vectors ``[d_1], ..., [d_n]``; P2 holds the
secret key.  The protocol outputs ``[min(d_1, ..., d_n)]`` to P1 without
revealing any ``d_i`` (or which index attains the minimum) to either party.

The paper computes the result with a binary tournament (a balanced execution
tree processed bottom-up, Figure 1): in every round surviving values are
paired and each pair is reduced with one SMIN invocation, so the tree has
``ceil(log2 n)`` levels and ``n - 1`` SMIN calls in total.  An alternative
"sequential chain" topology (fold the list left to right) performs the same
``n - 1`` SMIN calls but cannot be parallelized; it is provided for the
ablation benchmark that motivates the paper's choice.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round
from repro.protocols.smin import SecureMinimum

__all__ = ["SecureMinimumOfN"]

Topology = Literal["tournament", "chain"]


class SecureMinimumOfN(TwoPartyProtocol):
    """Two-party secure minimum of ``n`` encrypted bit-decomposed values."""

    name = "SMINn"

    def __init__(self, setting, topology: Topology = "tournament") -> None:
        """Create an SMIN_n instance.

        Args:
            setting: the two-party environment.
            topology: ``"tournament"`` for the paper's binary execution tree
                (Algorithm 4) or ``"chain"`` for a sequential left fold; both
                perform exactly ``n - 1`` SMIN invocations.
        """
        super().__init__(setting)
        if topology not in ("tournament", "chain"):
            raise ValueError(f"unknown SMINn topology: {topology!r}")
        self.topology = topology
        self._smin = SecureMinimum(setting)

    @traced_round("run", sized=True)
    def run(self, encrypted_values: Sequence[Sequence[Ciphertext]]
            ) -> list[Ciphertext]:
        """Compute ``[min(d_1, ..., d_n)]`` from the encrypted bit vectors.

        Args:
            encrypted_values: sequence of ``n`` encrypted bit vectors, each of
                the same length ``l`` (MSB first).

        Returns:
            The encrypted bit vector of the global minimum, known only to P1.
        """
        self.require(len(encrypted_values) > 0, "need at least one value")
        lengths = {len(bits) for bits in encrypted_values}
        self.require(len(lengths) == 1, "all bit vectors must share one length")

        if self.topology == "chain":
            return self._run_chain(encrypted_values)
        return self._run_tournament(encrypted_values)

    # -- topologies ------------------------------------------------------------
    def _run_tournament(self, encrypted_values: Sequence[Sequence[Ciphertext]]
                        ) -> list[Ciphertext]:
        """The paper's bottom-up binary execution tree (Figure 1).

        All pairs of a tree level are independent, so each level executes as
        one batched SMIN round (:meth:`SecureMinimum.run_batch`): the same
        ``n - 1`` SMIN invocations overall, grouped into ``ceil(log2 n)``
        vectorized message exchanges instead of ``n - 1`` sequential ones.
        When a precomputation engine is attached to the setting, every level
        draws its ``rhat``/``H_0``/``alpha`` material from the engine's pools
        through the shared SMIN instance.
        """
        survivors: list[list[Ciphertext]] = [list(bits) for bits in encrypted_values]
        while len(survivors) > 1:
            # Pair adjacent survivors; an odd one out advances unchanged.
            pairs = [(survivors[j], survivors[j + 1])
                     for j in range(0, len(survivors) - 1, 2)]
            next_round = self._smin.run_batch(pairs)
            if len(survivors) % 2 == 1:
                next_round.append(survivors[-1])
            survivors = next_round
        return survivors[0]

    def _run_chain(self, encrypted_values: Sequence[Sequence[Ciphertext]]
                   ) -> list[Ciphertext]:
        """Sequential left fold — same work, maximal depth (ablation only)."""
        current = list(encrypted_values[0])
        for bits in encrypted_values[1:]:
            current = self._smin.run(current, list(bits))
        return current

    # -- analytics ---------------------------------------------------------------
    @staticmethod
    def smin_invocations(count: int) -> int:
        """Number of SMIN calls needed for ``count`` inputs (both topologies)."""
        return max(count - 1, 0)

    @staticmethod
    def tree_depth(count: int) -> int:
        """Depth of the tournament tree, i.e. ``ceil(log2 n)``."""
        if count <= 1:
            return 0
        depth = 0
        remaining = count
        while remaining > 1:
            remaining = (remaining + 1) // 2
            depth += 1
        return depth
