"""Secure two-party sub-protocols from Section 3 of the paper.

All protocols run between the evaluator P1 (cloud C1, knows only the public
key) and the decryptor P2 (cloud C2, holds the Paillier secret key):

* :class:`SecureMultiplication` (SM) — ``Epk(a), Epk(b) -> Epk(a*b)``
* :class:`SecureSquaredEuclideanDistance` (SSED) — ``Epk(X), Epk(Y) -> Epk(|X-Y|^2)``
* :class:`SecureBitDecomposition` (SBD) — ``Epk(z) -> [z]``
* :class:`SecureMinimum` (SMIN) — ``[u], [v] -> [min(u, v)]``
* :class:`SecureMinimumOfN` (SMIN_n) — ``[d_1..d_n] -> [min]``
* :class:`SecureBitOr` (SBOR) / :class:`SecureBitXor` (SBXOR)
"""

from repro.protocols.base import ProtocolResult, TwoPartyProtocol
from repro.protocols.encoding import (
    bits_to_int,
    decrypt_bits,
    encrypt_bits,
    int_to_bits,
    recompose_from_encrypted_bits,
)
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.sbor import SecureBitOr, SecureBitXor
from repro.protocols.sm import SecureMultiplication
from repro.protocols.smin import SecureMinimum
from repro.protocols.sminn import SecureMinimumOfN
from repro.protocols.ssed import SecureSquaredEuclideanDistance

__all__ = [
    "TwoPartyProtocol",
    "ProtocolResult",
    "SecureMultiplication",
    "SecureSquaredEuclideanDistance",
    "SecureBitDecomposition",
    "SecureMinimum",
    "SecureMinimumOfN",
    "SecureBitOr",
    "SecureBitXor",
    "int_to_bits",
    "bits_to_int",
    "encrypt_bits",
    "decrypt_bits",
    "recompose_from_encrypted_bits",
]
