"""Shared machinery for the two-party secure sub-protocols of Section 3.

Every sub-protocol (SM, SSED, SBD, SMIN, SMIN_n, SBOR) runs between the same
two parties:

* ``P1`` — the evaluator (cloud C1): holds ciphertexts and the public key;
* ``P2`` — the decryptor (cloud C2): holds the Paillier secret key.

Protocol classes derive from :class:`TwoPartyProtocol`, which stores the
:class:`~repro.network.party.TwoPartySetting` and exposes the small set of
ciphertext manipulations that appear over and over in the paper's algorithms
(homomorphic subtraction, multiplication by ``N - r`` to realize ``-r``, and
fresh randomization).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import used for annotations only
    from repro.crypto.precompute import PrecomputeEngine

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.exceptions import ProtocolError
from repro.network.party import DecryptorParty, EvaluatorParty, TwoPartySetting
from repro.network.stats import ProtocolRunStats
from repro.telemetry import metrics as _metrics
from repro.telemetry import profiling as _profiling
from repro.telemetry import tracing as _tracing

__all__ = ["P2StepDispatcher", "TwoPartyProtocol", "ProtocolResult",
           "record_round", "traced_round"]


def record_round(protocol: str, operation: str) -> None:
    """Count one protocol round in the process-wide metrics registry."""
    _metrics.get_registry().counter(
        "repro_protocol_rounds_total",
        "Two-party protocol rounds executed, by protocol and entry point.",
        ("protocol", "operation"),
    ).inc(protocol=protocol, operation=operation)


def traced_round(operation: str, sized: bool = False):
    """Decorate a protocol ``run*`` entry point with round telemetry.

    Wraps the call in :meth:`TwoPartyProtocol.round_span`; with
    ``sized=True`` the first positional argument's length is attached to
    the span as ``items`` (batch entry points).
    """
    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            attributes = {}
            if sized and args and hasattr(args[0], "__len__"):
                attributes["items"] = len(args[0])
            with self.round_span(operation, **attributes):
                return method(self, *args, **kwargs)
        return wrapper
    return decorate


class P2StepDispatcher:
    """Tag-keyed dispatch of the decryptor's (P2/C2's) protocol steps.

    Every interaction with the key holder has one shape: P1 sends a tagged
    message, P2 *receives that tag, computes, and sends a tagged reply*.
    Protocol classes implement each such step as a handler method (which
    performs its own ``receive`` and ``send``) and register it in
    :attr:`P2_STEPS`, keyed by the tag of the message that triggers it.

    Drivers invoke ``self.p2_step(tag)`` right after sending the triggering
    message.  Over the in-memory channel (which hosts both parties) the
    handler runs inline — byte-for-byte the behavior of the old interleaved
    drivers.  Over a :class:`~repro.transport.channel.TcpChannel` the call
    is a no-op: the remote party's daemon dispatches the same handler when
    the frame arrives (see :mod:`repro.transport.daemon`), which is what
    lets the protocol implementations run unchanged across both runtimes.

    Shared by the sub-protocol base (:class:`TwoPartyProtocol`) and the
    query-protocol base (:class:`~repro.core.sknn_base.SkNNProtocol`);
    subclasses provide :attr:`_p2_channel`.
    """

    #: short protocol name used in statistics and error messages
    name = "protocol"

    #: incoming-message tag -> name of the P2 handler method consuming it
    P2_STEPS: "dict[str, str]" = {}

    @property
    def _p2_channel(self):
        """The channel whose locality decides where P2 steps execute."""
        raise NotImplementedError

    def p2_step(self, tag: str) -> Any:
        """Run the P2 handler for ``tag`` when P2 lives in this process.

        Returns the handler's return value locally, ``None`` when the
        decryptor is remote (its daemon runs the handler on frame arrival).
        """
        if getattr(self._p2_channel, "runs_both_parties", True):
            return self.dispatch_p2(tag)
        return None

    def dispatch_p2(self, tag: str) -> Any:
        """Execute the P2 handler registered for ``tag`` unconditionally.

        The handler body is C2's work, so when a cost ledger is armed the
        step runs under a ``party="C2"`` scope — this is what gives the
        serial runtime (both parties in-process) its C2-attributed phases.
        """
        method_name = self.P2_STEPS.get(tag)
        if method_name is None:
            raise ProtocolError(
                f"{self.name}: no P2 step registered for tag {tag!r}")
        with _profiling.cost_scope(tag.split(".", 1)[0], party="C2"):
            return getattr(self, method_name)()

    def collect_p2_handlers(self) -> "dict[str, Any]":
        """All P2 handlers of this protocol and its sub-protocols, by tag.

        A party daemon builds its dispatch registry from this: the union of
        ``tag -> bound handler`` over the protocol object graph.  Duplicate
        tags across instances are fine — the handlers are stateless between
        steps, so any instance's binding serves.
        """
        handlers: dict[str, Any] = {
            tag: getattr(self, method_name)
            for tag, method_name in self.P2_STEPS.items()
        }
        for attribute in vars(self).values():
            if isinstance(attribute, P2StepDispatcher):
                handlers.update(attribute.collect_p2_handlers())
        return handlers


@dataclass
class ProtocolResult:
    """Return value of an instrumented protocol execution.

    Attributes:
        output: the protocol's functional output (known only to P1).
        stats: operation and traffic statistics gathered during the run.
    """

    output: Any
    stats: ProtocolRunStats


class TwoPartyProtocol(P2StepDispatcher):
    """Base class for all of the paper's two-party sub-protocols.

    P2 steps are registered and dispatched through the inherited
    :class:`P2StepDispatcher` machinery.
    """

    #: short protocol name used in statistics and logging ("SM", "SSED", ...)
    name = "two-party-protocol"

    def __init__(self, setting: TwoPartySetting) -> None:
        self.setting = setting

    @property
    def _p2_channel(self):
        return self.setting.channel

    # -- party / key accessors ------------------------------------------------
    @property
    def p1(self) -> EvaluatorParty:
        """The evaluator party (cloud C1)."""
        return self.setting.evaluator

    @property
    def p2(self) -> DecryptorParty:
        """The decryptor party (cloud C2) holding the secret key."""
        return self.setting.decryptor

    @property
    def pk(self) -> PaillierPublicKey:
        """The shared Paillier public key."""
        return self.setting.public_key

    @property
    def engine(self) -> "PrecomputeEngine | None":
        """P1's precomputation engine, when one is attached.

        Resolution is dynamic (engines live on the party objects), so
        attaching an engine after protocol construction still takes effect.
        P2-side material goes through :meth:`encrypt_pooled_constant` with
        the decryptor party, which resolves that party's *own* engine —
        pools are never shared across the trust boundary.
        """
        return getattr(self.setting, "engine", None)

    @staticmethod
    def engine_for(party) -> "PrecomputeEngine | None":
        """The engine owned by ``party`` (or ``None``)."""
        return getattr(party, "engine", None)

    # -- precomputed material with graceful fallback ---------------------------
    def take_mask(self, kind: str = "zn",
                  sbd_upper: int | None = None) -> "tuple[int, Ciphertext]":
        """One P1 additive mask ``(r, E(r))`` — pooled offline when possible.

        Falls back to sampling with P1's rng and a fresh encryption when no
        engine is attached; operation counts are identical either way (one
        encryption), only *where* the obfuscator exponentiation happened
        differs.
        """
        engine = self.engine
        if engine is not None:
            return engine.take_mask(kind, sbd_upper=sbd_upper)
        if sbd_upper is not None:
            r = self.p1.rng.randrange(sbd_upper)
        elif kind == "nonzero":
            r = self.p1.random_nonzero()
        else:
            r = self.p1.random_in_zn()
        return r, self.p1.encrypt(r)

    def encrypt_pooled_constant(self, party, value: int) -> Ciphertext:
        """A fresh encryption of a constant by ``party``.

        Served from the party's own engine pools when it owns one (the
        randomness must be the encrypting party's — a pool filled by the
        other party would let it link or unmask the ciphertext).
        """
        engine = self.engine_for(party)
        if engine is not None:
            return engine.encrypt_constant(value)
        return party.encrypt(value)

    def encrypt_pooled_constants(self, party,
                                 values: "list[int]") -> "list[Ciphertext]":
        """Vectorized :meth:`encrypt_pooled_constant`."""
        engine = self.engine_for(party)
        if engine is not None:
            return engine.encrypt_constants(values)
        return party.encrypt_batch(values)

    # -- ciphertext helpers -----------------------------------------------------
    def sub(self, left: Ciphertext, right: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction ``E(a - b) = E(a) * E(b)^{N-1}``."""
        return left + (right * (self.pk.n - 1))

    def scale(self, ciphertext: Ciphertext, scalar: int) -> Ciphertext:
        """Homomorphic scalar multiplication ``E(a * s) = E(a)^s``."""
        return ciphertext * (scalar % self.pk.n)

    def add_plain(self, ciphertext: Ciphertext, value: int) -> Ciphertext:
        """Homomorphic addition of a plaintext constant (mod N)."""
        return ciphertext + (value % self.pk.n)

    def encrypt_constant(self, value: int) -> Ciphertext:
        """Fresh probabilistic encryption of a constant by P1."""
        return self.p1.encrypt(value)

    # -- vectorized ciphertext helpers ----------------------------------------
    def neg_batch(self, ciphertexts: "list[Ciphertext]") -> "list[Ciphertext]":
        """Vectorized homomorphic negation ``E(-a)`` (inverse shortcut).

        Counted as one exponentiation per element, like the textbook
        ``E(a)**(N-1)`` it replaces (see
        :meth:`~repro.crypto.paillier.PaillierPublicKey.scalar_mul_batch`).
        """
        return self.pk.scalar_mul_batch(ciphertexts, -1)

    def sub_batch(self, left: "list[Ciphertext]",
                  right: "list[Ciphertext]") -> "list[Ciphertext]":
        """Vectorized homomorphic subtraction ``E(a_i - b_i)``."""
        return self.pk.add_batch(left, self.neg_batch(right))

    def require(self, condition: bool, message: str) -> None:
        """Raise :class:`ProtocolError` when a protocol precondition fails."""
        if not condition:
            raise ProtocolError(f"{self.name}: {message}")

    # -- instrumentation --------------------------------------------------------
    def round_span(self, operation: str, **attributes: Any):
        """Telemetry for one protocol round (a ``run``/``run_batch`` entry).

        Always increments ``repro_protocol_rounds_total{protocol,operation}``
        and returns a trace span named ``<name>.<operation>`` — a shared
        no-op object when no query trace is active, so instrumenting hot
        paths unconditionally is free.  When a cost ledger is armed the
        span is paired with a ``cost_scope(self.name)``, attributing the
        round's counter deltas and wall time to this sub-protocol.
        """
        record_round(self.name, operation)
        span = _tracing.span(f"{self.name}.{operation}", **attributes)
        return _profiling.wrap_span(span, self.name)

    def run_instrumented(self, *args: Any, **kwargs: Any) -> ProtocolResult:
        """Run the protocol and collect operation/traffic statistics.

        The counters of both parties and the channel are snapshotted before
        and after the run, so nested usage (e.g. SSED calling SM) attributes
        all work to the outermost instrumented call.
        """
        pk_counter_before = self.pk.counter.snapshot()
        sk_counter_before = self.p2.private_key.counter.snapshot()
        traffic_before = self.setting.channel.total_traffic().snapshot()

        started = time.perf_counter()
        output = self.run(*args, **kwargs)
        elapsed = time.perf_counter() - started

        pk_counter_after = self.pk.counter.snapshot()
        sk_counter_after = self.p2.private_key.counter.snapshot()
        traffic_after = self.setting.channel.total_traffic().snapshot()

        stats = ProtocolRunStats(
            protocol=self.name,
            wall_time_seconds=elapsed,
            c1_encryptions=(
                pk_counter_after["encryptions"] - pk_counter_before["encryptions"]
            ),
            c1_exponentiations=(
                pk_counter_after["exponentiations"]
                - pk_counter_before["exponentiations"]
            ),
            c1_homomorphic_additions=(
                pk_counter_after["homomorphic_additions"]
                - pk_counter_before["homomorphic_additions"]
            ),
            c2_decryptions=(
                sk_counter_after["decryptions"] - sk_counter_before["decryptions"]
            ),
            messages=traffic_after["messages"] - traffic_before["messages"],
            ciphertexts_exchanged=(
                traffic_after["ciphertexts"] - traffic_before["ciphertexts"]
            ),
            bytes_transferred=(
                traffic_after["bytes_transferred"]
                - traffic_before["bytes_transferred"]
            ),
        )
        return ProtocolResult(output=output, stats=stats)

    def run(self, *args: Any, **kwargs: Any) -> Any:
        """Execute the protocol; implemented by subclasses."""
        raise NotImplementedError
