"""Bit-vector encodings used by the SBD / SMIN family of protocols.

The paper writes ``[z]`` for the vector of encryptions of the individual bits
of ``z`` (most significant bit first, Table 3).  This module provides the
plaintext helpers for converting between integers and fixed-width bit lists,
plus convenience functions to encrypt/decrypt whole bit vectors (used by tests
and by the data owner when precomputing inputs).
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.exceptions import DomainError

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "encrypt_bits",
    "decrypt_bits",
    "recompose_from_encrypted_bits",
    "max_value_bits",
]


def int_to_bits(value: int, bit_length: int) -> list[int]:
    """Decompose ``value`` into ``bit_length`` bits, most significant first.

    Args:
        value: non-negative integer with ``0 <= value < 2**bit_length``.
        bit_length: the paper's domain parameter ``l``.

    Raises:
        DomainError: when the value does not fit in ``bit_length`` bits.
    """
    if bit_length <= 0:
        raise DomainError(f"bit length must be positive, got {bit_length}")
    if value < 0 or value >= (1 << bit_length):
        raise DomainError(
            f"value {value} outside [0, 2**{bit_length}) for bit decomposition"
        )
    return [(value >> (bit_length - 1 - i)) & 1 for i in range(bit_length)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Recompose an integer from a most-significant-first bit list."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise DomainError(f"bit vector contains a non-bit value: {bit}")
        value = (value << 1) | bit
    return value


def max_value_bits(bit_length: int) -> list[int]:
    """The all-ones bit vector, i.e. ``2**l - 1`` (the paper's "maximum value")."""
    if bit_length <= 0:
        raise DomainError(f"bit length must be positive, got {bit_length}")
    return [1] * bit_length


def encrypt_bits(public_key: PaillierPublicKey, value: int, bit_length: int,
                 rng: Random | None = None) -> list[Ciphertext]:
    """Encrypt the bit decomposition of ``value`` (the paper's ``[value]``)."""
    return [public_key.encrypt(bit, rng=rng) for bit in int_to_bits(value, bit_length)]


def decrypt_bits(private_key: PaillierPrivateKey,
                 encrypted_bits: Sequence[Ciphertext]) -> int:
    """Decrypt an encrypted bit vector back to the integer it represents.

    Only used by tests and by trusted parties — inside the protocols neither
    cloud ever decrypts a bit vector.
    """
    bits = [private_key.decrypt(c) for c in encrypted_bits]
    return bits_to_int(bits)


def recompose_from_encrypted_bits(
    encrypted_bits: Sequence[Ciphertext],
) -> Ciphertext:
    """Homomorphically recompose ``E(z)`` from ``[z]``.

    Implements the paper's step 3(b) of Algorithm 6:

    ``E(z) = prod_gamma E(z_{gamma+1}) ^ (2 ** (l - gamma - 1))``

    i.e. each encrypted bit is scaled by its positional weight and the scaled
    ciphertexts are summed homomorphically.
    """
    if not encrypted_bits:
        raise DomainError("cannot recompose an empty encrypted bit vector")
    bit_length = len(encrypted_bits)
    total: Ciphertext | None = None
    for index, encrypted_bit in enumerate(encrypted_bits):
        weight = 1 << (bit_length - 1 - index)
        term = encrypted_bit * weight
        total = term if total is None else total + term
    assert total is not None
    return total
