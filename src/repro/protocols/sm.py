"""Secure Multiplication (SM) protocol — Algorithm 1 of the paper.

Given ``Epk(a)`` and ``Epk(b)`` held by P1 and the secret key held by P2, the
protocol returns ``Epk(a * b)`` to P1 without revealing ``a`` or ``b`` to
either party.  It relies on the identity (Equation 1 of the paper)::

    a * b = (a + r_a)(b + r_b) - a*r_b - b*r_a - r_a*r_b      (mod N)

P1 additively masks both operands with fresh random values, P2 decrypts the
masked operands, multiplies them in the clear and returns the encryption of
the product, and P1 strips the three cross terms homomorphically.

What each party sees
--------------------
* P2 sees ``a + r_a mod N`` and ``b + r_b mod N`` — uniformly random values
  because the masks are uniform in ``Z_N``.
* P1 sees only ciphertexts.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round

__all__ = ["SecureMultiplication"]


class SecureMultiplication(TwoPartyProtocol):
    """Two-party secure multiplication of Paillier-encrypted values."""

    name = "SM"

    P2_STEPS = {
        "SM.masked_operands": "_p2_multiply_masked",
        "SM.batch_masked_operands": "_p2_multiply_masked_batch",
        "SM.batch_masked_squares": "_p2_square_masked_batch",
    }

    @traced_round("run")
    def run(self, enc_a: Ciphertext, enc_b: Ciphertext) -> Ciphertext:
        """Compute ``Epk(a * b)`` from ``Epk(a)`` and ``Epk(b)``.

        Args:
            enc_a: ``Epk(a)`` held by P1.
            enc_b: ``Epk(b)`` held by P1.

        Returns:
            ``Epk(a * b mod N)``, known only to P1.
        """
        masked_a, masked_b, r_a, r_b = self._p1_mask_operands(enc_a, enc_b)
        self.p1.send([masked_a, masked_b], tag="SM.masked_operands")
        self.p2_step("SM.masked_operands")

        received = self.p1.receive(expected_tag="SM.masked_product")
        return self._p1_unmask(received, enc_a, enc_b, r_a, r_b)

    # -- P1 steps ---------------------------------------------------------------
    def _p1_mask_operands(
        self, enc_a: Ciphertext, enc_b: Ciphertext
    ) -> tuple[Ciphertext, Ciphertext, int, int]:
        """Step 1: P1 additively masks both operands with fresh randomness.

        The mask tuples ``(r, E(r))`` come from the precomputation engine
        when one is attached, turning the two mask encryptions into hot-path
        multiplications; the fallback samples and encrypts inline.
        """
        r_a, enc_r_a = self.take_mask()
        r_b, enc_r_b = self.take_mask()
        masked_a = enc_a + enc_r_a
        masked_b = enc_b + enc_r_b
        return masked_a, masked_b, r_a, r_b

    def _p1_unmask(self, product_cipher: Ciphertext, enc_a: Ciphertext,
                   enc_b: Ciphertext, r_a: int, r_b: int) -> Ciphertext:
        """Step 3: P1 removes the cross terms from ``E((a+r_a)(b+r_b))``."""
        n = self.pk.n
        # s  = h' * E(a)^{N - r_b}        == E((a+r_a)(b+r_b) - a*r_b)
        s = product_cipher + (enc_a * (n - r_b))
        # s' = s * E(b)^{N - r_a}          == ... - b*r_a
        s_prime = s + (enc_b * (n - r_a))
        # result = s' * E(r_a * r_b)^{N-1} == ... - r_a*r_b
        return self.add_plain(s_prime, -(r_a * r_b) % n)

    # -- P2 steps ---------------------------------------------------------------
    def _p2_multiply_masked(self) -> None:
        """Step 2: P2 decrypts the masked operands and multiplies them."""
        masked_a, masked_b = self.p2.receive(expected_tag="SM.masked_operands")
        h_a = self.p2.decrypt_residue(masked_a)
        h_b = self.p2.decrypt_residue(masked_b)
        h = (h_a * h_b) % self.pk.n
        self.p2.send(self.p2.encrypt(h), tag="SM.masked_product")

    def _p2_multiply_masked_batch(self) -> None:
        """Batched step 2: decrypt every masked pair, multiply in the clear."""
        n = self.pk.n
        received_a, received_b = self.p2.receive(
            expected_tag="SM.batch_masked_operands")
        h_a = self.p2.decrypt_residue_batch(received_a)
        h_b = self.p2.decrypt_residue_batch(received_b)
        products = [(x * y) % n for x, y in zip(h_a, h_b)]
        self.p2.send(self.p2.encrypt_batch(products),
                     tag="SM.batch_masked_products")

    def _p2_square_masked_batch(self) -> None:
        """Squaring step 2: decrypt each masked value and square it."""
        n = self.pk.n
        received_masked = self.p2.receive(expected_tag="SM.batch_masked_squares")
        h_values = self.p2.decrypt_residue_batch(received_masked)
        self.p2.send(self.p2.encrypt_batch([(h * h) % n for h in h_values]),
                     tag="SM.batch_square_products")

    # -- batched execution -------------------------------------------------------
    @traced_round("run_batch", sized=True)
    def run_batch(self, pairs: Sequence[tuple[Ciphertext, Ciphertext]]
                  ) -> list[Ciphertext]:
        """Compute ``Epk(a_i * b_i)`` for a whole vector of operand pairs.

        Functionally (and in per-pair operation counts: 3 encryptions, 2
        decryptions, 2 exponentiations, 5 homomorphic additions) identical to
        ``[self.run(a, b) for a, b in pairs]``, but executed as one protocol
        round: both parties exchange two messages total instead of two per
        pair, every encryption draws its obfuscator from the key's fixed-base
        window table, and decryptions run through the vectorized CRT kernel.
        The protocols' scan loops call this with all ``n`` records of a round.
        """
        if not pairs:
            return []
        n = self.pk.n
        enc_a_vec = [a for a, _ in pairs]
        enc_b_vec = [b for _, b in pairs]

        # Step 1: P1 masks every operand with fresh randomness (precomputed
        # mask tuples when an engine is attached).
        engine = self.engine
        if engine is not None:
            tuples_a = engine.take_masks(len(pairs))
            tuples_b = engine.take_masks(len(pairs))
            masks_a = [r for r, _ in tuples_a]
            masks_b = [r for r, _ in tuples_b]
            enc_masks_a = [c for _, c in tuples_a]
            enc_masks_b = [c for _, c in tuples_b]
        else:
            masks_a = [self.p1.random_in_zn() for _ in pairs]
            masks_b = [self.p1.random_in_zn() for _ in pairs]
            enc_masks_a = self.p1.encrypt_batch(masks_a)
            enc_masks_b = self.p1.encrypt_batch(masks_b)
        masked_a = self.pk.add_batch(enc_a_vec, enc_masks_a)
        masked_b = self.pk.add_batch(enc_b_vec, enc_masks_b)
        self.p1.send([masked_a, masked_b], tag="SM.batch_masked_operands")

        # Step 2: P2 decrypts all masked operands and multiplies them.
        self.p2_step("SM.batch_masked_operands")

        # Step 3: P1 strips the cross terms from every product.
        received = self.p1.receive(expected_tag="SM.batch_masked_products")
        cross_a = self.pk.scalar_mul_batch(
            enc_a_vec, [n - r_b for r_b in masks_b])
        cross_b = self.pk.scalar_mul_batch(
            enc_b_vec, [n - r_a for r_a in masks_a])
        stripped = self.pk.add_batch(
            self.pk.add_batch(received, cross_a), cross_b)
        return [
            self.add_plain(cipher, -(r_a * r_b) % n)
            for cipher, r_a, r_b in zip(stripped, masks_a, masks_b)
        ]

    @traced_round("run_square_batch", sized=True)
    def run_square_batch(self, ciphertexts: Sequence[Ciphertext]
                         ) -> list[Ciphertext]:
        """Compute ``Epk(a_i^2)`` for a vector, built for warm mask pools.

        The specialization of :meth:`run_batch` to squaring pairs ``(a, a)``
        that the precomputed pipeline uses: because both operands are equal,
        *one* additive mask per element suffices — P1 sends ``E(a + r)``
        (mask tuple from the engine, a hot-path multiplication), P2 decrypts
        ``h = a + r``, squares in the clear and returns ``E(h^2)`` (pooled
        obfuscator), and P1 strips ``a^2 = h^2 - 2*r*a - r^2`` with a single
        exponentiation ``E(a)^{N - 2r}`` plus a plaintext-constant addition.

        Per element: 2 encryptions (both precomputable), 1 decryption and 1
        exponentiation — versus 3/2/2 for the generic pair path — which is
        what makes the warm-pool online scan nearly powmod-free on the
        encryption side.  Leakage is unchanged: P2 still sees only the
        uniformly masked value ``a + r mod N``.

        Modeled by ``ssed_scan_counts(..., precomputed=True)`` in the
        analysis layer.
        """
        if not ciphertexts:
            return []
        n = self.pk.n
        mask_tuples = (self.engine.take_masks(len(ciphertexts))
                       if self.engine is not None
                       else [self.take_mask() for _ in ciphertexts])
        masked = self.pk.add_batch(list(ciphertexts),
                                   [c for _, c in mask_tuples])
        self.p1.send(masked, tag="SM.batch_masked_squares")
        self.p2_step("SM.batch_masked_squares")

        received = self.p1.receive(expected_tag="SM.batch_square_products")
        unmask = self.pk.scalar_mul_batch(
            list(ciphertexts), [(n - 2 * r) % n for r, _ in mask_tuples])
        stripped = self.pk.add_batch(received, unmask)
        return [
            self.add_plain(cipher, -(r * r) % n)
            for cipher, (r, _) in zip(stripped, mask_tuples)
        ]
