"""Secure Bit-Decomposition (SBD) protocol.

P1 holds ``Epk(z)`` with ``0 <= z < 2**l``; P2 holds the secret key.  The
protocol outputs ``[z] = <Epk(z_1), ..., Epk(z_l)>`` (most significant bit
first) to P1 without revealing ``z`` to either party.

The paper does not re-derive SBD; it uses the efficient probabilistic protocol
of Samanthula & Jiang (ASIACCS 2013, reference [21]), which extracts one bit
per round starting from the least significant bit:

1. P1 additively masks the current value: ``Y = Epk(z) * Epk(r)`` with ``r``
   drawn uniformly from ``[0, N - 2**l)`` so that ``z + r`` never wraps
   around ``N``.  Because there is no wrap-around, the least significant bit
   of ``y = z + r`` equals ``z_lsb XOR r_lsb``.
2. P2 decrypts ``y`` and returns ``Epk(y mod 2)``.
3. P1 un-flips the parity when its mask ``r`` was odd, obtaining
   ``Epk(z_lsb)``, and homomorphically computes the encryption of
   ``(z - z_lsb) / 2`` (multiplication by ``2^{-1} mod N`` — exact because
   ``z - z_lsb`` is even) to continue with the next bit.

The cost is ``l`` rounds with O(1) encryptions/decryptions each, i.e. O(l)
operations total, matching the complexity the paper quotes for [21].

What each party sees: P2 only ever sees masked values ``z + r``; P1 only sees
ciphertexts.  (The original protocol is "probabilistic" in that its failure
probability is negligible; here failure cannot occur because the mask range
excludes wrap-around by construction.)
"""

from __future__ import annotations

from repro.crypto import numtheory as nt
from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol

__all__ = ["SecureBitDecomposition"]


class SecureBitDecomposition(TwoPartyProtocol):
    """Two-party secure bit decomposition of a Paillier-encrypted value."""

    name = "SBD"

    def __init__(self, setting, bit_length: int) -> None:
        """Create an SBD instance for values in ``[0, 2**bit_length)``.

        Args:
            setting: the two-party environment.
            bit_length: the paper's domain-size parameter ``l``.
        """
        super().__init__(setting)
        self.require(bit_length > 0, "bit length must be positive")
        self.require(
            bit_length + 2 < setting.public_key.n.bit_length(),
            "bit length must be well below the key size so masks cannot wrap",
        )
        self.bit_length = bit_length
        self._inv_two = nt.modinv(2, self.pk.n)

    def run(self, enc_z: Ciphertext) -> list[Ciphertext]:
        """Compute ``[z]`` (MSB first) from ``Epk(z)``.

        Args:
            enc_z: encryption of a value in ``[0, 2**l)``.

        Returns:
            List of ``l`` ciphertexts, each an encryption of one bit of ``z``,
            most significant bit first.  Known only to P1.
        """
        bits_lsb_first: list[Ciphertext] = []
        current = enc_z
        for _ in range(self.bit_length):
            enc_bit, current = self._extract_lsb(current)
            bits_lsb_first.append(enc_bit)
        return list(reversed(bits_lsb_first))

    # -- one round: extract the least significant bit -----------------------------
    def _extract_lsb(self, enc_value: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Extract ``Epk(value mod 2)`` and return it with ``Epk(value // 2)``."""
        mask = self._p1_sample_mask()
        masked = enc_value + self.p1.encrypt(mask)
        self.p1.send(masked, tag="SBD.masked_value")

        enc_masked_parity = self._p2_parity_of_masked()
        self.p2.send(enc_masked_parity, tag="SBD.masked_parity")

        received = self.p1.receive(expected_tag="SBD.masked_parity")
        enc_bit = self._p1_unmask_parity(received, mask)

        # E((value - bit) / 2): subtract the bit and multiply by 2^{-1} mod N.
        # Exact because value - bit is even.
        enc_halved = self.sub(enc_value, enc_bit) * self._inv_two
        return enc_bit, enc_halved

    def _p1_sample_mask(self) -> int:
        """Sample a mask uniform in ``[0, N - 2**l)`` so ``z + r < N`` always."""
        upper = self.pk.n - (1 << self.bit_length)
        return self.p1.rng.randrange(upper)

    def _p1_unmask_parity(self, enc_masked_parity: Ciphertext,
                          mask: int) -> Ciphertext:
        """Recover ``Epk(z_lsb)`` from ``Epk((z + r) mod 2)`` given ``r``.

        When the mask is even the parities agree; when it is odd the bit is
        flipped, so P1 computes ``Epk(1 - b) = Epk(1) * Epk(b)^{N-1}``.
        """
        if mask % 2 == 0:
            return enc_masked_parity
        return self.sub(self.p1.encrypt(1), enc_masked_parity)

    # -- P2 step -------------------------------------------------------------------
    def _p2_parity_of_masked(self) -> Ciphertext:
        """P2 decrypts the masked value and returns the encryption of its parity."""
        masked = self.p2.receive(expected_tag="SBD.masked_value")
        y = self.p2.decrypt_residue(masked)
        return self.p2.encrypt(y % 2)
