"""Secure Bit-Decomposition (SBD) protocol.

P1 holds ``Epk(z)`` with ``0 <= z < 2**l``; P2 holds the secret key.  The
protocol outputs ``[z] = <Epk(z_1), ..., Epk(z_l)>`` (most significant bit
first) to P1 without revealing ``z`` to either party.

The paper does not re-derive SBD; it uses the efficient probabilistic protocol
of Samanthula & Jiang (ASIACCS 2013, reference [21]), which extracts one bit
per round starting from the least significant bit:

1. P1 additively masks the current value: ``Y = Epk(z) * Epk(r)`` with ``r``
   drawn uniformly from ``[0, N - 2**l)`` so that ``z + r`` never wraps
   around ``N``.  Because there is no wrap-around, the least significant bit
   of ``y = z + r`` equals ``z_lsb XOR r_lsb``.
2. P2 decrypts ``y`` and returns ``Epk(y mod 2)``.
3. P1 un-flips the parity when its mask ``r`` was odd, obtaining
   ``Epk(z_lsb)``, and homomorphically computes the encryption of
   ``(z - z_lsb) / 2`` (multiplication by ``2^{-1} mod N`` — exact because
   ``z - z_lsb`` is even) to continue with the next bit.

The cost is ``l`` rounds with O(1) encryptions/decryptions each, i.e. O(l)
operations total, matching the complexity the paper quotes for [21].

What each party sees: P2 only ever sees masked values ``z + r``; P1 only sees
ciphertexts.  (The original protocol is "probabilistic" in that its failure
probability is negligible; here failure cannot occur because the mask range
excludes wrap-around by construction.)
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto import numtheory as nt
from repro.crypto.paillier import Ciphertext
from repro.protocols.base import TwoPartyProtocol, traced_round

__all__ = ["SecureBitDecomposition"]


class SecureBitDecomposition(TwoPartyProtocol):
    """Two-party secure bit decomposition of a Paillier-encrypted value."""

    name = "SBD"

    P2_STEPS = {
        "SBD.masked_value": "_p2_parity_of_masked",
        "SBD.batch_masked_values": "_p2_parity_of_masked_batch",
    }

    def __init__(self, setting, bit_length: int) -> None:
        """Create an SBD instance for values in ``[0, 2**bit_length)``.

        Args:
            setting: the two-party environment.
            bit_length: the paper's domain-size parameter ``l``.
        """
        super().__init__(setting)
        self.require(bit_length > 0, "bit length must be positive")
        self.require(
            bit_length + 2 < setting.public_key.n.bit_length(),
            "bit length must be well below the key size so masks cannot wrap",
        )
        self.bit_length = bit_length
        self._inv_two = nt.modinv(2, self.pk.n)

    @traced_round("run")
    def run(self, enc_z: Ciphertext) -> list[Ciphertext]:
        """Compute ``[z]`` (MSB first) from ``Epk(z)``.

        Args:
            enc_z: encryption of a value in ``[0, 2**l)``.

        Returns:
            List of ``l`` ciphertexts, each an encryption of one bit of ``z``,
            most significant bit first.  Known only to P1.
        """
        bits_lsb_first: list[Ciphertext] = []
        current = enc_z
        for _ in range(self.bit_length):
            enc_bit, current = self._extract_lsb(current)
            bits_lsb_first.append(enc_bit)
        return list(reversed(bits_lsb_first))

    @traced_round("run_batch", sized=True)
    def run_batch(self, enc_values: Sequence[Ciphertext]
                  ) -> list[list[Ciphertext]]:
        """Bit-decompose a whole vector of encrypted values at once.

        Functionally identical to ``[self.run(c) for c in enc_values]`` with
        the same per-value operation counts, but each of the ``l`` bit rounds
        processes *every* value in one message exchange (2 messages per round
        instead of ``2 * len(enc_values)``), with all encryptions and
        decryptions going through the vectorized kernel.  SkNN_m uses this to
        decompose all ``n`` record distances up front.

        Returns:
            One bit vector (MSB first) per input value, in input order.
        """
        if not enc_values:
            return []
        count = len(enc_values)
        current = list(enc_values)
        per_value_bits: list[list[Ciphertext]] = [[] for _ in range(count)]
        for _ in range(self.bit_length):
            enc_bits, current = self._extract_lsb_batch(current)
            for bits, enc_bit in zip(per_value_bits, enc_bits):
                bits.append(enc_bit)
        return [list(reversed(bits)) for bits in per_value_bits]

    def _extract_lsb_batch(
        self, enc_values: list[Ciphertext]
    ) -> tuple[list[Ciphertext], list[Ciphertext]]:
        """One bit round over every value: LSBs and halved remainders.

        Mask tuples and the parity/un-flip constants come from the
        precomputation engine when one is attached (SBD-range mask pool,
        E(0)/E(1) constant pools), with inline fallbacks otherwise.
        """
        mask_tuples = [self._p1_take_mask() for _ in enc_values]
        masks = [r for r, _ in mask_tuples]
        masked = self.pk.add_batch(enc_values, [c for _, c in mask_tuples])
        self.p1.send(masked, tag="SBD.batch_masked_values")
        self.p2_step("SBD.batch_masked_values")

        received = self.p1.receive(expected_tag="SBD.batch_masked_parities")
        # Un-flip the parity wherever P1's mask was odd (same expected cost
        # as the scalar path: one E(1) and one subtraction per odd mask).
        odd_indices = [i for i, mask in enumerate(masks) if mask % 2 == 1]
        if odd_indices:
            ones = self.encrypt_pooled_constants(
                self.p1, [1] * len(odd_indices))
            flipped = self.pk.add_batch(
                ones, self.neg_batch([received[i] for i in odd_indices]))
            enc_bits = list(received)
            for position, index in enumerate(odd_indices):
                enc_bits[index] = flipped[position]
        else:
            enc_bits = list(received)

        # E((value - bit) / 2) for every value.
        halved = self.pk.scalar_mul_batch(
            self.pk.add_batch(enc_values, self.neg_batch(enc_bits)),
            self._inv_two,
        )
        return enc_bits, halved

    # -- one round: extract the least significant bit -----------------------------
    def _extract_lsb(self, enc_value: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Extract ``Epk(value mod 2)`` and return it with ``Epk(value // 2)``."""
        mask, enc_mask = self._p1_take_mask()
        masked = enc_value + enc_mask
        self.p1.send(masked, tag="SBD.masked_value")
        self.p2_step("SBD.masked_value")

        received = self.p1.receive(expected_tag="SBD.masked_parity")
        enc_bit = self._p1_unmask_parity(received, mask)

        # E((value - bit) / 2): subtract the bit and multiply by 2^{-1} mod N.
        # Exact because value - bit is even.
        enc_halved = self.sub(enc_value, enc_bit) * self._inv_two
        return enc_bit, enc_halved

    def _p1_take_mask(self) -> tuple[int, Ciphertext]:
        """A mask tuple ``(r, E(r))`` with ``r`` uniform in ``[0, N - 2**l)``.

        Served from the engine's SBD-range pool when attached (the pool's
        range is validated against this instance's ``l``); otherwise sampled
        and encrypted inline, so ``z + r < N`` always either way.
        """
        upper = self.pk.n - (1 << self.bit_length)
        return self.take_mask("sbd", sbd_upper=upper)

    def _p1_unmask_parity(self, enc_masked_parity: Ciphertext,
                          mask: int) -> Ciphertext:
        """Recover ``Epk(z_lsb)`` from ``Epk((z + r) mod 2)`` given ``r``.

        When the mask is even the parities agree; when it is odd the bit is
        flipped, so P1 computes ``Epk(1 - b) = Epk(1) * Epk(b)^{N-1}``.
        """
        if mask % 2 == 0:
            return enc_masked_parity
        return self.sub(self.encrypt_pooled_constant(self.p1, 1),
                        enc_masked_parity)

    # -- P2 steps ------------------------------------------------------------------
    def _p2_parity_of_masked(self) -> None:
        """P2 decrypts the masked value and replies with its encrypted parity."""
        masked = self.p2.receive(expected_tag="SBD.masked_value")
        y = self.p2.decrypt_residue(masked)
        self.p2.send(self.encrypt_pooled_constant(self.p2, y % 2),
                     tag="SBD.masked_parity")

    def _p2_parity_of_masked_batch(self) -> None:
        """Batched parity step: one vectorized decryption, pooled constants."""
        received_masked = self.p2.receive(expected_tag="SBD.batch_masked_values")
        parities = [y % 2
                    for y in self.p2.decrypt_residue_batch(received_masked)]
        self.p2.send(self.encrypt_pooled_constants(self.p2, parities),
                     tag="SBD.batch_masked_parities")
