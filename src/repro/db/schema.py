"""Relational schema definitions for the database substrate.

The paper operates on a single relational table ``T`` with ``n`` records and
``m`` numeric attributes (plus an identifying ``record-id``).  This module
models that: a :class:`Attribute` describes one column (name, description,
value range) and a :class:`Schema` is an ordered collection of attributes
with validation helpers.

Attribute ranges matter for two reasons:

* the protocol parameter ``l`` (bit length of the squared Euclidean distance
  domain) is derived from the attribute ranges and the dimensionality, and
* the data owner must reject out-of-range values before encryption, because
  the protocols assume all values and distances lie in ``[0, 2**l)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import SchemaError

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """Description of one numeric column of the table.

    Attributes:
        name: column name (unique within a schema).
        description: human-readable description (Table 2 of the paper).
        minimum: smallest allowed value (inclusive).
        maximum: largest allowed value (inclusive).
    """

    name: str
    description: str = ""
    minimum: int = 0
    maximum: int = 2**31 - 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.minimum > self.maximum:
            raise SchemaError(
                f"attribute {self.name!r}: minimum {self.minimum} exceeds "
                f"maximum {self.maximum}"
            )
        if self.minimum < 0:
            raise SchemaError(
                f"attribute {self.name!r}: negative values are not supported by "
                "the SkNN protocols (shift the domain before encrypting)"
            )

    @property
    def range_width(self) -> int:
        """Number of representable values."""
        return self.maximum - self.minimum + 1

    def validate(self, value: int) -> None:
        """Raise :class:`SchemaError` if ``value`` is outside the range."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(
                f"attribute {self.name!r}: expected int, got {type(value).__name__}"
            )
        if value < self.minimum or value > self.maximum:
            raise SchemaError(
                f"attribute {self.name!r}: value {value} outside "
                f"[{self.minimum}, {self.maximum}]"
            )


@dataclass(frozen=True)
class Schema:
    """Ordered collection of attributes describing the table layout."""

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if not names:
            raise SchemaError("schema must contain at least one attribute")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_names(cls, names: Sequence[str], minimum: int = 0,
                   maximum: int = 2**31 - 1) -> "Schema":
        """Build a schema from bare column names with a shared value range."""
        return cls(tuple(Attribute(name, minimum=minimum, maximum=maximum)
                         for name in names))

    @classmethod
    def uniform(cls, dimensions: int, maximum: int, prefix: str = "attr") -> "Schema":
        """Build an ``m``-attribute schema with range ``[0, maximum]``.

        Used by the synthetic workloads of Section 5, which only specify the
        number of attributes ``m`` and the domain size.
        """
        return cls.from_names([f"{prefix}{i}" for i in range(dimensions)],
                              minimum=0, maximum=maximum)

    # -- accessors ------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    @property
    def dimensions(self) -> int:
        """Number of attributes (the paper's ``m``)."""
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterable[Attribute]:
        return iter(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for candidate in self.attributes:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"unknown attribute {name!r}")

    def index_of(self, name: str) -> int:
        """Position of an attribute within a record vector."""
        for index, candidate in enumerate(self.attributes):
            if candidate.name == name:
                return index
        raise SchemaError(f"unknown attribute {name!r}")

    # -- validation and protocol parameters --------------------------------------
    def validate_record(self, values: Sequence[int]) -> None:
        """Validate one record (attribute count and per-attribute ranges)."""
        if len(values) != self.dimensions:
            raise SchemaError(
                f"record has {len(values)} values but schema has "
                f"{self.dimensions} attributes"
            )
        for attribute, value in zip(self.attributes, values):
            attribute.validate(value)

    def max_squared_distance(self) -> int:
        """Largest possible squared Euclidean distance between two records."""
        return sum((attribute.maximum - attribute.minimum) ** 2
                   for attribute in self.attributes)

    def distance_bit_length(self) -> int:
        """The paper's parameter ``l``: bits needed for any squared distance.

        Chosen as the bit length of the maximum squared distance so every
        distance fits in ``[0, 2**l)``.
        """
        return max(self.max_squared_distance().bit_length(), 1)
