"""Datasets: the paper's heart-disease running example and synthetic workloads.

Two data sources appear in the paper:

* **Tables 1 and 2** — six sample records of the UCI heart-disease dataset
  used as the running example (Example 1): the physician Bob queries with a
  patient record and expects records ``t4`` and ``t5`` as the 2 nearest
  neighbors.  The sample, together with the attribute metadata, is embedded
  here verbatim.
* **Section 5 synthetic data** — the evaluation uses "randomly generated
  synthetic datasets depending on the parameter values in consideration":
  ``n`` records with ``m`` attributes whose values (and hence distances) lie
  in ``[0, 2**l)``.  :func:`synthetic_uniform` reproduces that generator with
  an explicit seed so experiments are repeatable.
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.db.schema import Attribute, Schema
from repro.db.table import Table
from repro.exceptions import DatabaseError

__all__ = [
    "heart_disease_schema",
    "heart_disease_table",
    "heart_disease_example_query",
    "synthetic_uniform",
    "synthetic_schema",
    "synthetic_clustered",
    "max_attribute_value_for_distance_bits",
]

#: Table 1 of the paper (record-id column omitted; ids become t1..t6).
_HEART_DISEASE_ROWS: tuple[tuple[int, ...], ...] = (
    (63, 1, 1, 145, 233, 1, 3, 0, 6, 0),
    (56, 1, 3, 130, 256, 1, 2, 1, 6, 2),
    (57, 0, 3, 140, 241, 0, 2, 0, 7, 1),
    (59, 1, 4, 144, 200, 1, 2, 2, 6, 3),
    (55, 0, 4, 128, 205, 0, 2, 1, 7, 3),
    (77, 1, 4, 125, 304, 0, 1, 3, 3, 4),
)

#: The query of Example 1 (patient medical information).  It has 9 attributes
#: because the physician does not supply the diagnosis column ``num``.
_HEART_DISEASE_QUERY: tuple[int, ...] = (58, 1, 4, 133, 196, 1, 2, 1, 6)


def heart_disease_schema(include_diagnosis: bool = True) -> Schema:
    """Schema of the heart-disease sample (Table 2 of the paper).

    Args:
        include_diagnosis: when ``False`` the trailing ``num`` column is
            dropped, matching the 9-attribute query of Example 1.
    """
    attributes = [
        Attribute("age", "age in years", 0, 150),
        Attribute("sex", "1=male, 0=female", 0, 1),
        Attribute("cp", "chest pain type (1-4)", 0, 4),
        Attribute("trestbps", "resting blood pressure (mm Hg)", 0, 300),
        Attribute("chol", "serum cholesterol in mg/dl", 0, 700),
        Attribute("fbs", "fasting blood sugar > 120 mg/dl", 0, 1),
        Attribute("slope", "slope of the peak exercise ST segment", 0, 3),
        Attribute("ca", "number of major vessels colored by flourosopy", 0, 3),
        Attribute("thal", "3=normal, 6=fixed defect, 7=reversible defect", 0, 7),
    ]
    if include_diagnosis:
        attributes.append(Attribute("num", "diagnosis of heart disease (0-4)", 0, 4))
    return Schema(tuple(attributes))


def heart_disease_table(include_diagnosis: bool = True) -> Table:
    """The six sample records of Table 1 as a :class:`~repro.db.table.Table`."""
    schema = heart_disease_schema(include_diagnosis)
    if include_diagnosis:
        rows: Sequence[Sequence[int]] = _HEART_DISEASE_ROWS
    else:
        rows = [row[:-1] for row in _HEART_DISEASE_ROWS]
    return Table.from_rows(schema, rows)


def heart_disease_example_query() -> tuple[int, ...]:
    """The Example 1 query record ``Q = <58, 1, 4, 133, 196, 1, 2, 1, 6>``."""
    return _HEART_DISEASE_QUERY


def synthetic_schema(dimensions: int, value_bits: int = 4) -> Schema:
    """Schema for the Section 5 synthetic workloads.

    Args:
        dimensions: number of attributes ``m``.
        value_bits: bit width of each attribute value; chosen so the squared
            distance fits the experiment's ``l`` (see
            :func:`max_attribute_value_for_distance_bits`).
    """
    return Schema.uniform(dimensions, maximum=(1 << value_bits) - 1)


def max_attribute_value_for_distance_bits(dimensions: int, distance_bits: int) -> int:
    """Largest attribute value keeping all squared distances below ``2**l``.

    The paper assumes "all attribute values and their Euclidean distances lie
    in ``[0, 2**l)``".  For ``m`` attributes with values in ``[0, V]`` the
    worst-case squared distance is ``m * V**2``, so we pick the largest ``V``
    with ``m * V**2 < 2**l``.
    """
    if dimensions <= 0:
        raise DatabaseError("dimensions must be positive")
    if distance_bits <= 0:
        raise DatabaseError("distance bit length must be positive")
    limit = 1 << distance_bits
    value = int(((limit - 1) / dimensions) ** 0.5)
    while dimensions * value * value >= limit and value > 0:
        value -= 1
    return max(value, 1)


def synthetic_uniform(n_records: int, dimensions: int, distance_bits: int,
                      seed: int = 0) -> Table:
    """Uniform synthetic dataset matching the paper's evaluation workloads.

    Args:
        n_records: number of records ``n``.
        dimensions: number of attributes ``m``.
        distance_bits: the experiment's ``l``; attribute values are drawn so
            every squared Euclidean distance fits in ``[0, 2**l)``.
        seed: RNG seed for repeatability.

    Returns:
        A plaintext :class:`~repro.db.table.Table` ready to be encrypted.
    """
    if n_records <= 0:
        raise DatabaseError("n_records must be positive")
    rng = Random(seed)
    max_value = max_attribute_value_for_distance_bits(dimensions, distance_bits)
    schema = Schema.uniform(dimensions, maximum=max_value)
    rows = [
        [rng.randint(0, max_value) for _ in range(dimensions)]
        for _ in range(n_records)
    ]
    return Table.from_rows(schema, rows)


def synthetic_clustered(n_records: int, dimensions: int, distance_bits: int,
                        clusters: int = 4, spread: float = 0.05,
                        seed: int = 0) -> Table:
    """Clustered synthetic dataset (Gaussian blobs around random centers).

    Not used by the paper's evaluation, but useful for the example
    applications: kNN behaves very differently on clustered data, and the
    secure protocols are oblivious to the distribution — which this dataset
    lets users confirm empirically.
    """
    if clusters <= 0:
        raise DatabaseError("clusters must be positive")
    rng = Random(seed)
    max_value = max_attribute_value_for_distance_bits(dimensions, distance_bits)
    schema = Schema.uniform(dimensions, maximum=max_value)
    centers = [
        [rng.randint(0, max_value) for _ in range(dimensions)]
        for _ in range(clusters)
    ]
    sigma = max(max_value * spread, 1.0)
    rows = []
    for _ in range(n_records):
        center = centers[rng.randrange(clusters)]
        row = []
        for coordinate in center:
            value = int(round(rng.gauss(coordinate, sigma)))
            row.append(min(max(value, 0), max_value))
        rows.append(row)
    return Table.from_rows(schema, rows)
