"""Database substrate: schemas, tables, encrypted tables, datasets, plaintext kNN."""

from repro.db.datasets import (
    heart_disease_example_query,
    heart_disease_schema,
    heart_disease_table,
    synthetic_clustered,
    synthetic_schema,
    synthetic_uniform,
)
from repro.db.encrypted_table import EncryptedRecord, EncryptedTable
from repro.db.knn import KDTreeKNN, LinearScanKNN, NeighborResult, squared_euclidean
from repro.db.schema import Attribute, Schema
from repro.db.table import Record, Table

__all__ = [
    "Attribute",
    "Schema",
    "Record",
    "Table",
    "EncryptedRecord",
    "EncryptedTable",
    "NeighborResult",
    "LinearScanKNN",
    "KDTreeKNN",
    "squared_euclidean",
    "heart_disease_schema",
    "heart_disease_table",
    "heart_disease_example_query",
    "synthetic_uniform",
    "synthetic_clustered",
    "synthetic_schema",
]
