"""Attribute-wise encrypted table — the paper's ``Epk(T)``.

The data owner encrypts every attribute of every record separately
(``Epk(t_{i,j})`` for all ``i, j``) and outsources the resulting
:class:`EncryptedTable` to cloud C1.  Record identifiers remain in the clear —
they carry no sensitive information (the paper's ``record-id`` column) and C1
needs a handle to address ciphertexts; everything else is ciphertext.

The class also supports serialization so the "outsourcing" step can cross a
process boundary, and re-randomization so a table can be republished without
linkability between the two copies.
"""

from __future__ import annotations

from random import Random
from typing import Any, Iterator, Sequence

from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.crypto.serialization import (
    ciphertext_from_dict,
    ciphertext_to_dict,
    public_key_from_dict,
    public_key_to_dict,
)
from repro.db.schema import Schema
from repro.db.table import Record, Table
from repro.exceptions import DatabaseError, SerializationError

__all__ = ["EncryptedRecord", "EncryptedTable"]


class EncryptedRecord:
    """One record of the encrypted database: clear id + encrypted attributes."""

    __slots__ = ("record_id", "ciphertexts")

    def __init__(self, record_id: str, ciphertexts: Sequence[Ciphertext]) -> None:
        self.record_id = record_id
        self.ciphertexts = tuple(ciphertexts)

    def __len__(self) -> int:
        return len(self.ciphertexts)

    def __iter__(self) -> Iterator[Ciphertext]:
        return iter(self.ciphertexts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EncryptedRecord(id={self.record_id!r}, m={len(self.ciphertexts)})"


class EncryptedTable:
    """The attribute-wise encrypted database ``Epk(T)`` hosted by cloud C1."""

    def __init__(self, schema: Schema, public_key: PaillierPublicKey,
                 records: Sequence[EncryptedRecord] = ()) -> None:
        self.schema = schema
        self.public_key = public_key
        self._records: list[EncryptedRecord] = []
        for record in records:
            self.append(record)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def encrypt_table(cls, table: Table, public_key: PaillierPublicKey,
                      rng: Random | None = None) -> "EncryptedTable":
        """Encrypt a plaintext table attribute-wise (Alice's outsourcing step)."""
        encrypted_records = [
            EncryptedRecord(record.record_id,
                            public_key.encrypt_vector(record.values, rng=rng))
            for record in table
        ]
        return cls(table.schema, public_key, encrypted_records)

    # -- mutation ----------------------------------------------------------------
    def append(self, record: EncryptedRecord) -> None:
        """Append an encrypted record, validating its arity."""
        if len(record) != self.schema.dimensions:
            raise DatabaseError(
                f"encrypted record {record.record_id!r} has {len(record)} "
                f"attributes, schema expects {self.schema.dimensions}"
            )
        self._records.append(record)

    # -- accessors ---------------------------------------------------------------
    @property
    def records(self) -> tuple[EncryptedRecord, ...]:
        """All encrypted records in insertion order."""
        return tuple(self._records)

    @property
    def dimensions(self) -> int:
        """Number of attributes (the paper's ``m``)."""
        return self.schema.dimensions

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EncryptedRecord]:
        return iter(self._records)

    def record_at(self, index: int) -> EncryptedRecord:
        """The encrypted record at a 0-based position."""
        return self._records[index]

    # -- operations used by the protocols -------------------------------------------
    def rerandomized(self, rng: Random | None = None) -> "EncryptedTable":
        """A copy where every ciphertext is freshly re-randomized.

        The plaintexts are unchanged but the ciphertext values are all new, so
        the copy cannot be linked to the original by comparing ciphertexts.
        """
        fresh = [
            EncryptedRecord(record.record_id,
                            [c.randomize(rng) for c in record.ciphertexts])
            for record in self._records
        ]
        return EncryptedTable(self.schema, self.public_key, fresh)

    def decrypt(self, private_key: PaillierPrivateKey) -> Table:
        """Decrypt the whole table (only possible for the key holder; testing aid)."""
        table = Table(self.schema)
        for record in self._records:
            values = [private_key.decrypt(c) for c in record.ciphertexts]
            table.insert(Record(record.record_id, tuple(values)))
        return table

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dictionary (the outsourcing payload)."""
        return {
            "kind": "encrypted-table",
            "public_key": public_key_to_dict(self.public_key),
            "schema": {
                "attributes": [
                    {
                        "name": a.name,
                        "description": a.description,
                        "minimum": a.minimum,
                        "maximum": a.maximum,
                    }
                    for a in self.schema.attributes
                ]
            },
            "records": [
                {
                    "record_id": record.record_id,
                    "ciphertexts": [ciphertext_to_dict(c) for c in record.ciphertexts],
                }
                for record in self._records
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EncryptedTable":
        """Reconstruct an encrypted table from :meth:`to_dict` output."""
        if not isinstance(data, dict) or data.get("kind") != "encrypted-table":
            raise SerializationError("not a serialized encrypted table")
        from repro.db.schema import Attribute  # local import to avoid cycle at module load

        public_key = public_key_from_dict(data["public_key"])
        schema = Schema(tuple(
            Attribute(item["name"], item.get("description", ""),
                      item.get("minimum", 0), item.get("maximum", 2**31 - 1))
            for item in data["schema"]["attributes"]
        ))
        records = [
            EncryptedRecord(
                item["record_id"],
                [ciphertext_from_dict(c, public_key) for c in item["ciphertexts"]],
            )
            for item in data["records"]
        ]
        return cls(schema, public_key, records)
