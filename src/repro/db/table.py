"""In-memory relational table — the plaintext database ``T`` of the paper.

A :class:`Table` couples a :class:`~repro.db.schema.Schema` with a list of
:class:`Record` rows.  It is the object the data owner (Alice) holds before
encryption and the object Bob ultimately reconstructs record-by-record from
the protocol output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.db.schema import Schema
from repro.exceptions import DatabaseError, SchemaError

__all__ = ["Record", "Table"]


@dataclass(frozen=True)
class Record:
    """One database record: an identifier plus its attribute values."""

    record_id: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.record_id:
            raise SchemaError("record_id must be non-empty")

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self, schema: Schema) -> dict[str, int]:
        """Map attribute names to values according to ``schema``."""
        if len(self.values) != schema.dimensions:
            raise SchemaError(
                f"record {self.record_id!r} does not match the schema arity"
            )
        return dict(zip(schema.names, self.values))


class Table:
    """A schema-validated collection of records (the plaintext database T)."""

    def __init__(self, schema: Schema, records: Iterable[Record] = ()) -> None:
        self.schema = schema
        self._records: list[Record] = []
        self._index: dict[str, int] = {}
        for record in records:
            self.insert(record)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[int]],
                  id_prefix: str = "t") -> "Table":
        """Build a table from raw value rows, generating ids ``t1, t2, ...``.

        The 1-based ids match the paper's ``t_1 ... t_n`` notation.
        """
        records = [Record(f"{id_prefix}{i + 1}", tuple(row))
                   for i, row in enumerate(rows)]
        return cls(schema, records)

    # -- mutation ----------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Insert a record after validating it against the schema."""
        if record.record_id in self._index:
            raise DatabaseError(f"duplicate record id {record.record_id!r}")
        self.schema.validate_record(record.values)
        self._index[record.record_id] = len(self._records)
        self._records.append(record)

    def insert_row(self, values: Sequence[int], record_id: str | None = None) -> Record:
        """Insert a raw value row, auto-generating an id when omitted."""
        if record_id is None:
            record_id = f"t{len(self._records) + 1}"
        record = Record(record_id, tuple(values))
        self.insert(record)
        return record

    # -- accessors ---------------------------------------------------------------
    @property
    def records(self) -> tuple[Record, ...]:
        """All records in insertion order."""
        return tuple(self._records)

    @property
    def dimensions(self) -> int:
        """Number of attributes (the paper's ``m``)."""
        return self.schema.dimensions

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._index

    def get(self, record_id: str) -> Record:
        """Fetch a record by id."""
        try:
            return self._records[self._index[record_id]]
        except KeyError as exc:
            raise DatabaseError(f"no record with id {record_id!r}") from exc

    def row_values(self) -> list[tuple[int, ...]]:
        """All attribute vectors (without ids), in insertion order."""
        return [record.values for record in self._records]

    # -- analytics ----------------------------------------------------------------
    def squared_distance(self, record_id: str, query: Sequence[int]) -> int:
        """Plaintext squared Euclidean distance between a record and a query."""
        record = self.get(record_id)
        if len(query) != self.dimensions:
            raise DatabaseError(
                f"query has {len(query)} attributes, table has {self.dimensions}"
            )
        return sum((a - b) ** 2 for a, b in zip(record.values, query))

    def describe(self) -> str:
        """Short human-readable summary (used by examples)."""
        return (
            f"Table with {len(self)} records and {self.dimensions} attributes: "
            f"{', '.join(self.schema.names)}"
        )
