"""Plaintext k-nearest-neighbor search — the correctness oracle and baseline.

The secure protocols must return exactly the records a conventional kNN query
over the plaintext table would return (the paper's *correctness* requirement).
This module provides two plaintext engines:

* :class:`LinearScanKNN` — exhaustive scan, O(n*m) per query; this mirrors the
  access pattern of the secure protocols, which also touch every record.
* :class:`KDTreeKNN` — a k-d tree index for sub-linear queries on plaintext
  data; included as the "what you give up by encrypting" reference point used
  in the examples and the plaintext-vs-secure benchmark.

Both engines resolve distance ties by record insertion order (record index),
which matches how the secure protocols behave: SkNN_b relies on a stable sort
of distances and SkNN_m's SMIN_n returns the first minimum encountered in the
tournament for equal values.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.db.table import Record, Table
from repro.exceptions import QueryError

__all__ = ["NeighborResult", "LinearScanKNN", "KDTreeKNN", "squared_euclidean"]


def squared_euclidean(left: Sequence[int], right: Sequence[int]) -> int:
    """Squared Euclidean distance between two equal-length integer vectors."""
    if len(left) != len(right):
        raise QueryError(
            f"dimension mismatch: {len(left)} vs {len(right)}"
        )
    return sum((a - b) ** 2 for a, b in zip(left, right))


@dataclass(frozen=True)
class NeighborResult:
    """One neighbor returned by a kNN query."""

    record: Record
    squared_distance: int

    @property
    def record_id(self) -> str:
        """Identifier of the neighboring record."""
        return self.record.record_id


class LinearScanKNN:
    """Exact kNN by exhaustive scan over the plaintext table."""

    def __init__(self, table: Table) -> None:
        self.table = table

    def query(self, query_point: Sequence[int], k: int) -> list[NeighborResult]:
        """Return the ``k`` nearest records to ``query_point``.

        Ties are broken by record position (earlier records win), matching the
        behaviour of the secure protocols.

        Raises:
            QueryError: if ``k`` is not in ``[1, n]`` or the query has the
                wrong number of attributes.
        """
        _validate_query(self.table, query_point, k)
        scored = [
            (squared_euclidean(record.values, query_point), index, record)
            for index, record in enumerate(self.table)
        ]
        smallest = heapq.nsmallest(k, scored)
        return [NeighborResult(record, distance) for distance, _, record in smallest]


class _KDNode:
    """Internal node of the k-d tree."""

    __slots__ = ("index", "record", "axis", "left", "right")

    def __init__(self, index: int, record: Record, axis: int) -> None:
        self.index = index
        self.record = record
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None


class KDTreeKNN:
    """Exact kNN using a k-d tree built over the plaintext table.

    Provided as the plaintext-performance reference: on low-dimensional data a
    k-d tree answers queries in roughly O(log n) node visits, an optimization
    that is unavailable once the data is encrypted (the secure protocols must
    touch every record precisely so that access patterns stay hidden).
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        items = list(enumerate(table.records))
        self._root = self._build(items, depth=0)

    # -- construction ------------------------------------------------------------
    def _build(self, items: list[tuple[int, Record]], depth: int) -> _KDNode | None:
        if not items:
            return None
        axis = depth % self.table.dimensions
        items.sort(key=lambda pair: pair[1].values[axis])
        median = len(items) // 2
        index, record = items[median]
        node = _KDNode(index, record, axis)
        node.left = self._build(items[:median], depth + 1)
        node.right = self._build(items[median + 1:], depth + 1)
        return node

    # -- queries ------------------------------------------------------------------
    def query(self, query_point: Sequence[int], k: int) -> list[NeighborResult]:
        """Return the ``k`` nearest records to ``query_point`` (exact)."""
        _validate_query(self.table, query_point, k)
        # Max-heap of the best k candidates: (-distance, -index, record).
        heap: list[tuple[int, int, Record]] = []

        def visit(node: _KDNode | None) -> None:
            if node is None:
                return
            distance = squared_euclidean(node.record.values, query_point)
            entry = (-distance, -node.index, node.record)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
            axis_difference = query_point[node.axis] - node.record.values[node.axis]
            near, far = (node.left, node.right) if axis_difference <= 0 \
                else (node.right, node.left)
            visit(near)
            # Only descend into the far side if the splitting plane could
            # still contain a closer neighbor than the current k-th best.
            worst = -heap[0][0] if len(heap) == k else None
            if worst is None or axis_difference * axis_difference <= worst:
                visit(far)

        visit(self._root)
        ordered = sorted(heap, key=lambda item: (-item[0], -item[1]))
        return [NeighborResult(record, -neg_distance)
                for neg_distance, _, record in ordered]


def _validate_query(table: Table, query_point: Sequence[int], k: int) -> None:
    """Shared validation for the kNN engines."""
    if len(table) == 0:
        raise QueryError("cannot query an empty table")
    if not isinstance(k, int) or k < 1:
        raise QueryError(f"k must be a positive integer, got {k!r}")
    if k > len(table):
        raise QueryError(f"k={k} exceeds the table size {len(table)}")
    if len(query_point) != table.dimensions:
        raise QueryError(
            f"query has {len(query_point)} attributes, table has {table.dimensions}"
        )
