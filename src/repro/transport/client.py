"""Client side of the distributed runtime: provisioning, queries, stores.

Three layers, bottom-up:

* :class:`DaemonClient` — one control connection to a party daemon
  (request/reply over ``transport.*`` tags).
* :class:`RemoteCloud` — Bob's (and, for provisioning, Alice's) view of a
  C1+C2 daemon pair: provision both parties, run queries against C1, fetch
  C2's share half over the *separate* C2 connection, assemble
  :class:`~repro.core.roles.ResultShares`.  C1 never sees C2's share — the
  delivery trust boundary of the paper survives the network split.
* :class:`RemoteProtocol` / :class:`RemoteStore` — adapters that plug a
  :class:`RemoteCloud` into the existing serving surfaces:
  ``SkNNSystem`` ``mode="distributed"`` and the batched
  :class:`~repro.service.scheduler.QueryServer` scheduler.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from itertools import count
from random import Random
from typing import Any, Sequence

from repro.core.roles import ResultShares
from repro.core.sknn_base import SkNNRunReport
from repro.core.sknn_shard import shard_table
from repro.crypto.paillier import Ciphertext, PaillierKeyPair
from repro.crypto.serialization import private_key_to_dict
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    DeadlineExceeded,
    PeerUnavailable,
    QueryError,
    ReproError,
    ServiceUnavailable,
)
from repro.network.channel import Message
from repro.network.stats import ProtocolRunStats
from repro.resilience.policy import Deadline, RetryPolicy, retry_call
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.daemon import DEFAULT_FETCH_TIMEOUT
from repro.transport.framing import recv_frame, send_frame
from repro.transport.wire import WireCodec

__all__ = ["DaemonClient", "RemoteCloud", "RemoteProtocol", "RemoteStore"]

#: reconstruction table for typed ``transport.error`` payloads — the daemon
#: sends ``{"type", "message", "retriable"}`` and the client re-raises the
#: matching class so retry layers decide without string matching.
_REMOTE_ERRORS: dict[str, type[ReproError]] = {
    "DeadlineExceeded": DeadlineExceeded,
    "PeerUnavailable": PeerUnavailable,
    "ServiceUnavailable": ServiceUnavailable,
    "ConfigurationError": ConfigurationError,
    "QueryError": QueryError,
    "ChannelError": ChannelError,
}


class DaemonClient:
    """One request/reply control connection to a party daemon.

    The connection is established eagerly (a wrong address fails fast) but
    *heals lazily*: any transport failure — broken pipe, blown deadline,
    daemon restart — drops the socket, and the next :meth:`request`
    re-dials and re-runs the ``transport.hello`` handshake transparently.

    Args:
        address: daemon ``(host, port)``.
        codec: shared wire codec (its public key may arrive later).
        connect_timeout: bound on dial + hello.
        request_deadline: default bound (seconds) on one request/reply
            round trip; ``None`` waits indefinitely.  Per-call ``timeout``
            overrides it.
        retry: default :class:`RetryPolicy` applied by :meth:`request`;
            ``None`` (the default) means a single attempt — callers that
            own idempotency keys (:class:`RemoteCloud`) layer their own
            retries on top.
        rng: jitter source for backoff (seedable for deterministic tests).
    """

    def __init__(self, address: tuple[str, int], codec: WireCodec,
                 connect_timeout: float = 30.0,
                 request_deadline: float | None = None,
                 retry: RetryPolicy | None = None,
                 rng: Random | None = None) -> None:
        self.address = address
        self._codec = codec
        self._lock = threading.Lock()
        self.connect_timeout = connect_timeout
        self.request_deadline = request_deadline
        self.retry = retry
        self.rng = rng
        self.role: str = "?"
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._connect()

    # -- connection management ------------------------------------------------
    def _connect(self) -> None:
        try:
            sock = socket.create_connection(self.address,
                                            timeout=self.connect_timeout)
        except OSError as exc:
            raise PeerUnavailable(
                f"cannot connect to daemon at {self.address[0]}:"
                f"{self.address[1]}: {exc}") from exc
        sock.settimeout(None)
        self._sock = sock
        try:
            hello = self._exchange("transport.hello", {"peer": "client"},
                                   Deadline(self.connect_timeout))
        except ChannelError:
            self._drop()
            raise
        self.role = hello.get("role", self.role)

    def _reconnect(self) -> None:
        self._connect()
        self.reconnects += 1
        telemetry_metrics.get_registry().counter(
            "repro_reconnects_total",
            "Peer/daemon connections re-established after a failure.",
            ("role",)).inc(role="client")

    def _drop(self) -> None:
        """Discard a socket we no longer trust (desync, EOF, deadline)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- request/reply --------------------------------------------------------
    def _exchange(self, tag: str, payload: Any, deadline: Deadline) -> Any:
        assert self._sock is not None
        message = Message(sender="client", recipient="daemon", tag=tag,
                          payload=payload)
        try:
            send_frame(self._sock, self._codec.encode_message(message),
                       deadline=deadline.expires_at)
            body = recv_frame(self._sock, deadline=deadline.expires_at)
        except ChannelError:
            # The stream may hold a half-written request or a late reply:
            # drop it so the next request starts on a clean connection.
            self._drop()
            raise
        if body is None:
            self._drop()
            raise PeerUnavailable(
                f"daemon at {self.address[0]}:{self.address[1]} closed the "
                f"connection while handling {tag!r}")
        reply = self._codec.decode_message(body)
        if reply.tag == "transport.error":
            raise self._remote_error(reply.payload)
        expected = (tag + ".ok") if tag != "transport.hello" else "transport.hello_ok"
        if reply.tag != expected:
            self._drop()
            raise ChannelError(
                f"expected reply {expected!r} but got {reply.tag!r}")
        return reply.payload

    def _remote_error(self, payload: Any) -> ReproError:
        """Reconstruct the daemon's exception from a typed error frame."""
        if isinstance(payload, dict) and "message" in payload:
            error_class = _REMOTE_ERRORS.get(str(payload.get("type")),
                                             ChannelError)
            return error_class(f"daemon {self.role}: {payload['message']}")
        return ChannelError(f"daemon {self.role}: {payload}")

    def request(self, tag: str, payload: Any,
                timeout: float | None = None,
                retry: RetryPolicy | None = None) -> Any:
        """Send one control message and return the daemon's reply payload.

        A ``transport.error`` reply raises the reconstructed typed
        exception (:class:`ChannelError` for untyped/legacy payloads).
        ``timeout`` bounds the whole round trip (default: the client's
        ``request_deadline``); ``retry`` overrides the client's policy for
        this call.  Retries silently reconnect a dropped socket first.
        """
        policy = retry if retry is not None else self.retry
        # One absolute deadline shared by every attempt: a hung daemon
        # consumes it once and the call returns within ~1x the configured
        # bound; only *fast* failures (refused connection, typed error
        # replies) leave room for retries.
        deadline = Deadline(timeout if timeout is not None
                            else self.request_deadline)

        def attempt() -> Any:
            with self._lock:
                if self._sock is None:
                    self._reconnect()
                return self._exchange(tag, payload, deadline)

        if policy is None:
            return attempt()
        return retry_call(attempt, policy, op=tag, rng=self.rng,
                          deadline=deadline)

    def close(self) -> None:
        """Close the control connection (idempotent)."""
        self._drop()


class RemoteCloud:
    """A provisioned pair of party daemons, as seen from the client side.

    Args:
        c1_address: ``(host, port)`` of the C1 daemon.
        c2_address: ``(host, port)`` of the C2 daemon.
        fetch_timeout: how long :meth:`query` waits for C2 to file a share.
        retry: retry policy for queries and share fetches (``None`` arms
            the default :class:`RetryPolicy`; pass ``RetryPolicy.none()``
            to disable).  Retries are safe: every query carries a fresh
            idempotency id, so a re-sent request replays the daemon's
            memoized reply instead of re-consuming single-use state.
        request_deadline: bound (seconds) on one request/reply round trip
            against either daemon; ``None`` waits indefinitely.
        rng: backoff-jitter source (seedable for deterministic tests).
    """

    def __init__(self, c1_address: tuple[str, int],
                 c2_address: tuple[str, int],
                 fetch_timeout: float = DEFAULT_FETCH_TIMEOUT,
                 retry: RetryPolicy | None = None,
                 request_deadline: float | None = None,
                 rng: Random | None = None,
                 shard_addresses: Sequence[tuple[str, int]] | None = None
                 ) -> None:
        self.codec = WireCodec()
        self.c1_address = c1_address
        self.c2_address = c2_address
        self.shard_addresses = ([(host, int(port))
                                 for host, port in shard_addresses]
                                if shard_addresses else None)
        self.fetch_timeout = fetch_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.request_deadline = request_deadline
        self._rng = rng if rng is not None else Random()
        self.c1 = DaemonClient(c1_address, self.codec,
                               request_deadline=request_deadline,
                               rng=self._rng)
        self.c2 = DaemonClient(c2_address, self.codec,
                               request_deadline=request_deadline,
                               rng=self._rng)
        #: control connections to the shard C1 daemons (provision/stats
        #: only — queries go through the coordinator, which scatters).
        self.shards = [DaemonClient(address, self.codec,
                                    request_deadline=request_deadline,
                                    rng=self._rng)
                       for address in (self.shard_addresses or [])]
        #: populated by :meth:`provision` (or :meth:`adopt_public_key`)
        self.table_size: int | None = None
        self.dimensions: int | None = None
        self.distance_bits: int | None = None
        # Provision payloads kept verbatim so a restarted daemon can be
        # re-provisioned transparently between retry attempts.
        self._provision_payloads: dict[str, dict[str, Any]] | None = None
        self._query_seq = count(1)
        self._client_id = uuid.uuid4().hex[:12]

    def _next_query_id(self) -> str:
        return f"q-{self._client_id}-{next(self._query_seq)}"

    # -- provisioning (Alice's role) ------------------------------------------
    def provision(self, keypair: PaillierKeyPair,
                  encrypted_table: EncryptedTable,
                  distance_bits: int | None = None,
                  seed: int | None = None,
                  precompute_queries: int = 0,
                  k_default: int = 1) -> dict[str, Any]:
        """Ship the secret key to C2 and the encrypted table to C1.

        C2 is provisioned first so that C1's peer dial finds a party that
        can speak the protocol.  When ``precompute_queries`` is positive,
        each daemon builds and warms its own party-local
        :class:`~repro.crypto.precompute.PrecomputeEngine` sized for that
        many queries (C1 evaluator pools, C2 decryptor pools) — the offline
        work happens in the daemons, where the pools live.

        With ``shard_addresses`` configured, each shard daemon receives its
        horizontal slice of the table (sliced with the same ``divmod``
        arithmetic as the in-process sharded store) plus its global start
        index, and the coordinator C1 additionally learns the shard
        addresses so queries scatter the distance scan across machines.
        """
        if encrypted_table.public_key != keypair.public_key:
            raise ConfigurationError(
                "encrypted table was produced under a different key pair")
        self.table_size = len(encrypted_table)
        self.dimensions = encrypted_table.dimensions
        self.distance_bits = distance_bits
        load = dict(n_records=len(encrypted_table),
                    dimensions=encrypted_table.dimensions,
                    k=k_default, queries=precompute_queries)
        c2_payload = {
            "private_key": private_key_to_dict(keypair.private_key),
            "distance_bits": distance_bits,
            "seed": seed,
            "precompute": (dict(load, sbd_bit_length=distance_bits)
                           if precompute_queries > 0 else None),
        }
        c1_payload = {
            "encrypted_table": encrypted_table.to_dict(),
            "distance_bits": distance_bits,
            "c2_address": [self.c2_address[0], self.c2_address[1]],
            "seed": seed + 1 if seed is not None else None,
            "precompute": (dict(load, sbd_bit_length=distance_bits)
                           if precompute_queries > 0 else None),
        }
        shard_payloads: list[dict[str, Any]] = []
        if self.shard_addresses:
            c1_payload["shards"] = [[host, port]
                                    for host, port in self.shard_addresses]
            shard_count = len(self.shard_addresses)
            for index in range(shard_count):
                slice_table, start_index = shard_table(
                    encrypted_table, index, shard_count)
                shard_payloads.append({
                    "encrypted_table": slice_table.to_dict(),
                    "distance_bits": distance_bits,
                    "c2_address": [self.c2_address[0], self.c2_address[1]],
                    "seed": seed + 2 + index if seed is not None else None,
                    "shard_index": index,
                    "shard_count": shard_count,
                    "start_index": start_index,
                    "precompute": None,  # shards run only the SSED scan
                })
        c2_reply = self.c2.request("transport.provision", c2_payload)
        # Only now can ciphertexts travel on these connections.
        self.codec.public_key = keypair.public_key
        shard_replies = [
            client.request("transport.provision", payload)
            for client, payload in zip(self.shards, shard_payloads)
        ]
        c1_reply = self.c1.request("transport.provision", c1_payload)
        self._provision_payloads = {"c1": c1_payload, "c2": c2_payload,
                                    "shards": shard_payloads}
        reply = {"c1": c1_reply, "c2": c2_reply}
        if shard_replies:
            reply["shards"] = shard_replies
        return reply

    def ensure_provisioned(self) -> None:
        """Re-provision any daemon that lost its state (e.g. restarted).

        Pings both daemons and re-sends the stored provision payloads —
        C2 first, then C1 (whose peer dial needs a provisioned C2) — when a
        daemon reports ``provisioned: false``.  A no-op for clouds that
        never provisioned through this object (nothing stored to replay).
        """
        if self._provision_payloads is None:
            return
        if not self.c2.request("transport.ping", None).get("provisioned"):
            self.c2.request("transport.provision",
                            self._provision_payloads["c2"])
        for client, payload in zip(self.shards,
                                   self._provision_payloads.get("shards", [])):
            if not client.request("transport.ping", None).get("provisioned"):
                client.request("transport.provision", payload)
        if not self.c1.request("transport.ping", None).get("provisioned"):
            self.c1.request("transport.provision",
                            self._provision_payloads["c1"])

    def adopt_public_key(self, public_key) -> None:
        """Attach the key for ciphertext traffic to already-provisioned daemons."""
        self.codec.public_key = public_key

    def clone(self) -> "RemoteCloud":
        """A second, independent connection pair to the same daemons.

        The clone shares the key and table metadata but owns its own
        sockets, so closing it (e.g. when a serving layer built on top shuts
        down) never severs the original connections.
        """
        other = RemoteCloud(self.c1_address, self.c2_address,
                            fetch_timeout=self.fetch_timeout,
                            retry=self.retry,
                            request_deadline=self.request_deadline,
                            shard_addresses=self.shard_addresses)
        other.codec.public_key = self.codec.public_key
        other.table_size = self.table_size
        other.dimensions = self.dimensions
        other.distance_bits = self.distance_bits
        other._provision_payloads = self._provision_payloads
        return other

    # -- queries (Bob's role) --------------------------------------------------
    def _recover(self, error: BaseException, attempt: int) -> None:
        """Between-attempt hook: heal whatever the failure broke.

        A restarted daemon answers its ping with ``provisioned: false`` and
        gets its stored provision payload re-sent; a merely-dropped
        connection heals inside :meth:`DaemonClient.request`.  Failures
        here are swallowed — the next attempt surfaces whatever is still
        wrong, and the retry schedule keeps backing off.
        """
        try:
            self.ensure_provisioned()
        except ReproError:
            pass

    def query(self, encrypted_query: Sequence[Ciphertext], k: int,
              mode: str = "basic"
              ) -> tuple[ResultShares, SkNNRunReport | None]:
        """Run one kNN query across the two daemons.

        C1 answers with its mask share plus the delivery id; the decrypted
        half is fetched from C2 directly, and the two halves are assembled
        into complete :class:`ResultShares` here — at Bob, the only place
        both halves may meet.

        The whole operation is idempotently retried: the query id keys
        C1's reply cache (a resend replays the memoized answer) and doubles
        as the fetch attempt token on C2 (a re-fetch replays the delivered
        share).  When the *fetch* phase fails the id is rotated, so the
        retry re-runs the query end to end instead of replaying a cached
        reply whose delivery id died with C2.
        """
        state = {"query_id": self._next_query_id()}

        def run_once() -> tuple[ResultShares, SkNNRunReport | None]:
            reply = self.c1.request("transport.query", {
                "mode": mode, "k": k, "query": list(encrypted_query),
                "query_id": state["query_id"],
            })
            try:
                shares = self._complete_shares(reply["masks"],
                                               reply["modulus"],
                                               reply["delivery_id"],
                                               attempt=state["query_id"])
            except ReproError:
                state["query_id"] = self._next_query_id()
                raise
            report = (SkNNRunReport.from_payload(reply["report"])
                      if reply.get("report") else None)
            return shares, report

        return retry_call(run_once, self.retry, op="query", rng=self._rng,
                          on_retry=self._recover)

    def query_batch(self, encrypted_queries: Sequence[Sequence[Ciphertext]],
                    ks: Sequence[int], mode: str = "basic"
                    ) -> tuple[list[ResultShares], ProtocolRunStats, float]:
        """Run a scheduler batch; returns shares, stats and wall time.

        Retried under the same idempotency scheme as :meth:`query` (one
        batch id covers the batch reply and every share fetch in it).
        """
        state = {"batch_id": self._next_query_id()}

        def run_once() -> tuple[list[ResultShares], ProtocolRunStats, float]:
            reply = self.c1.request("transport.query_batch", {
                "mode": mode,
                "ks": list(ks),
                "queries": [list(query) for query in encrypted_queries],
                "batch_id": state["batch_id"],
            })
            modulus = reply["modulus"]
            try:
                shares = [
                    self._complete_shares(result["masks"], modulus,
                                          result["delivery_id"],
                                          attempt=state["batch_id"])
                    for result in reply["results"]
                ]
            except ReproError:
                state["batch_id"] = self._next_query_id()
                raise
            stats = ProtocolRunStats.from_payload(reply["stats"])
            return shares, stats, reply["wall_time_seconds"]

        return retry_call(run_once, self.retry, op="query_batch",
                          rng=self._rng, on_retry=self._recover)

    def _complete_shares(self, masks: list[list[int]], modulus: int,
                         delivery_id: int,
                         attempt: str | None = None) -> ResultShares:
        """Fetch C2's share half and assemble the complete shares.

        An *unreachable* C2 (connection refused/reset — it may be mid
        restart) is retried here with the **same** attempt token: a C2
        with a durable mailbox comes back holding the share, so the retry
        returns the bit-identical value with zero query re-execution.
        Only :class:`PeerUnavailable` earns this treatment — a
        :class:`DeadlineExceeded` fetch means the share is genuinely gone
        (an amnesiac restart voided it), and propagates so the caller
        rotates the query id and re-runs end to end.
        """
        payload = {
            "delivery_id": delivery_id,
            "timeout": self.fetch_timeout,
            "attempt": attempt,
        }
        for retry_index in count():
            try:
                masked_values = self.c2.request(
                    "transport.fetch_share", payload,
                    timeout=self._fetch_request_timeout())
                break
            except PeerUnavailable:
                if retry_index + 1 >= self.retry.max_attempts:
                    raise
                time.sleep(self.retry.backoff_seconds(retry_index,
                                                      rng=self._rng))
                # On a retry the share is either already recovered in the
                # mailbox or gone for good — don't hold the daemon-side
                # wait open for the full fetch window.
                payload = dict(payload,
                               timeout=min(self.fetch_timeout, 5.0))
        return ResultShares(masks_from_c1=masks,
                            masked_values_from_c2=masked_values,
                            modulus=modulus, delivery_id=delivery_id)

    def _fetch_request_timeout(self) -> float | None:
        """Round-trip bound for a fetch: the daemon may legitimately hold
        the request for ``fetch_timeout`` while C2 finishes decrypting."""
        if self.request_deadline is None:
            return None
        return max(self.request_deadline, self.fetch_timeout + 5.0)

    # -- maintenance -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Every daemon's introspection payload."""
        stats = {"c1": self.c1.request("transport.stats", None),
                 "c2": self.c2.request("transport.stats", None)}
        if self.shards:
            stats["shards"] = [client.request("transport.stats", None)
                               for client in self.shards]
        return stats

    def metrics(self) -> dict[str, Any]:
        """Both daemons' metric registries (Prometheus text + snapshot)."""
        return {"c1": self.c1.request("transport.metrics", None),
                "c2": self.c2.request("transport.metrics", None)}

    def shutdown_daemons(self) -> None:
        """Ask every daemon to exit (best effort)."""
        for client in (*self.shards, self.c1, self.c2):
            try:
                client.request("transport.shutdown", None)
            except ChannelError:
                pass

    def close(self) -> None:
        """Close the control connections (daemons keep running)."""
        self.c1.close()
        self.c2.close()
        for client in self.shards:
            client.close()


class RemoteProtocol:
    """Protocol-object adapter: lets ``SkNNSystem`` drive a daemon pair.

    Implements the ``run_with_report``/``last_report``/``close`` surface of
    the in-process protocol classes, so ``SkNNSystem.query_with_report``
    works unchanged in ``mode="distributed"``.
    """

    name = "SkNN-distributed"

    def __init__(self, remote: RemoteCloud, mode: str = "basic",
                 supervisor: Any = None) -> None:
        """``supervisor``, when given, is shut down by :meth:`close` (the
        system owns the daemon processes it spawned)."""
        self.remote = remote
        self.mode = mode
        self.supervisor = supervisor
        self.last_report: SkNNRunReport | None = None

    def run_with_report(self, encrypted_query: Sequence[Ciphertext], k: int,
                        distance_bits: int | None = None) -> ResultShares:
        shares, report = self.remote.query(encrypted_query, k, mode=self.mode)
        self.last_report = report
        return shares

    def run(self, encrypted_query: Sequence[Ciphertext],
            k: int) -> ResultShares:
        return self.run_with_report(encrypted_query, k)

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.shutdown()
        else:
            self.remote.close()


class _RemoteBatchRecorder:
    """Recorder façade over the stats the C1 daemon measured for a batch."""

    def __init__(self, store: "RemoteStore") -> None:
        self._store = store

    def finish(self, protocol: str, elapsed: float) -> ProtocolRunStats:
        stats = self._store.last_batch_stats or ProtocolRunStats()
        stats.protocol = protocol
        stats.wall_time_seconds = elapsed
        return stats


class RemoteStore:
    """Query-store adapter backing a distributed ``QueryServer``.

    Satisfies the store contract of
    :class:`~repro.service.scheduler.QueryServer` (validate, batched answer,
    stats recording, precompute refill) by dispatching every scheduler batch
    over the remote channel to the C1 daemon — the batching/session logic of
    the serving layer is reused verbatim on top of networked parties.
    """

    protocol_label = "SkNNb-distributed"

    def __init__(self, remote: RemoteCloud, mode: str = "basic",
                 public_key=None, supervisor: Any = None) -> None:
        if remote.table_size is None or remote.dimensions is None:
            raise ConfigurationError(
                "RemoteStore needs a provisioned RemoteCloud (table "
                "metadata unknown)")
        self.remote = remote
        self.mode = mode
        self.supervisor = supervisor
        self.public_key = (public_key if public_key is not None
                           else remote.codec.public_key)
        if self.public_key is None:
            raise ConfigurationError(
                "RemoteStore needs the deployment's public key")
        self.last_batch_stats: ProtocolRunStats | None = None
        self.last_batch_timings = None  # phase breakdown stays daemon-side

    # -- store contract -------------------------------------------------------
    @property
    def table_size(self) -> int:
        return self.remote.table_size  # type: ignore[return-value]

    @property
    def dimensions(self) -> int:
        return self.remote.dimensions  # type: ignore[return-value]

    def validate_query(self, encrypted_query: Sequence[Ciphertext],
                       k: int) -> None:
        if len(encrypted_query) != self.dimensions:
            raise QueryError(
                f"encrypted query has {len(encrypted_query)} attributes, "
                f"expected {self.dimensions}")
        if not isinstance(k, int) or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        if k > self.table_size:
            raise QueryError(
                f"k={k} exceeds the database size {self.table_size}")

    def answer_batch(self, encrypted_queries: Sequence[Sequence[Ciphertext]],
                     ks: Sequence[int]) -> list[ResultShares]:
        shares, stats, _ = self.remote.query_batch(encrypted_queries, ks,
                                                   mode=self.mode)
        self.last_batch_stats = stats
        return shares

    def start_recorder(self) -> _RemoteBatchRecorder:
        return _RemoteBatchRecorder(self)

    def refill_precompute(self, budget: int | None = None) -> int:
        """No-op: each daemon refills its own party-local pools."""
        return 0

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.shutdown()
        else:
            self.remote.close()
