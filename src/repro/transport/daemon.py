"""Party daemons: C1 and C2 as standalone networked processes.

Each daemon owns one listening TCP socket and serves two kinds of
connections, distinguished by the first frame (a ``transport.hello``
message):

* **clients** (Alice provisioning, Bob querying, the supervisor) speak a
  request/reply control protocol — tags prefixed ``transport.``;
* **the peer cloud** (only on C2: the connection C1 dials after it is
  provisioned) speaks the *protocol* wire format: every incoming frame's tag
  selects the registered P2 step handler (see
  :meth:`~repro.protocols.base.TwoPartyProtocol.collect_p2_handlers`), which
  receives the message, computes C2's step and sends the tagged reply — the
  same handler code the in-memory runtime executes inline.

Trust boundary: the C1 daemon holds the encrypted table and only the public
key; the C2 daemon holds the private key and never sees the table.  Result
shares decrypted by C2 stay on the C2 daemon (a mailbox keyed by delivery
id) until the query client fetches them over its *own* connection — C1 never
relays them, mirroring the paper's delivery step.

Shutdown is hardened for CI: ``serve_forever`` installs SIGTERM/SIGINT
handlers and an ``atexit`` hook that close the listening socket, stop the
precompute producer thread, persist the ``--pool-cache`` and join every
connection thread, so a test harness never leaks processes or threads.
"""

from __future__ import annotations

import atexit
import logging
import signal
import socket
import threading
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from random import Random
from typing import Any, Callable

from repro.core.cloud import CloudC1, CloudC2, FederatedCloud
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.core.sknn_shard import (
    ScanRegistry,
    ShardCoordinatorProtocol,
    ShardScanProtocol,
)
from repro.crypto.paillier import (
    Ciphertext,
    OperationCounter,
    counting_scope,
)
from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
from repro.crypto.serialization import (
    payload_from_jsonable,
    payload_to_jsonable,
    private_key_from_dict,
)
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    CorruptStateError,
    DeadlineExceeded,
    PeerUnavailable,
    ReproError,
)
from repro.network.channel import Message
from repro.network.party import DecryptorParty
from repro.resilience import durability
from repro.resilience.durability import DurableReplyCache
from repro.resilience.idempotency import ReplyCache
from repro.resilience.policy import is_retriable
from repro.telemetry import MetricsHTTPServer, SlowQueryLog
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry import profiling as telemetry_profiling
from repro.telemetry import tracing as telemetry_tracing
from repro.transport.framing import deadline_at, recv_frame, send_frame
from repro.transport.mux import MuxChannel, MuxConnection, PeerPool
from repro.transport.wire import WireCodec

__all__ = ["PartyDaemon", "ShareMailbox", "DurableShareMailbox",
           "parse_address", "RemotePrivateKey"]

logger = logging.getLogger("repro.transport")

#: how long a Bob client may wait for C2 to file a share before giving up
DEFAULT_FETCH_TIMEOUT = 60.0

#: default bound on every mid-protocol blocking read/write on the C1<->C2
#: peer channel (``--io-deadline`` overrides); a dead or wedged peer then
#: surfaces as a typed ``DeadlineExceeded`` instead of a hung query thread.
DEFAULT_IO_DEADLINE = 120.0


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (port 0 = let the OS pick)."""
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise ConfigurationError(
            f"invalid address {text!r}: expected HOST:PORT")
    return host, int(port_text)


class ShareMailbox:
    """Thread-safe store of decrypted result shares, keyed by delivery id.

    C2's delivery handler files shares here (through the party's
    ``share_sink`` hook); Bob clients fetch them over their own connection.
    Fetching removes the share — each is handed out exactly once.

    The exactly-once guarantee survives client retries through an optional
    *attempt token*: a fetch carrying a token memoizes the delivered share
    under ``(delivery_id, token)``, and a later fetch with the **same**
    token replays it (the client's reply was lost on the wire, not the
    share).  A fetch without a token, or with a different token, is a
    genuine second consumer and is still refused.
    """

    #: replay memo bound — ample for one client's retry window without
    #: letting a long-lived daemon accumulate decrypted shares.
    DELIVERED_MEMO = 32

    def __init__(self) -> None:
        self._shares: dict[int, list[list[int]]] = {}
        self._delivered: OrderedDict[tuple[int, str], list[list[int]]] = (
            OrderedDict())
        self._condition = threading.Condition()
        #: the C1 epoch whose delivery ids currently populate the mailbox
        self._epoch: str | None = None

    def put(self, delivery_id: int, masked_values: list[list[int]]) -> None:
        """File one share and wake anyone waiting for it."""
        with self._condition:
            self._record_put(delivery_id, masked_values)
            self._shares[delivery_id] = masked_values
            self._condition.notify_all()

    def fetch(self, delivery_id: int,
              timeout: float = DEFAULT_FETCH_TIMEOUT,
              attempt: str | None = None) -> list[list[int]]:
        """Wait for a share to arrive, pop it, and return it.

        ``attempt`` is the client's idempotency token: a replayed fetch
        with the same token returns the already-delivered share instead of
        failing, keeping retries safe without weakening single-use
        semantics for everyone else.
        """
        deadline = time.monotonic() + timeout
        with self._condition:
            if attempt is not None:
                replay = self._delivered.get((delivery_id, attempt))
                if replay is not None:
                    telemetry_metrics.get_registry().counter(
                        "repro_replayed_replies_total",
                        "Idempotent replays of already-served requests.",
                        ("cache",)).inc(cache="mailbox")
                    return replay
            while delivery_id not in self._shares:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"no share filed under delivery id {delivery_id} "
                        f"within {timeout:.0f}s")
                # A timed-out wait still re-checks the predicate once: the
                # share may have been filed between the timeout firing and
                # the lock being reacquired.
                self._condition.wait(remaining)
            # Persist the consumption *before* handing the share out: after
            # a crash, replay must agree with what any client observed.
            self._record_take(delivery_id, attempt)
            share = self._shares.pop(delivery_id)
            if attempt is not None:
                self._delivered[(delivery_id, attempt)] = share
                while len(self._delivered) > self.DELIVERED_MEMO:
                    self._delivered.popitem(last=False)
            return share

    def adopt_epoch(self, epoch: str | None) -> bool:
        """Align the mailbox with a connecting C1's delivery-id epoch.

        Delivery ids are minted by one C1 *process*; a different (or
        unknown) epoch means the counter started over, so every stored
        share could collide with a recycled id and must be dropped.  The
        same epoch reconnecting — a dropped link, not a restart — keeps
        pending shares fetchable.  Returns ``True`` when the mailbox
        content was kept.
        """
        with self._condition:
            if epoch is not None and epoch == self._epoch:
                return True
            self._record_epoch(epoch)
            self._epoch = epoch
            self._shares.clear()
            self._delivered.clear()
            self._condition.notify_all()
            return False

    def clear(self) -> None:
        """Drop every stored share (a new provisioning/C1 epoch began)."""
        with self._condition:
            self._record_clear()
            self._epoch = None
            self._shares.clear()
            self._delivered.clear()
            self._condition.notify_all()

    # -- persistence hooks (no-ops here; see DurableShareMailbox) -----------
    def _record_put(self, delivery_id: int,
                    masked_values: list[list[int]]) -> None:
        """Called under the lock before a share becomes fetchable."""

    def _record_take(self, delivery_id: int, attempt: str | None) -> None:
        """Called under the lock before a share is popped/memoized."""

    def _record_epoch(self, epoch: str | None) -> None:
        """Called under the lock when a new C1 epoch wipes the mailbox."""

    def _record_clear(self) -> None:
        """Called under the lock when the mailbox is wiped outright."""

    def close(self) -> None:
        """Release any persistence resources (no-op for the in-memory box)."""

    def __len__(self) -> int:
        with self._condition:
            return len(self._shares)


class DurableShareMailbox(ShareMailbox):
    """A :class:`ShareMailbox` whose contents survive a daemon crash.

    Every state transition — a share filed, a share consumed (with its
    attempt-token memo), an epoch change, a wipe — is appended to a
    crash-consistent :class:`~repro.resilience.durability.Journal` before
    it takes effect in memory.  On construction the journal is replayed,
    so a C2 daemon SIGKILLed between delivering a share and the client's
    fetch comes back with the share still pending: the retried
    ``fetch_share`` (same attempt token) returns the bit-identical value
    and the query is never re-executed.

    The journal is compacted (atomic rewrite of just the live state) once
    it outgrows ``compact_every`` records, bounding disk usage by the
    mailbox size rather than the daemon's query count.
    """

    def __init__(self, path: str | Path, fsync: bool = True,
                 compact_every: int = 512) -> None:
        super().__init__()
        self._journal = durability.Journal(path, name="mailbox", fsync=fsync)
        self._compact_every = max(int(compact_every), 1)
        for record in self._journal.open():
            if not isinstance(record, dict):
                continue
            operation = record.get("op")
            if operation == "put":
                self._shares[int(record["id"])] = record["share"]
            elif operation == "take":
                share = self._shares.pop(int(record["id"]), None)
                attempt = record.get("attempt")
                if share is not None and attempt is not None:
                    self._delivered[(int(record["id"]), attempt)] = share
                    while len(self._delivered) > self.DELIVERED_MEMO:
                        self._delivered.popitem(last=False)
            elif operation == "epoch":
                self._epoch = record.get("epoch")
                self._shares.clear()
                self._delivered.clear()
            elif operation == "clear":
                self._epoch = None
                self._shares.clear()
                self._delivered.clear()
        #: pending shares + delivered memos brought back by journal replay
        self.recovered = len(self._shares) + len(self._delivered)

    # -- persistence hooks (called under the condition lock) ----------------
    def _record_put(self, delivery_id: int,
                    masked_values: list[list[int]]) -> None:
        self._journal.append(
            {"op": "put", "id": delivery_id, "share": masked_values})
        self._maybe_compact()

    def _record_take(self, delivery_id: int, attempt: str | None) -> None:
        self._journal.append(
            {"op": "take", "id": delivery_id, "attempt": attempt})
        self._maybe_compact()

    def _record_epoch(self, epoch: str | None) -> None:
        self._journal.append({"op": "epoch", "epoch": epoch})

    def _record_clear(self) -> None:
        self._journal.append({"op": "clear"})

    def _maybe_compact(self) -> None:
        if self._journal.records <= self._compact_every:
            return
        records: list[dict[str, Any]] = []
        if self._epoch is not None:
            records.append({"op": "epoch", "epoch": self._epoch})
        records.extend({"op": "put", "id": delivery_id, "share": share}
                       for delivery_id, share in self._shares.items())
        for (delivery_id, attempt), share in self._delivered.items():
            records.append({"op": "put", "id": delivery_id, "share": share})
            records.append(
                {"op": "take", "id": delivery_id, "attempt": attempt})
        self._journal.rewrite(records)

    def close(self) -> None:
        self._journal.close()

    @property
    def journal_records(self) -> int:
        """Records currently in the journal file (introspection)."""
        return self._journal.records


class RemotePrivateKey:
    """Stand-in for the secret key on processes that must not hold it.

    The C1 daemon's view of C2 is a :class:`DecryptorParty` carrying this
    object: statistics plumbing (operation counters) works, but any attempt
    to actually decrypt fails loudly — the real key lives only in the C2
    process.
    """

    def __init__(self, public_key) -> None:
        self.public_key = public_key
        #: always-zero counter: remote decryptions are counted by the remote
        #: process.  The C1 daemon fetches C2's per-query counter deltas
        #: over the ``telemetry.collect`` exchange and merges them into the
        #: run report, so distributed reports show real C2 columns.
        self.counter = OperationCounter()

    def __getattr__(self, name: str) -> Any:
        raise ConfigurationError(
            f"the private key is held by the remote C2 process "
            f"(attempted to use {name!r} locally)")


class _Connection:
    """One accepted socket plus the bookkeeping to shut it down."""

    def __init__(self, sock: socket.socket, address) -> None:
        self.sock = sock
        self.address = address

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class PartyDaemon:
    """One cloud party (C1 or C2) serving its side of the SkNN protocols.

    Args:
        role: ``"c1"`` or ``"c2"``.
        host: interface to listen on.
        port: TCP port (0 = ephemeral; see ``port_file``).
        port_file: when given, the bound ``host port`` is written there once
            listening — how a supervisor discovers ephemeral ports.
        pool_cache: path for persisting/reloading the party's precompute
            pools across restarts (loaded lazily when the engine is built,
            saved on clean shutdown).
        metrics_listen: ``HOST:PORT`` for a side HTTP listener serving
            ``/metrics`` (Prometheus text) and ``/stats`` (JSON); ``None``
            disables it.  Port 0 binds an ephemeral port, discoverable
            through ``transport.stats``.
        slow_query_seconds: wall-time threshold for the slow-query log
            (``None`` disables it).
        io_deadline: bound (seconds) on every mid-protocol blocking
            read/write on the C1↔C2 peer channel — a dead peer surfaces as
            a typed, retriable error instead of a hung query thread.
            ``None`` disables the bound.
        state_dir: when given, arms crash-consistent durability: the C2
            share mailbox and C1 reply cache journal every transition to
            disk (replayed on the next start), and a provision manifest
            lets a restarted daemon serve fetch/replay traffic without
            being re-provisioned.  ``None`` (the default) keeps all state
            in memory, exactly as before.
        state_fsync: fsync journal appends and snapshot writes (the
            durability guarantee; disable only for benchmarks).
        journal_compact_every: rewrite a journal once it exceeds this many
            records, bounding disk usage by live state rather than query
            count.
    """

    #: snapshot kind tag of the provision manifest
    MANIFEST_KIND = "party-provision-manifest"

    def __init__(self, role: str, host: str = "127.0.0.1", port: int = 0,
                 port_file: str | Path | None = None,
                 pool_cache: str | Path | None = None,
                 metrics_listen: str | None = None,
                 slow_query_seconds: float | None = 1.0,
                 io_deadline: float | None = DEFAULT_IO_DEADLINE,
                 state_dir: str | Path | None = None,
                 state_fsync: bool = True,
                 journal_compact_every: int = 512,
                 profile: bool = False,
                 peer_connections: int = 1,
                 shard_index: int | None = None,
                 shard_count: int | None = None) -> None:
        if role not in ("c1", "c2"):
            raise ConfigurationError(f"unknown party role {role!r}")
        if shard_index is not None and role != "c1":
            raise ConfigurationError("only C1 daemons can be shards")
        if (shard_index is None) != (shard_count is None):
            raise ConfigurationError(
                "--shard-index and --shard-count go together")
        if shard_index is not None and not (
                0 <= shard_index < (shard_count or 0)):
            raise ConfigurationError(
                f"shard_index {shard_index} out of range for "
                f"{shard_count} shards")
        self.role = role
        self.party_name = role.upper()
        #: how many persistent multiplexed connections the C1 side keeps to
        #: C2 — pipelining comes from per-query contexts either way, extra
        #: connections spread the socket-level send serialization.
        self.peer_connections = max(int(peer_connections), 1)
        #: shard identity of a C1 shard daemon (``None`` on a plain C1 or
        #: coordinator); the provision payload must agree.
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.host = host
        self.port = port
        self.port_file = Path(port_file) if port_file is not None else None
        self.pool_cache = Path(pool_cache) if pool_cache is not None else None
        self.metrics_listen = metrics_listen
        self.io_deadline = io_deadline
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.state_fsync = state_fsync
        self.journal_compact_every = journal_compact_every
        self._started_at = time.monotonic()
        #: this process's delivery-id epoch (C1 only): sent in the cloud
        #: hello so C2 wipes its mailbox exactly when the id counter
        #: restarted, not on every reconnect of the same process.  Shard
        #: daemons never mint delivery ids, so they carry no epoch and
        #: their hellos leave the coordinator's mailbox alone.
        self.epoch = (uuid.uuid4().hex
                      if role == "c1" and shard_index is None else None)
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        # Idempotent replay of completed transport.query/query_batch
        # replies, keyed by the client's query id (see _handle_control).
        # With a state dir, completed replies are journaled and survive a
        # crash: a retried query id after a restart replays from disk.
        if self.state_dir is not None and role == "c1":
            self._reply_cache: ReplyCache = DurableReplyCache(
                self.state_dir / "replies.journal", name=f"{role}-query",
                fsync=state_fsync, compact_every=journal_compact_every)
        else:
            self._reply_cache = ReplyCache(name=f"{role}-query")
        self._metrics_server: MetricsHTTPServer | None = None
        self.slow_log = SlowQueryLog(threshold_seconds=slow_query_seconds)
        #: always-on sampling profiler (``--profile``); ``/profile`` and
        #: ``transport.profile`` fall back to an ephemeral sampler when off.
        self.profiler = (telemetry_profiling.SamplingProfiler()
                         if profile else None)
        # C2: per-trace cost ledgers for the telemetry.collect window.  The
        # ledger's construction-time snapshot *is* the counter-delta window
        # opened by telemetry.trace_begin, so the shipped counters and the
        # per-phase rows can never disagree.
        self._trace_ledgers: dict[str, telemetry_profiling.CostLedger] = {}
        self._trace_ledgers_lock = threading.Lock()

        self.codec = WireCodec()
        self.engine: PrecomputeEngine | None = None
        if self.state_dir is not None and role == "c2":
            self.mailbox: ShareMailbox = DurableShareMailbox(
                self.state_dir / "mailbox.journal", fsync=state_fsync,
                compact_every=journal_compact_every)
        else:
            self.mailbox = ShareMailbox()
        self._count_recovered()
        self.rng: Random | None = None
        self.distance_bits: int | None = None

        # C2 state
        self._private_key = None
        #: rendezvous of shard candidate filings across peer connections
        self._scan_registry = ScanRegistry(
            timeout=io_deadline if io_deadline is not None else 120.0)
        #: accepted cloud-peer connections (C2), for stats and shutdown
        self._peer_links: list[MuxConnection] = []
        # C1 state
        self._peer_pool: PeerPool | None = None
        # Provisioned inputs kept so a failed peer link can be re-dialled
        # and the protocol stack rebuilt without a client re-provision.
        self._table: EncryptedTable | None = None
        self._c2_address: tuple[str, int] | None = None
        #: coordinator mode: addresses of the C1 shard daemons to scatter to
        self._shard_addresses: list[tuple[str, int]] | None = None
        #: shard mode: this slice's global start index (from provisioning)
        self._start_index = 0
        self._rng_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False

    def _count_recovered(self) -> None:
        """Publish how much journaled state the restart brought back."""
        recovered = telemetry_metrics.get_registry().counter(
            "repro_recovered_deliveries_total",
            "Mailbox shares and completed replies replayed from the "
            "durability journals after a restart.", ("role", "kind"))
        shares = getattr(self.mailbox, "recovered", 0)
        if shares:
            recovered.inc(shares, role=self.role, kind="share")
        replies = getattr(self._reply_cache, "recovered", 0)
        if replies:
            recovered.inc(replies, role=self.role, kind="reply")
        if shares or replies:
            logger.info("%s recovered %d shares and %d replies from %s",
                        self.party_name, shares, replies, self.state_dir)

    # -- durable provision manifest -------------------------------------------
    def _manifest_path(self) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "manifest.json"

    def _persist_manifest(self, payload: dict[str, Any]) -> None:
        """Snapshot the provision payload so a restart self-provisions."""
        path = self._manifest_path()
        if path is None:
            return
        document = {"role": self.role,
                    "payload": payload_to_jsonable(payload)}
        durability.write_snapshot(path, self.MANIFEST_KIND, document,
                                  fsync=self.state_fsync)
        logger.info("%s persisted its provision manifest to %s",
                    self.party_name, path)

    def _recover_state(self) -> None:
        """Self-provision from the manifest left by a previous incarnation.

        Runs before the accept loop, so by the time the port is
        discoverable the daemon already serves fetch/replay traffic (C2:
        recovered mailbox + key; C1: reply cache + table) without anyone
        re-shipping the provision payloads.  A corrupt manifest is
        rejected — logged and ignored, never a startup crash.  C1 does not
        dial its peer here: the link comes up lazily on the first query
        (:meth:`_ensure_peer`), because C2 may itself still be restarting.
        """
        path = self._manifest_path()
        if path is None:
            return
        try:
            document = durability.read_snapshot(path, self.MANIFEST_KIND)
        except CorruptStateError as exc:
            logger.warning("ignoring corrupt provision manifest: %s", exc)
            return
        if document is None:
            return
        if document.get("role") != self.role:
            logger.warning("ignoring manifest for role %r (this is %s)",
                           document.get("role"), self.role)
            return
        payload = payload_from_jsonable(document.get("payload"), None)
        try:
            self._handle_provision(payload, from_recovery=True)
        except ReproError as exc:
            logger.warning("manifest recovery failed: %s", exc)
            return
        logger.info("%s re-provisioned itself from %s", self.party_name, path)

    # -- lifecycle ------------------------------------------------------------
    def bind(self) -> tuple[str, int]:
        """Bind the listening socket; returns the actual ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        if self.port_file is not None:
            temporary = self.port_file.with_name(self.port_file.name + ".tmp")
            temporary.write_text(f"{self.host} {self.port}\n")
            temporary.replace(self.port_file)
        logger.info("%s daemon listening on %s:%d",
                    self.party_name, self.host, self.port)
        return self.host, self.port

    def start(self) -> None:
        """Bind (if needed) and start the accept loop in the background.

        With a ``state_dir``, manifest recovery runs first — before the
        port file is written — so clients that discover the address never
        observe a half-recovered daemon.
        """
        if not self._provisioned():
            self._recover_state()
        if self._listener is None:
            self.bind()
        if self.profiler is not None:
            self.profiler.start()
            logger.info("%s daemon sampling profiler armed (%.0f Hz)",
                        self.party_name, 1.0 / self.profiler.interval)
        if self.metrics_listen is not None and self._metrics_server is None:
            self._metrics_server = MetricsHTTPServer(
                self.metrics_listen, extra_stats=self._handle_stats,
                profiler=self.profiler).start()
            logger.info("%s daemon metrics at %s/metrics",
                        self.party_name, self._metrics_server.url)
        telemetry_metrics.get_registry().add_collector(self._collect_metrics)
        accept_thread = threading.Thread(
            target=self._accept_loop, name=f"sknn-{self.role}-accept",
            daemon=True)
        accept_thread.start()
        self._threads.append(accept_thread)

    def _collect_metrics(self,
                         registry: telemetry_metrics.MetricsRegistry) -> None:
        """Scrape-time collector mirroring daemon state into the registry."""
        role = self.role
        registry.gauge(
            "repro_pending_shares",
            "Decrypted result shares waiting in the C2 mailbox.",
            ("role",)).set(len(self.mailbox), role=role)
        operations = registry.gauge(
            "repro_crypto_operations",
            "Cumulative Paillier operations performed by this party.",
            ("party", "op"))
        public_key = self.codec.public_key
        if public_key is not None:
            for op, value in public_key.counter.snapshot().items():
                operations.set(value, party=role, op=op)
        if self._private_key is not None:
            operations.set(self._private_key.counter.snapshot()["decryptions"],
                           party=role, op="decryptions")
        if self.engine is not None:
            stats = self.engine.stats()
            pools = registry.gauge(
                "repro_pool_items", "Precompute pool fill level.",
                ("role", "pool"))
            for pool, remaining in stats.get("remaining", {}).items():
                pools.set(remaining, role=role, pool=pool)
            hits = registry.gauge(
                "repro_pool_requests", "Precompute pool takes served.",
                ("role", "outcome"))
            hits.set(sum(stats.get("hits", {}).values())
                     + stats.get("obfuscator_hits", 0),
                     role=role, outcome="hit")
            hits.set(sum(stats.get("misses", {}).values())
                     + stats.get("obfuscator_misses", 0),
                     role=role, outcome="miss")
        links = self._peer_connections_snapshot()
        if links:
            traffic = self._peer_traffic_total(links)
            wire = registry.gauge(
                "repro_wire", "Cloud-to-cloud traffic on the peer link.",
                ("role", "unit"))
            wire.set(traffic.bytes_transferred, role=role, unit="bytes")
            wire.set(traffic.messages, role=role, unit="messages")
            wire.set(traffic.ciphertexts, role=role, unit="ciphertexts")
        registry.gauge(
            "repro_inflight_queries",
            "Queries currently executing on this daemon.",
            ("role",)).set(self._inflight_count(), role=role)

    # -- peer-link introspection ----------------------------------------------
    def _peer_connections_snapshot(self) -> list[MuxConnection]:
        """Every live multiplexed peer connection this daemon holds."""
        if self.role == "c1":
            pool = self._peer_pool
            return pool.connections() if pool is not None else []
        with self._state_lock:
            return list(self._peer_links)

    @staticmethod
    def _peer_traffic_total(links: list[MuxConnection]):
        """Merged traffic across every peer connection."""
        total = links[0].total_traffic()
        for link in links[1:]:
            total = total.merged_with(link.total_traffic())
        return total

    def _inflight_count(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _track_inflight(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Run until SIGTERM/SIGINT or a ``transport.shutdown`` request.

        Installs the hardening hooks: signal handlers and an ``atexit``
        fallback both route into :meth:`close`, so the listening socket is
        released, the precompute producer joined and the pool cache saved no
        matter how the process exits.
        """
        if install_signal_handlers:
            def _terminate(signum, frame):  # pragma: no cover - signal path
                logger.info("%s daemon received signal %d, shutting down",
                            self.party_name, signum)
                self._stop.set()

            signal.signal(signal.SIGTERM, _terminate)
            signal.signal(signal.SIGINT, _terminate)
        atexit.register(self.close)
        self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(0.2)
        finally:
            self.close()

    def stop(self) -> None:
        """Ask the daemon to shut down (non-blocking)."""
        self._stop.set()

    def close(self) -> None:
        """Release every resource (idempotent; safe from signals/atexit)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        telemetry_metrics.get_registry().remove_collector(
            self._collect_metrics)
        if self.profiler is not None:
            self.profiler.stop()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.engine is not None:
            self.engine.stop_producer()
            if self.pool_cache is not None:
                try:
                    saved = self.engine.save_pools(self.pool_cache)
                    logger.info("%s daemon saved %d pool items to %s",
                                self.party_name, saved, self.pool_cache)
                except OSError as exc:  # pragma: no cover - disk trouble
                    logger.warning("could not save pool cache: %s", exc)
        if self._peer_pool is not None:
            self._peer_pool.close()
        for link in self._peer_connections_snapshot():
            link.close()
        self.mailbox.close()
        if isinstance(self._reply_cache, DurableReplyCache):
            self._reply_cache.close()
        with self._state_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        logger.info("%s daemon closed", self.party_name)

    # -- accept/dispatch ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown
            connection = _Connection(sock, address)
            with self._state_lock:
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,),
                name=f"sknn-{self.role}-conn", daemon=True)
            thread.start()
            # Prune finished handlers so a long-lived daemon's thread list
            # (and close()'s join loop) stays bounded by live connections.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)

    def _serve_connection(self, connection: _Connection) -> None:
        try:
            hello = self._read_message(connection.sock)
            if hello is None or hello.tag != "transport.hello":
                raise ChannelError("connection did not start with a hello")
            peer_kind = hello.payload.get("peer") if isinstance(
                hello.payload, dict) else None
            if peer_kind == "cloud" and self.role == "c2":
                if self._private_key is None:
                    self._send_message(connection.sock, "transport.error",
                                       "C2 is not provisioned yet")
                    raise ChannelError("peer connected before provisioning")
                self._send_message(connection.sock, "transport.hello_ok",
                                   {"role": self.role})
                self._serve_cloud_peer(connection,
                                       epoch=hello.payload.get("epoch"))
            elif peer_kind == "client":
                self._send_message(connection.sock, "transport.hello_ok",
                                   {"role": self.role,
                                    "provisioned": self._provisioned()})
                self._serve_client(connection)
            else:
                raise ChannelError(f"unsupported peer kind {peer_kind!r}")
        except ChannelError as exc:
            logger.debug("connection from %s ended: %s",
                         connection.address, exc)
        except Exception:  # pragma: no cover - unexpected
            logger.exception("connection handler crashed")
        finally:
            connection.close()
            with self._state_lock:
                self._connections.discard(connection)

    def _provisioned(self) -> bool:
        if self.role == "c2":
            return self._private_key is not None
        # The table is the provisioned state; the peer link may be down
        # between queries (it is re-dialled on demand by _ensure_peer).
        return self._table is not None

    # -- low-level framing helpers -------------------------------------------
    def _read_message(self, sock: socket.socket) -> Message | None:
        body = recv_frame(sock)
        if body is None:
            return None
        return self.codec.decode_message(body)

    def _send_message(self, sock: socket.socket, tag: str,
                      payload: Any) -> None:
        message = Message(sender=self.party_name, recipient="client",
                          tag=tag, payload=payload)
        send_frame(sock, self.codec.encode_message(message))

    def _send_error(self, sock: socket.socket, error: Exception) -> None:
        """Send a *typed* ``transport.error`` frame.

        The payload carries the error class name and retriability so the
        client can reconstruct the right exception type and its retry layer
        can decide without string matching.  (Old clients that expect a
        plain string render the dict — degraded, not broken.)
        """
        self._send_message(sock, "transport.error", {
            "type": type(error).__name__,
            "message": str(error),
            "retriable": is_retriable(error),
        })

    # -- the C1<->C2 protocol link (C2 side) ----------------------------------
    def _serve_cloud_peer(self, connection: _Connection,
                          epoch: str | None = None) -> None:
        """Demultiplex one peer socket into per-query dispatch workers.

        The connection thread becomes the socket's reader: every frame is
        routed by its context id to a :class:`MuxChannel`, and each new
        context spawns a worker thread running the P2 dispatch loop over
        that channel alone — N pipelined queries from C1 execute their C2
        steps concurrently.  Frames without a context (a pre-pipelining
        C1) land on the ``None`` context and are served identically.
        """
        if self.role != "c2" or self._private_key is None:
            raise ChannelError("C2 is not provisioned yet")
        workers: list[threading.Thread] = []
        workers_lock = threading.Lock()

        def on_new_context(channel: MuxChannel) -> None:
            worker = threading.Thread(
                target=self._serve_peer_context, args=(channel,),
                name=f"sknn-c2-ctx-{channel.context}", daemon=True)
            with workers_lock:
                workers.append(worker)
            worker.start()

        mux = MuxConnection(connection.sock, self.codec, "C2", "C1",
                            io_deadline=self.io_deadline,
                            on_new_context=on_new_context)
        with self._state_lock:
            self._peer_links.append(mux)
        # Delivery ids are minted per C1 *process*: a peer hello carrying a
        # new epoch means the id counter started over, so stale shares must
        # never be fetchable under a recycled id.  The same epoch
        # re-dialling — a dropped link, another connection of the same
        # C1's pool, or this daemon restarting under a durable mailbox —
        # keeps pending shares fetchable.  Shard daemons carry no epoch
        # (they never deliver) and leave the mailbox alone.
        if epoch is not None and not self.mailbox.adopt_epoch(epoch):
            logger.info("C2 reset its mailbox for C1 epoch %s", epoch)
        logger.info("cloud peer connected from %s", connection.address)
        try:
            mux.serve()  # runs until the socket dies or shutdown closes it
        finally:
            with self._state_lock:
                if mux in self._peer_links:
                    self._peer_links.remove(mux)
            with workers_lock:
                pending = list(workers)
            for worker in pending:
                worker.join(timeout=5.0)
        logger.info("cloud peer from %s disconnected", connection.address)

    def _serve_peer_context(self, channel: MuxChannel) -> None:
        """Dispatch one query context's frames to the P2 step handlers.

        Runs on its own worker thread inside a *counting scope*: every
        Paillier operation this thread performs tees into a private
        counter, so the per-query telemetry exchange reports exact C2
        deltas even with other contexts decrypting concurrently.
        """
        scope = OperationCounter()
        registry, _cloud = self._build_p2_registry(channel)
        tracer = telemetry_tracing.get_tracer()
        steps = telemetry_metrics.get_registry().counter(
            "repro_p2_steps_total",
            "Protocol frames dispatched to P2 step handlers.", ("tag",))
        with counting_scope(scope):
            while not self._stop.is_set():
                try:
                    tag = channel.next_tag()
                except ChannelError:
                    break  # context closed or connection died
                if tag.startswith("telemetry."):
                    # Control frames from C1's telemetry layer: counter-
                    # delta windows and span collection — never routed to
                    # protocol handlers.
                    try:
                        self._handle_peer_telemetry(tag, channel, scope)
                    except ReproError as exc:
                        logger.warning("telemetry frame %s failed: %s",
                                       tag, exc)
                    continue
                handler = registry.get(tag)
                if handler is None:
                    channel.receive("C2")  # consume the unroutable frame
                    try:
                        channel.send(
                            "C2", f"no P2 step registered for tag {tag!r}",
                            tag="transport.error")
                    except ChannelError:
                        break
                    continue
                # The envelope's trace context parents this handler's span
                # under the C1-side span that sent the frame.
                trace_context = channel.next_trace()
                ledger = self._ledger_for(trace_context)
                try:
                    with tracer.remote_span(f"p2.{tag}", trace_context,
                                            party="C2"):
                        if ledger is not None:
                            # Activate per dispatch: C2's idle wait time
                            # between frames never counts.
                            with ledger.activate(), \
                                    telemetry_profiling.cost_scope(
                                        tag.split(".", 1)[0], party="C2"):
                                handler()
                        else:
                            handler()
                    steps.inc(tag=tag)
                except ReproError as exc:
                    logger.warning("P2 step %s failed: %s", tag, exc)
                    # Unblock the C1 driver instead of leaving it waiting
                    # on a reply frame that will never come.
                    try:
                        channel.send("C2",
                                     f"P2 step {tag!r} failed: {exc}",
                                     tag="transport.error")
                    except ChannelError:
                        break  # the peer that caused the failure is gone

    def _ledger_for(self, trace_context: Any
                    ) -> "telemetry_profiling.CostLedger | None":
        """The per-trace cost ledger for a frame's trace context, if open."""
        if not trace_context:
            return None
        with self._trace_ledgers_lock:
            return self._trace_ledgers.get(str(trace_context[0]))

    def _handle_peer_telemetry(self, tag: str, channel: MuxChannel,
                               scope: OperationCounter | None = None) -> None:
        """C2's side of the per-query telemetry exchange.

        ``telemetry.trace_begin`` (payload: trace id) opens the delta
        window for one query by constructing a per-trace
        :class:`~repro.telemetry.profiling.CostLedger`.  With pipelined
        queries the ledger sources the dispatching context's *counting
        scope* — the thread-private counter every P2 handler on this
        worker tees into — so concurrent queries never bleed into each
        other's windows.  ``telemetry.collect`` (payload: trace id)
        closes the window and replies with the counter deltas, every
        finished span of that trace, and the ledger's per-phase cost rows,
        which C1 stitches into its ``SkNNRunReport``.  The counters are
        derived *from* the ledger, so the shipped totals always equal the
        sum of the per-phase rows.
        """
        payload = channel.receive("C2")
        trace_id = str(payload)
        if tag == "telemetry.trace_begin":
            assert self._private_key is not None
            extras = ({"pool_hits": self.engine.pool_hit_total}
                      if self.engine is not None else None)
            sources = ((scope,) if scope is not None else
                       (self._private_key.public_key.counter,
                        self._private_key.counter))
            ledger = telemetry_profiling.CostLedger(
                sources=sources, extras=extras, party="C2")
            with self._trace_ledgers_lock:
                # Bound on windows opened but never collected (a leaky or
                # crashed C1); sized for a deep pipeline of live queries.
                while len(self._trace_ledgers) >= 64:
                    self._trace_ledgers.pop(next(iter(self._trace_ledgers)))
                self._trace_ledgers[trace_id] = ledger
            return
        if tag != "telemetry.collect":
            raise ChannelError(f"unknown telemetry frame {tag!r}")
        with self._trace_ledgers_lock:
            ledger = self._trace_ledgers.pop(trace_id, None)
        counters: dict[str, int] = {}
        cost_rows: list[dict[str, Any]] = []
        if ledger is not None:
            cost_rows = ledger.finish()
            telemetry_profiling.record_phase_metrics(cost_rows)
            totals = ledger.total_ops()
            counters = {op: int(totals.get(op, 0))
                        for op in ("encryptions", "exponentiations",
                                   "homomorphic_additions", "decryptions")}
        spans = [span.as_payload()
                 for span in telemetry_tracing.get_tracer().take(trace_id)]
        channel.send("C2", {"counters": counters, "spans": spans,
                            "cost": cost_rows},
                     tag="telemetry.collect")

    def _build_p2_registry(
        self, channel: MuxChannel
    ) -> tuple[dict[str, Callable[[], Any]], FederatedCloud]:
        """Construct C2's protocol stack over ``channel`` and index its steps."""
        assert self._private_key is not None
        public_key = self._private_key.public_key
        c1_stub = CloudC1(public_key, channel, rng=self._derive_rng())
        c2 = CloudC2(self._private_key, channel, rng=self._derive_rng())
        c2.share_sink = self.mailbox.put
        cloud = FederatedCloud(c1=c1_stub, c2=c2, channel=channel)
        if self.engine is not None:
            cloud.attach_engine(None, self.engine)
        protocols: list[Any] = [
            SkNNBasic(cloud),
            # Shard filing/gather steps rendezvous through the daemon-wide
            # registry, so shards filing on other connections meet the
            # coordinator's gather here.
            ShardScanProtocol(cloud, registry=self._scan_registry),
        ]
        if self.distance_bits is not None:
            protocols.append(SkNNSecure(cloud,
                                        distance_bits=self.distance_bits))
        registry: dict[str, Callable[[], Any]] = {}
        for protocol in protocols:
            registry.update(protocol.collect_p2_handlers())
        return registry, cloud

    def _derive_rng(self) -> Random | None:
        if self.rng is None:
            return None
        # Concurrent contexts derive their stream rngs from the shared
        # provision seed; the lock keeps getrandbits itself race-free.
        with self._rng_lock:
            return Random(self.rng.getrandbits(63))

    # -- client control protocol ----------------------------------------------
    def _serve_client(self, connection: _Connection) -> None:
        while not self._stop.is_set():
            message = self._read_message(connection.sock)
            if message is None:
                break
            try:
                reply = self._handle_control(message)
            except ReproError as exc:
                self._send_error(connection.sock, exc)
                continue
            except (KeyError, TypeError, AttributeError) as exc:
                # A malformed payload (missing field, wrong shape — e.g. a
                # version-skewed client) earns a diagnostic error frame, not
                # a dropped connection.
                self._send_error(connection.sock, ChannelError(
                    f"malformed {message.tag!r} payload: {exc!r}"))
                continue
            self._send_message(connection.sock, message.tag + ".ok", reply)
            if message.tag == "transport.shutdown":
                self._stop.set()
                break

    def _handle_control(self, message: Message) -> Any:
        tag = message.tag
        payload = message.payload
        if tag == "transport.ping":
            return {"role": self.role, "provisioned": self._provisioned(),
                    "uptime_seconds": time.monotonic() - self._started_at,
                    "io_deadline": self.io_deadline}
        if tag == "transport.shutdown":
            logger.info("%s daemon shutting down on client request",
                        self.party_name)
            return {"role": self.role}
        if tag == "transport.provision":
            return self._handle_provision(payload)
        if tag == "transport.stats":
            return self._handle_stats()
        if tag == "transport.metrics":
            registry = telemetry_metrics.get_registry()
            return {"role": self.role,
                    "prometheus": registry.render_prometheus(),
                    "snapshot": registry.snapshot()}
        if tag == "transport.profile":
            seconds = 1.0
            if isinstance(payload, dict) and "seconds" in payload:
                seconds = float(payload["seconds"])
            result = telemetry_profiling.profile_window(
                self.profiler, seconds, max_seconds=30.0)
            result["role"] = self.role
            return result
        if self.role == "c2" and tag == "transport.fetch_share":
            return self.mailbox.fetch(
                payload["delivery_id"],
                timeout=payload.get("timeout", DEFAULT_FETCH_TIMEOUT),
                attempt=payload.get("attempt"))
        if self.role == "c1" and tag == "transport.query":
            # The client's query id keys the replay memo: a retried query
            # whose reply was lost re-reads the completed answer, and a
            # duplicate of an in-flight query waits for the original run
            # instead of double-consuming pool entries and mailbox shares.
            return self._reply_cache.run(
                payload.get("query_id"),
                lambda: self._handle_query(payload),
                timeout=self.io_deadline)
        if self.role == "c1" and tag == "transport.query_batch":
            return self._reply_cache.run(
                payload.get("batch_id"),
                lambda: self._handle_query_batch(payload),
                timeout=self.io_deadline)
        if self.role == "c1" and tag == "transport.scan":
            # Shard daemons: the scan id keys the replay memo, so a
            # coordinator retrying a scatter whose reply was lost gets the
            # memoized result instead of double-filing with C2.
            return self._reply_cache.run(
                payload.get("scan_id"),
                lambda: self._handle_scan(payload),
                timeout=self.io_deadline)
        raise ChannelError(
            f"unsupported control tag {tag!r} for role {self.role!r}")

    def _handle_stats(self) -> dict[str, Any]:
        links = self._peer_connections_snapshot()
        stats: dict[str, Any] = {
            "role": self.role,
            "provisioned": self._provisioned(),
            "pending_shares": len(self.mailbox),
            "inflight_queries": self._inflight_count(),
            "resilience": {
                "uptime_seconds": time.monotonic() - self._started_at,
                "io_deadline": self.io_deadline,
                "reply_cache_entries": len(self._reply_cache),
                "peer_connected": any(link.alive for link in links),
                "events": self._resilience_events(),
            },
        }
        if self.role == "c1":
            stats["peer_connections_target"] = self.peer_connections
        if self.shard_index is not None:
            stats["shard"] = {"index": self.shard_index,
                              "count": self.shard_count,
                              "start_index": self._start_index}
        if self._shard_addresses is not None:
            stats["shards"] = [f"{host}:{port}"
                               for host, port in self._shard_addresses]
        if self.role == "c2":
            stats["pending_scans"] = self._scan_registry.pending()
        if self.state_dir is not None:
            stats["durability"] = {
                "state_dir": str(self.state_dir),
                "fsync": self.state_fsync,
                "mailbox_journal_records": getattr(
                    self.mailbox, "journal_records", 0),
                "reply_journal_records": getattr(
                    self._reply_cache, "journal_records", 0),
                "recovered_shares": getattr(self.mailbox, "recovered", 0),
                "recovered_replies": getattr(
                    self._reply_cache, "recovered", 0),
                "manifest": (self._manifest_path() is not None
                             and self._manifest_path().exists()),
            }
        if self._metrics_server is not None:
            stats["metrics_address"] = self._metrics_server.url
        if self.profiler is not None:
            stats["profiler"] = {
                "running": self.profiler.running,
                "interval": self.profiler.interval,
                "samples": self.profiler.samples,
            }
        if self.engine is not None:
            stats["engine"] = self.engine.stats()
        if links:
            traffic = self._peer_traffic_total(links)
            stats["traffic"] = traffic.snapshot()
            stats["traffic_by_tag"] = traffic.per_tag_snapshot()
            stats["peer_connections"] = [
                dict(link.total_traffic().snapshot(),
                     index=index, alive=link.alive,
                     active_contexts=link.active_contexts())
                for index, link in enumerate(links)]
        slow = self.slow_log.snapshot()
        if slow["total_slow"]:
            stats["slow_queries"] = slow
        return stats

    @staticmethod
    def _resilience_events() -> dict[str, float]:
        """Nonzero totals of this process's resilience counters."""
        families = ("repro_retries_total", "repro_deadline_hits_total",
                    "repro_reconnects_total", "repro_replayed_replies_total",
                    "repro_daemon_restarts_total",
                    "repro_rejected_queries_total",
                    "repro_chaos_faults_total",
                    "repro_journal_records_total",
                    "repro_recovered_deliveries_total",
                    "repro_chunk_retries_total")
        snapshot = telemetry_metrics.get_registry().snapshot()
        events = {}
        for family in families:
            entry = snapshot.get(family)
            if entry:
                total = sum(entry.get("values", {}).values())
                if total:
                    events[family] = total
        return events

    # -- provisioning ---------------------------------------------------------
    def _handle_provision(self, payload: dict[str, Any],
                          from_recovery: bool = False) -> dict[str, Any]:
        """Install a provision payload.

        ``from_recovery`` marks a replay of the persisted manifest at
        startup: the durable caches just replayed their journals, so the
        epoch wipes a *client-initiated* provision performs (reply cache,
        mailbox) are skipped — wiping here would throw away exactly the
        state the restart is trying to recover — and the manifest is not
        re-persisted.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("malformed provision payload")
        seed = payload.get("seed")
        self.rng = Random(seed) if seed is not None else None
        self.distance_bits = payload.get("distance_bits")
        if not from_recovery:
            # New provisioning epoch: replies memoized against the previous
            # table/key must never be replayed to post-provision retries.
            self._reply_cache.clear()
        if self.role == "c2":
            reply = self._provision_c2(payload, from_recovery=from_recovery)
        else:
            reply = self._provision_c1(payload, dial_peer=not from_recovery)
        if not from_recovery:
            self._persist_manifest(payload)
        return reply

    def _provision_c2(self, payload: dict[str, Any],
                      from_recovery: bool = False) -> dict[str, Any]:
        self._private_key = private_key_from_dict(payload["private_key"])
        self.codec.public_key = self._private_key.public_key
        if not from_recovery:
            self.mailbox.clear()  # new provisioning epoch: drop stale shares
        precompute = payload.get("precompute")
        loaded = self._build_engine(
            PrecomputeConfig.for_decryptor_load(**precompute)
            if precompute else None)
        logger.info("C2 provisioned (key %d bits, l=%s)",
                    self.codec.public_key.key_size, self.distance_bits)
        return {"role": "c2", "pool_items_loaded": loaded}

    def _provision_c1(self, payload: dict[str, Any],
                      dial_peer: bool = True) -> dict[str, Any]:
        table = EncryptedTable.from_dict(payload["encrypted_table"])
        host, port = payload["c2_address"]
        shard_index = payload.get("shard_index")
        shard_count = payload.get("shard_count")
        if self.shard_index is not None:
            if (shard_index, shard_count) != (self.shard_index,
                                              self.shard_count):
                raise ConfigurationError(
                    f"provision payload is for shard "
                    f"{shard_index}/{shard_count}, this daemon was started "
                    f"as shard {self.shard_index}/{self.shard_count}")
        elif shard_index is not None:
            raise ConfigurationError(
                "shard provision sent to a C1 daemon started without "
                "--shard-index/--shard-count")
        self.codec.public_key = table.public_key
        self._table = table
        self._c2_address = (host, int(port))
        self._start_index = int(payload.get("start_index", 0))
        shards = payload.get("shards")
        self._shard_addresses = ([(shard_host, int(shard_port))
                                  for shard_host, shard_port in shards]
                                 if shards else None)
        with self._state_lock:
            pool, self._peer_pool = self._peer_pool, None
        if pool is not None:
            pool.close()  # new provisioning epoch: drop the old peer links
        precompute = payload.get("precompute")
        loaded = self._build_engine(
            PrecomputeConfig.for_query_load(**precompute)
            if precompute else None)
        if dial_peer:
            self._ensure_pool().ensure()
        logger.info("C1%s provisioned (%d records, %d dims, peer %s:%d%s%s)",
                    "" if self.shard_index is None
                    else f" shard {self.shard_index}/{self.shard_count}",
                    len(table), table.dimensions, host, port,
                    "" if dial_peer else "; peer dial deferred",
                    "" if not self._shard_addresses
                    else f"; coordinating {len(self._shard_addresses)} shards")
        reply = {"role": "c1", "pool_items_loaded": loaded}
        if self.shard_index is not None:
            reply["shard_index"] = self.shard_index
        if self._shard_addresses is not None:
            reply["shards"] = len(self._shard_addresses)
        return reply

    # -- C1 peer link management ------------------------------------------------
    def _dial_peer_connection(self) -> MuxConnection:
        """Dial C2, complete the cloud-peer hello, start the reader.

        Every failure — refused connection, silence, a rejection frame
        (e.g. a restarted C2 that has not been re-provisioned yet) — maps
        to retriable :class:`PeerUnavailable`: the caller's retry layer
        re-provisions and tries again.
        """
        assert self._c2_address is not None
        host, port = self._c2_address
        try:
            peer_sock = socket.create_connection((host, port), timeout=10)
        except OSError as exc:
            raise PeerUnavailable(
                f"cannot reach C2 at {host}:{port}: {exc}") from exc
        try:
            peer_sock.settimeout(None)
            hello = Message(sender="C1", recipient="C2",
                            tag="transport.hello",
                            payload={"peer": "cloud", "epoch": self.epoch})
            send_frame(peer_sock, self.codec.encode_message(hello),
                       deadline=deadline_at(10.0))
            body = recv_frame(peer_sock, deadline=deadline_at(10.0))
            if body is None or self.codec.decode_message(
                    body).tag != "transport.hello_ok":
                raise PeerUnavailable(
                    f"C2 at {host}:{port} rejected the peer hello")
        except BaseException:
            try:
                peer_sock.close()
            except OSError:
                pass
            raise
        connection = MuxConnection(peer_sock, self.codec, "C1", "C2",
                                   io_deadline=self.io_deadline)
        connection.start_reader()
        return connection

    def _ensure_pool(self) -> PeerPool:
        """The peer connection pool, created on first use."""
        with self._state_lock:
            if self._peer_pool is None:
                if self._table is None:
                    raise ConfigurationError("C1 is not provisioned yet")
                self._peer_pool = PeerPool(self._dial_peer_connection,
                                           size=self.peer_connections,
                                           role=self.role)
            return self._peer_pool

    def _build_query_protocol(self, channel: MuxChannel, mode: str,
                              scatter: Callable[..., Any] | None = None,
                              scan_id: str | None = None) -> Any:
        """A fresh protocol stack for one query over a leased context.

        The heavyweight state (encrypted table, precompute engine, warm
        pools) is shared and thread-safe; only the channel-bound wrappers
        (cloud pair, protocol driver) are built per query, so concurrent
        queries never share mutable protocol state.
        """
        assert self._table is not None
        table = self._table
        c1 = CloudC1(table.public_key, channel, rng=self._derive_rng())
        c1.host_database(table)
        c2_stub = DecryptorParty(
            "C2", RemotePrivateKey(table.public_key), channel,
            rng=self._derive_rng())
        cloud = FederatedCloud(c1=c1, c2=c2_stub, channel=channel)
        if self.engine is not None:
            cloud.attach_engine(self.engine, None)
        if self.shard_index is not None:
            return ShardScanProtocol(cloud, shard_index=self.shard_index,
                                     shard_count=self.shard_count or 1,
                                     start_index=self._start_index)
        if self._shard_addresses is not None:
            if mode != "basic":
                raise ConfigurationError(
                    "sharded deployments serve mode 'basic' only (SkNN_m's "
                    "SMIN_n tournament does not shard across daemons)")
            assert scatter is not None and scan_id is not None
            return ShardCoordinatorProtocol(
                cloud, shard_count=len(self._shard_addresses),
                scatter=scatter, scan_id=scan_id)
        if mode == "basic":
            return SkNNBasic(cloud)
        if mode == "secure":
            if self.distance_bits is None:
                raise ConfigurationError(
                    "mode 'secure' needs distance_bits (provision l)")
            return SkNNSecure(cloud, distance_bits=self.distance_bits)
        raise ConfigurationError(
            f"mode {mode!r} is unavailable on this daemon")

    def _build_engine(self, config: PrecomputeConfig | None) -> int:
        """Build/warm this party's engine; reload the pool cache first."""
        if config is None:
            return 0
        assert self.codec.public_key is not None
        self.engine = PrecomputeEngine(self.codec.public_key,
                                       rng=self._derive_rng(), config=config)
        loaded = 0
        if self.pool_cache is not None and self.pool_cache.exists():
            try:
                loaded = self.engine.load_pools(self.pool_cache)
                logger.info("%s reloaded %d pool items from %s",
                            self.party_name, loaded, self.pool_cache)
            except ConfigurationError as exc:
                logger.warning("ignoring pool cache: %s", exc)
        self.engine.warm()
        return loaded

    # -- query execution (C1) --------------------------------------------------
    def _peer_trace_begin(self, channel: MuxChannel, trace_id: str) -> None:
        """Open C2's counter-delta window for one query.

        Sent *before* ``run_with_report`` constructs its
        :class:`RunStatsRecorder`, so the telemetry frames never count
        toward the query's traffic deltas."""
        channel.send("C1", trace_id, tag="telemetry.trace_begin")

    def _peer_collect(self, channel: MuxChannel,
                      trace_id: str) -> dict[str, Any] | None:
        """Close the window: fetch C2's counter deltas and finished spans."""
        channel.send("C1", trace_id, tag="telemetry.collect")
        reply = channel.receive("C1", expected_tag="telemetry.collect")
        return reply if isinstance(reply, dict) else None

    def _stitch_report(self, report, trace_id: str,
                       remote: dict[str, Any] | None,
                       extra_spans: list[Any] | tuple = ()) -> None:
        """Merge C2's per-query telemetry into C1's run report.

        The recorder on this daemon only sees local counters (the remote
        key's counter is always zero), so the C2 columns of the report are
        filled from the deltas C2 measured over the same query window —
        distributed reports then match a serial run's totals.  The local
        and remote spans (plus any shard daemons' spans) merge into one
        ``report.trace`` timeline.
        """
        spans: list[Any] = list(telemetry_tracing.get_tracer().take(trace_id))
        spans.extend(extra_spans)
        if remote is not None:
            counters = remote.get("counters") or {}
            stats = report.stats
            stats.c2_encryptions += int(counters.get("encryptions", 0))
            stats.c2_exponentiations += int(
                counters.get("exponentiations", 0))
            stats.c2_decryptions += int(counters.get("decryptions", 0))
            additions = int(counters.get("homomorphic_additions", 0))
            if additions:
                stats.extra["c2_homomorphic_additions"] = (
                    stats.extra.get("c2_homomorphic_additions", 0) + additions)
            spans.extend(remote.get("spans") or [])
            # C2's per-phase cost rows join C1's.  Their seconds measure
            # C2's busy time, which overlaps C1's wait time — only the C1
            # rows sum to the report's wall clock.
            report.cost_breakdown.extend(remote.get("cost") or [])
        report.trace = telemetry_tracing.trace_payload(trace_id, spans)

    def _stitch_shards(self, report, shard_replies: list[Any]) -> None:
        """Merge the shard daemons' per-scan telemetry into the report.

        Each shard's C1 counters and peer traffic join the report's C1
        columns (the coordinator's own recorder never saw them); the
        shards' cost rows ride along under ``party="C1-shard{i}"`` — and
        the per-shard C2 windows under ``party="C2"`` — so only the
        coordinator's own C1 rows are expected to sum to wall time.
        """
        stats = report.stats
        for reply in shard_replies:
            if not isinstance(reply, dict):
                continue
            self._stitch_shard_stats(stats, reply)
            report.cost_breakdown.extend(reply.get("cost") or [])
            remote = reply.get("c2") or {}
            report.cost_breakdown.extend(remote.get("cost") or [])
            records = reply.get("records_scanned")
            if records is not None:
                stats.extra["shard_records_scanned"] = (
                    stats.extra.get("shard_records_scanned", 0)
                    + int(records))

    @staticmethod
    def _stitch_shard_stats(stats, reply: dict[str, Any]) -> None:
        """Add one shard scan's counters and traffic to a stats object."""
        c1 = reply.get("c1_counters") or {}
        stats.c1_encryptions += int(c1.get("encryptions", 0))
        stats.c1_exponentiations += int(c1.get("exponentiations", 0))
        stats.c1_homomorphic_additions += int(
            c1.get("homomorphic_additions", 0))
        traffic = reply.get("traffic") or {}
        stats.messages += int(traffic.get("messages", 0))
        stats.ciphertexts_exchanged += int(traffic.get("ciphertexts", 0))
        stats.bytes_transferred += int(traffic.get("bytes_transferred", 0))
        remote = reply.get("c2") or {}
        counters = remote.get("counters") or {}
        stats.c2_encryptions += int(counters.get("encryptions", 0))
        stats.c2_exponentiations += int(counters.get("exponentiations", 0))
        stats.c2_decryptions += int(counters.get("decryptions", 0))

    def _peer_failure(self, channel: MuxChannel,
                      exc: ChannelError) -> ChannelError:
        """Convert a mid-query channel failure into a retriable error.

        A context-level failure (receive deadline, context torn down)
        poisons only this query's channel; the shared connection keeps
        carrying the other in-flight queries.  A connection-level failure
        additionally discards the dead connection from the pool, so the
        next lease re-dials instead of reusing a desynchronised socket.
        """
        pool = self._peer_pool
        if pool is not None and not channel.connection.alive:
            pool.discard(channel.connection)
        if isinstance(exc, (PeerUnavailable, DeadlineExceeded)):
            return exc
        return PeerUnavailable(f"peer link to C2 failed mid-query: {exc}")

    def _scatter_to_shards(self, scan_id: str, query: list[Ciphertext],
                           k: int) -> list[dict[str, Any]]:
        """Fan the distance scan out to every shard daemon, in parallel.

        Each shard is asked over its own short-lived control connection (a
        per-query client: the control protocol is request/reply, so a
        shared client would serialize concurrent queries).  The first
        failure wins: a dead shard daemon surfaces as the typed retriable
        error its client raised, failing only this query.
        """
        from repro.transport.client import DaemonClient

        addresses = self._shard_addresses or []
        replies: list[dict[str, Any] | None] = [None] * len(addresses)
        failures: list[BaseException] = []

        def run(index: int, address: tuple[str, int]) -> None:
            try:
                client = DaemonClient(address, self.codec,
                                      connect_timeout=10.0,
                                      request_deadline=self.io_deadline)
                try:
                    replies[index] = client.request(
                        "transport.scan",
                        {"scan_id": scan_id, "query": query, "k": k},
                        timeout=self.io_deadline)
                finally:
                    client.close()
            except BaseException as exc:  # re-raised on the query thread
                failures.append(exc)

        threads = [threading.Thread(target=run, args=(index, address),
                                    name=f"sknn-scatter-{index}", daemon=True)
                   for index, address in enumerate(addresses)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            failure = failures[0]
            if isinstance(failure, ReproError):
                raise failure
            raise PeerUnavailable(
                f"shard scatter failed: {failure}") from failure
        return [reply for reply in replies if isinstance(reply, dict)]

    def _handle_scan(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Shard daemon: run this slice's distance phase for one scan.

        The reply bundles everything the coordinator needs to stitch a
        complete report: this shard's exact C1 counter deltas (thread
        scope), its peer-link traffic, its cost rows
        (``party="C1-shard{i}"``), the C2 window its scan consumed, and
        its spans.
        """
        if self.shard_index is None:
            raise ConfigurationError(
                "transport.scan is only served by shard daemons "
                "(start with --shard-index/--shard-count)")
        query: list[Ciphertext] = payload["query"]
        k: int = payload["k"]
        scan_id = str(payload["scan_id"])
        scope = OperationCounter()
        ledger = telemetry_profiling.CostLedger(
            sources=(scope,), party=f"C1-shard{self.shard_index}")
        self._track_inflight(1)
        try:
            with counting_scope(scope):
                channel = self._ensure_pool().lease()
                try:
                    with telemetry_tracing.trace(
                            f"shard{self.shard_index}.scan",
                            party=self.party_name, scan=scan_id) as root:
                        trace_id = root.trace_id
                        self._peer_trace_begin(channel, trace_id)
                        # The leased context is exclusively this scan's:
                        # resetting after the telemetry frame makes its
                        # totals exactly the scan's protocol traffic.
                        channel.reset_accounting()
                        protocol = self._build_query_protocol(channel,
                                                              "basic")
                        started = time.perf_counter()
                        with ledger.activate():
                            records = protocol.run_scan(query, k, scan_id)
                        elapsed = time.perf_counter() - started
                        traffic = channel.total_traffic().snapshot()
                    remote = self._peer_collect(channel, trace_id)
                except ChannelError as exc:
                    raise self._peer_failure(channel, exc) from exc
                finally:
                    channel.release()
        finally:
            self._track_inflight(-1)
        spans = [span.as_payload()
                 for span in telemetry_tracing.get_tracer().take(trace_id)]
        self.slow_log.observe(elapsed, protocol="SkNNb-shard",
                              trace_id=trace_id, scan_id=scan_id)
        return {
            "scan_id": scan_id,
            "shard_index": self.shard_index,
            "records_scanned": records,
            "wall_time_seconds": elapsed,
            "c1_counters": scope.snapshot(),
            "traffic": traffic,
            "c2": remote,
            "cost": ledger.finish(),
            "spans": spans,
        }

    def _handle_query(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Run one query on a freshly leased peer context.

        No query lock: every query leases its own context channel from
        the pool and builds its own protocol stack, so N in-flight
        queries pipeline over the shared connections.  The counting scope
        makes this thread's Paillier operations (and, through its own
        scoped window, C2's) attributable to exactly this query no matter
        how many others are concurrently in flight.
        """
        if self.shard_index is not None:
            raise ConfigurationError(
                "shard daemons serve transport.scan only; send queries to "
                "the coordinator C1")
        query: list[Ciphertext] = payload["query"]
        k: int = payload["k"]
        mode = payload.get("mode", "basic")
        scan_id = uuid.uuid4().hex
        shard_replies: list[dict[str, Any]] = []

        def scatter(sid: str, shard_query: list[Ciphertext],
                    shard_k: int) -> None:
            shard_replies.extend(
                self._scatter_to_shards(sid, shard_query, shard_k))

        scope = OperationCounter()
        self._track_inflight(1)
        try:
            with counting_scope(scope):
                channel = self._ensure_pool().lease()
                try:
                    protocol = self._build_query_protocol(
                        channel, mode, scatter=scatter, scan_id=scan_id)
                    # Root the trace here (run_with_report joins it) so
                    # the daemon can stitch C2's spans and counter deltas
                    # into the report.
                    with telemetry_tracing.trace(f"query.{protocol.name}",
                                                 party="C1", k=k) as root:
                        trace_id = root.trace_id
                        self._peer_trace_begin(channel, trace_id)
                        shares = protocol.run_with_report(
                            query, k, distance_bits=self.distance_bits)
                    report = protocol.last_report
                    remote = self._peer_collect(channel, trace_id)
                except ChannelError as exc:
                    raise self._peer_failure(channel, exc) from exc
                finally:
                    channel.release()
        finally:
            self._track_inflight(-1)
        if report is not None:
            shard_spans = [span for reply in shard_replies
                           for span in (reply.get("spans") or [])]
            self._stitch_report(report, trace_id, remote,
                                extra_spans=shard_spans)
            self._stitch_shards(report, shard_replies)
            self.slow_log.observe(report.wall_time_seconds,
                                  protocol=protocol.name,
                                  trace_id=trace_id, k=k)
        return {
            "masks": shares.masks_from_c1,
            "modulus": shares.modulus,
            "delivery_id": shares.delivery_id,
            "report": report.as_payload() if report is not None else None,
        }

    def _handle_query_batch(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve a scheduler batch over one leased context.

        The batch's queries run back-to-back on a single context — the
        batch semantics a distributed
        :class:`~repro.service.scheduler.QueryServer` expects — while
        other pipelined queries keep flowing on sibling contexts.
        """
        from repro.core.sknn_base import RunStatsRecorder

        if self.shard_index is not None:
            raise ConfigurationError(
                "shard daemons serve transport.scan only; send batches to "
                "the coordinator C1")
        queries = payload["queries"]
        ks = payload["ks"]
        if len(queries) != len(ks):
            raise ConfigurationError("batch queries and ks differ in length")
        mode = payload.get("mode", "basic")
        shard_replies: list[dict[str, Any]] = []

        def scatter(sid: str, shard_query: list[Ciphertext],
                    shard_k: int) -> None:
            shard_replies.extend(
                self._scatter_to_shards(sid, shard_query, shard_k))

        results = []
        scope = OperationCounter()
        self._track_inflight(1)
        try:
            with counting_scope(scope):
                channel = self._ensure_pool().lease()
                try:
                    protocol = self._build_query_protocol(
                        channel, mode, scatter=scatter,
                        scan_id=uuid.uuid4().hex)
                    with telemetry_tracing.trace(
                            f"batch.{protocol.name}", party="C1",
                            queries=len(queries)) as root:
                        trace_id = root.trace_id
                        self._peer_trace_begin(channel, trace_id)
                        recorder = RunStatsRecorder(protocol.cloud)
                        started = time.perf_counter()
                        for index, (query, k) in enumerate(
                                zip(queries, ks)):
                            if index and self._shard_addresses is not None:
                                # A coordinator protocol is bound to one
                                # scan id; mint a fresh one per query.
                                protocol = self._build_query_protocol(
                                    channel, mode, scatter=scatter,
                                    scan_id=uuid.uuid4().hex)
                            shares = protocol.run(query, k)
                            results.append({
                                "masks": shares.masks_from_c1,
                                "delivery_id": shares.delivery_id,
                            })
                        elapsed = time.perf_counter() - started
                        stats = recorder.finish(
                            f"{protocol.name}-distributed", elapsed)
                    remote = self._peer_collect(channel, trace_id)
                except ChannelError as exc:
                    raise self._peer_failure(channel, exc) from exc
                finally:
                    channel.release()
        finally:
            self._track_inflight(-1)
        spans: list[Any] = list(
            telemetry_tracing.get_tracer().take(trace_id))
        if remote is not None:
            counters = remote.get("counters") or {}
            stats.c2_encryptions += int(counters.get("encryptions", 0))
            stats.c2_exponentiations += int(
                counters.get("exponentiations", 0))
            stats.c2_decryptions += int(counters.get("decryptions", 0))
            spans.extend(remote.get("spans") or [])
        for reply in shard_replies:
            if isinstance(reply, dict):
                self._stitch_shard_stats(stats, reply)
                spans.extend(reply.get("spans") or [])
        self.slow_log.observe(elapsed, protocol=f"{protocol.name}-batch",
                              trace_id=trace_id, queries=len(queries))
        return {
            "results": results,
            "modulus": self.codec.public_key.n,
            "stats": stats.as_payload(),
            "wall_time_seconds": elapsed,
            "trace": telemetry_tracing.trace_payload(trace_id, spans),
        }
