"""``TcpChannel`` — the ``DuplexChannel`` interface over a connected socket.

One :class:`TcpChannel` lives in each party's process and is bound to that
party's *local role* (``"C1"`` in the C1 daemon, ``"C2"`` in the C2 daemon).
It implements the same ``send``/``receive``/``pending``/accounting surface as
the in-memory :class:`~repro.network.channel.DuplexChannel`, so the protocol
stack (``protocols/*``, ``core/*``, ``service/*``) runs over sockets
unchanged.  The differences protocol code can observe:

* ``runs_both_parties`` is ``False`` — protocol drivers skip the inline
  execution of the remote party's steps (the remote daemon runs them when
  the corresponding frame arrives);
* only the local role may call ``send``/``receive``; the opposite endpoint
  is another OS process;
* traffic statistics count the *actual framed bytes* on the wire, in both
  directions (outbound under the local role, inbound under the remote one).

Framing or decoding failures surface as
:class:`~repro.exceptions.ChannelError`, exactly like in-memory misuse.
"""

from __future__ import annotations

import socket
import threading
from collections import deque

from repro.exceptions import ChannelError, DeadlineExceeded, PeerUnavailable
from repro.network.channel import Message, _ambient_trace_context, _count_payload
from repro.network.stats import TrafficStats
from repro.telemetry import metrics as _metrics
from repro.transport.framing import (
    FRAME_HEADER_BYTES,
    deadline_at,
    recv_frame,
    send_frame,
)
from repro.transport.wire import WireCodec

__all__ = ["TcpChannel"]


class TcpChannel:
    """Bidirectional framed channel over one connected TCP socket."""

    #: the remote endpoint is a separate OS process — see
    #: :class:`~repro.network.channel.DuplexChannel.runs_both_parties`.
    runs_both_parties = False

    def __init__(self, sock: socket.socket, codec: WireCodec,
                 local_role: str, remote_role: str,
                 record_transcript: bool = False,
                 io_deadline: float | None = None) -> None:
        """Wrap a connected socket as a protocol channel.

        Args:
            sock: the connected stream socket to the opposite party.
            codec: wire codec (its public key may be provisioned later).
            local_role: the endpoint living in this process (``"C1"``/…).
            remote_role: the endpoint at the other end of the socket.
            record_transcript: keep every message in :attr:`transcript`
                (tests/debugging only — unbounded memory on a daemon).
            io_deadline: bound (seconds) on every *mid-protocol* blocking
                operation: a ``receive`` awaiting the peer's reply and a
                ``send`` into a wedged peer both raise
                :class:`~repro.exceptions.DeadlineExceeded` after this long
                instead of hanging the protocol thread.  ``None`` keeps the
                pre-resilience unbounded behaviour.  Idle dispatch waits
                (:meth:`next_tag`) are *not* bounded — waiting for the next
                query is legitimate idleness, and shutdown unblocks it by
                closing the socket.
        """
        self._sock = sock
        self._codec = codec
        self.io_deadline = io_deadline
        self.local_role = local_role
        self.remote_role = remote_role
        # Mirror DuplexChannel's endpoint naming (C1 is endpoint_a there).
        self.endpoint_a, self.endpoint_b = sorted((local_role, remote_role))
        self._inbox: deque[Message] = deque()
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self.traffic: dict[str, TrafficStats] = {
            local_role: TrafficStats(),
            remote_role: TrafficStats(),
        }
        #: kept for interface parity with the in-memory channel (a TCP link
        #: has real latency; nothing is simulated here).
        self.simulated_delay_seconds = 0.0
        self.record_transcript = record_transcript
        self.transcript: list[Message] = []

    # -- primary API ----------------------------------------------------------
    def send(self, sender: str, payload: object, tag: str = "") -> None:
        """Send ``payload`` from the local role to the remote process."""
        if sender != self.local_role:
            raise ChannelError(
                f"cannot send as {sender!r}: this process is {self.local_role!r}")
        message = Message(sender=sender, recipient=self.remote_role,
                          tag=tag, payload=payload,
                          trace=_ambient_trace_context())
        body = self._codec.encode_message(message)
        with self._send_lock:
            try:
                sent = send_frame(self._sock, body,
                                  deadline=deadline_at(self.io_deadline))
            except DeadlineExceeded:
                self._count_deadline_hit("send")
                raise
        ciphertexts, plaintexts = _count_payload(payload)
        self.traffic[sender].record(ciphertexts, plaintexts, sent, tag=tag)
        if self.record_transcript:
            self.transcript.append(message)

    def receive(self, recipient: str, expected_tag: str | None = None) -> object:
        """Receive the next message addressed to the local role."""
        if recipient != self.local_role:
            raise ChannelError(
                f"cannot receive as {recipient!r}: this process is "
                f"{self.local_role!r}")
        # A mid-protocol wait for the peer's next frame is bounded by the
        # channel's io deadline; only idle dispatch waits are unbounded.
        message = self._next_message(deadline=deadline_at(self.io_deadline))
        if message.tag == "transport.error":
            # The remote party failed mid-protocol and told us why instead
            # of leaving this side blocked on a frame that will never come.
            raise ChannelError(f"remote {self.remote_role} reported: "
                               f"{message.payload}")
        if expected_tag is not None and message.tag != expected_tag:
            raise ChannelError(
                f"expected message tagged {expected_tag!r} but got "
                f"{message.tag!r}")
        return message.payload

    def pending(self, recipient: str) -> int:
        """Messages already read off the socket but not yet consumed."""
        if recipient != self.local_role:
            raise ChannelError(
                f"unknown local endpoint {recipient!r} (this process is "
                f"{self.local_role!r})")
        return len(self._inbox)

    # -- daemon dispatch support ----------------------------------------------
    def next_tag(self, timeout: float | None = None) -> str:
        """Block for the next incoming message and return its tag.

        The message stays queued: the handler selected by the tag consumes
        it through the normal ``receive`` path.  This is what a daemon's
        dispatch loop uses to route frames to protocol step handlers.
        Waiting here is idleness, not a stuck protocol, so it is unbounded
        by default; pass ``timeout`` (seconds) to bound it explicitly.
        """
        if not self._inbox:
            self._inbox.append(self._read_message(deadline_at(timeout)))
        return self._inbox[0].tag

    def next_trace(self) -> tuple[str, str] | None:
        """The trace context of the queued head message (``None`` when the
        sender had no active trace).  Only valid right after ``next_tag``."""
        return self._inbox[0].trace if self._inbox else None

    def _next_message(self, deadline: float | None = None) -> Message:
        if self._inbox:
            return self._inbox.popleft()
        return self._read_message(deadline)

    def _count_deadline_hit(self, direction: str) -> None:
        _metrics.get_registry().counter(
            "repro_deadline_hits_total",
            "Blocking channel operations that hit their deadline.",
            ("role", "direction")).inc(role=self.local_role,
                                       direction=direction)

    def _read_message(self, deadline: float | None = None) -> Message:
        try:
            with self._recv_lock:
                body = recv_frame(self._sock, deadline=deadline)
        except DeadlineExceeded:
            self._count_deadline_hit("receive")
            raise
        if body is None:
            raise PeerUnavailable(
                f"connection to {self.remote_role} closed")
        message = self._codec.decode_message(body)
        ciphertexts, plaintexts = _count_payload(message.payload)
        self.traffic[self.remote_role].record(
            ciphertexts, plaintexts, FRAME_HEADER_BYTES + len(body),
            tag=message.tag)
        if self.record_transcript:
            self.transcript.append(message)
        return message

    # -- accounting -----------------------------------------------------------
    def total_traffic(self) -> TrafficStats:
        """Aggregate traffic over both directions."""
        return self.traffic[self.local_role].merged_with(
            self.traffic[self.remote_role])

    def reset_accounting(self) -> None:
        """Clear traffic statistics and the transcript."""
        for stats in self.traffic.values():
            stats.reset()
        self.simulated_delay_seconds = 0.0
        self.transcript.clear()

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"TcpChannel(local={self.local_role!r}, "
                f"remote={self.remote_role!r})")
