"""Length-prefixed frames over a stream socket.

The distributed runtime exchanges discrete messages over TCP, which is a byte
stream; framing restores the message boundaries.  A frame is::

    +----------------+---------------------+
    | length (4B BE) |  body (length bytes) |
    +----------------+---------------------+

The 4-byte big-endian length counts only the body.  The body is the wire
codec's JSON encoding of one :class:`~repro.network.channel.Message` (see
:mod:`repro.transport.wire`).  Every framing failure — truncated stream,
oversized frame, connection reset — surfaces as
:class:`~repro.exceptions.ChannelError`, the same error class the in-memory
channel uses for misuse, so protocol code handles both transports uniformly.
"""

from __future__ import annotations

import socket
import struct

from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.exceptions import ChannelError

__all__ = ["FRAME_HEADER_BYTES", "MAX_FRAME_BYTES", "send_frame", "recv_frame"]

#: refuse frames larger than this (a corrupt length prefix would otherwise
#: make the receiver try to allocate gigabytes); large enough for a whole
#: encrypted table at 2048-bit keys.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


def send_frame(sock: socket.socket, body: bytes) -> int:
    """Write one frame; returns the total bytes put on the wire."""
    if len(body) > MAX_FRAME_BYTES:
        raise ChannelError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})")
    try:
        sock.sendall(_HEADER.pack(len(body)) + body)
    except OSError as exc:
        raise ChannelError(f"send failed: {exc}") from exc
    return FRAME_HEADER_BYTES + len(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise ChannelError(f"receive failed: {exc}") from exc
        if not chunk:
            if not chunks:
                return None
            raise ChannelError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one frame body; ``None`` when the peer closed cleanly.

    A clean close is EOF exactly on a frame boundary; EOF anywhere else is a
    truncated stream and raises :class:`~repro.exceptions.ChannelError`.
    """
    header = _recv_exact(sock, FRAME_HEADER_BYTES)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ChannelError(
            f"incoming frame claims {length} bytes (limit {MAX_FRAME_BYTES}); "
            "stream is corrupt or the peer is not speaking the repro protocol")
    if length == 0:
        return b""
    body = _recv_exact(sock, length)
    if body is None:
        raise ChannelError("connection closed between frame header and body")
    return body
