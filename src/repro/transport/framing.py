"""Length-prefixed frames over a stream socket.

The distributed runtime exchanges discrete messages over TCP, which is a byte
stream; framing restores the message boundaries.  A frame is::

    +----------------+---------------------+
    | length (4B BE) |  body (length bytes) |
    +----------------+---------------------+

The 4-byte big-endian length counts only the body.  The body is the wire
codec's JSON encoding of one :class:`~repro.network.channel.Message` (see
:mod:`repro.transport.wire`).  Every framing failure — truncated stream,
oversized frame, connection reset — surfaces as
:class:`~repro.exceptions.ChannelError`, the same error class the in-memory
channel uses for misuse, so protocol code handles both transports uniformly.
Failures are *typed* within that class: socket-level unreachability raises
:class:`~repro.exceptions.PeerUnavailable` and a blown deadline raises
:class:`~repro.exceptions.DeadlineExceeded`, both retriable.

Both :func:`send_frame` and :func:`recv_frame` accept an optional
``deadline`` — an **absolute** :func:`time.monotonic` timestamp, not a
per-call timeout — so a multi-read operation (header, then body, possibly in
chunks) shares one overall bound and can never block past it.
"""

from __future__ import annotations

import socket
import struct
import time

from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.exceptions import ChannelError, DeadlineExceeded, PeerUnavailable

__all__ = ["FRAME_HEADER_BYTES", "MAX_FRAME_BYTES", "send_frame", "recv_frame",
           "deadline_at"]

#: refuse frames larger than this (a corrupt length prefix would otherwise
#: make the receiver try to allocate gigabytes); large enough for a whole
#: encrypted table at 2048-bit keys.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


def deadline_at(timeout: float | None) -> float | None:
    """Absolute monotonic deadline ``timeout`` seconds from now."""
    return None if timeout is None else time.monotonic() + timeout


def _arm(sock: socket.socket, deadline: float | None,
         operation: str) -> None:
    """Set the socket timeout to the time left until ``deadline``."""
    if deadline is None:
        return
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        raise DeadlineExceeded(f"{operation} deadline exceeded")
    sock.settimeout(remaining)


def _disarm(sock: socket.socket) -> None:
    try:
        sock.settimeout(None)
    except OSError:
        pass  # socket already closed; the operation's error wins


def send_frame(sock: socket.socket, body: bytes,
               deadline: float | None = None) -> int:
    """Write one frame; returns the total bytes put on the wire.

    ``deadline`` (absolute monotonic time) bounds how long a send may block
    on a wedged peer whose receive window is full.
    """
    if len(body) > MAX_FRAME_BYTES:
        raise ChannelError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})")
    try:
        _arm(sock, deadline, "send")
        sock.sendall(_HEADER.pack(len(body)) + body)
    except socket.timeout as exc:
        raise DeadlineExceeded(
            "send blocked past its deadline (peer not draining)") from exc
    except OSError as exc:
        raise PeerUnavailable(f"send failed: {exc}") from exc
    finally:
        if deadline is not None:
            _disarm(sock)
    return FRAME_HEADER_BYTES + len(body)


def _recv_exact(sock: socket.socket, count: int,
                deadline: float | None) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            _arm(sock, deadline, "receive")
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise DeadlineExceeded(
                f"no frame within the deadline ({count - remaining} of "
                f"{count} bytes read)") from exc
        except OSError as exc:
            raise PeerUnavailable(f"receive failed: {exc}") from exc
        if not chunk:
            if not chunks:
                return None
            raise ChannelError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               deadline: float | None = None) -> bytes | None:
    """Read one frame body; ``None`` when the peer closed cleanly.

    A clean close is EOF exactly on a frame boundary; EOF anywhere else is a
    truncated stream and raises :class:`~repro.exceptions.ChannelError`.
    ``deadline`` (absolute monotonic time) bounds the whole read — header
    and body together; a silent peer raises
    :class:`~repro.exceptions.DeadlineExceeded` instead of hanging the
    thread forever.
    """
    try:
        header = _recv_exact(sock, FRAME_HEADER_BYTES, deadline)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(
                f"incoming frame claims {length} bytes "
                f"(limit {MAX_FRAME_BYTES}); stream is corrupt or the peer "
                f"is not speaking the repro protocol")
        if length == 0:
            return b""
        body = _recv_exact(sock, length, deadline)
        if body is None:
            raise ChannelError(
                "connection closed between frame header and body")
        return body
    finally:
        if deadline is not None:
            _disarm(sock)
