"""Local supervisor: spawn a C1+C2 daemon pair as real OS processes.

Tests, examples and ``SkNNSystem`` ``mode="distributed"`` use this to stand
up the distributed runtime on one machine: two ``repro party`` subprocesses
listening on ephemeral localhost ports (discovered through port files), a
provisioning step that ships the secret key to C2 and the encrypted table to
C1, and a hardened shutdown path (graceful ``transport.shutdown`` request,
then SIGTERM, then SIGKILL) that never leaks child processes — each daemon
additionally installs its own SIGTERM/atexit cleanup, so even a supervisor
crash leaves no orphaned listeners.

Resilience duties on top of process management:

* every (re)start is **health-gated** — ports being bound is not enough;
  :func:`~repro.resilience.health.wait_until_healthy` proves the daemon
  answers its control plane before anyone is handed its address;
* :meth:`restart_role` respawns a single crashed/killed daemon **on its
  previous port** (``SO_REUSEADDR`` makes the rebind immediate), so peer
  daemons and clients reconnect to the address they already hold;
* a restarted daemon reloads its ``--pool-cache``, so the warm precompute
  pools survive the crash;
* an optional monitor thread (:meth:`start_monitor`) auto-restarts daemons
  that die, counting ``repro_daemon_restarts_total`` either way.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.core.roles import DataOwner
from repro.exceptions import ConfigurationError, DeadlineExceeded
from repro.resilience.health import wait_until_healthy
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.client import RemoteCloud

__all__ = ["LocalSupervisor"]

_START_TIMEOUT = 30.0


class LocalSupervisor:
    """Owns two party-daemon subprocesses and their scratch directory.

    Usage::

        with LocalSupervisor() as supervisor:
            remote = supervisor.provision_from_owner(owner, distance_bits=l)
            shares, report = remote.query(encrypted_query, k=2, mode="secure")

    Args:
        pool_cache: give each daemon a ``--pool-cache`` file inside the
            scratch directory (or, when a path is supplied, inside it) so a
            restarted pair starts hot.
        metrics: start each daemon with ``--metrics-listen 127.0.0.1:0``
            (an ephemeral Prometheus/stats HTTP listener, discoverable via
            ``transport.stats`` → ``metrics_address``).
        profile: start each daemon with ``--profile`` (the always-on
            sampling profiler; scrape collapsed stacks at ``/profile`` on
            the metrics listener or via ``transport.profile``).
        python: interpreter for the subprocesses (defaults to this one).
        io_deadline: forwarded to each daemon as ``--io-deadline`` (bound
            on mid-protocol peer-channel operations); ``None`` keeps the
            daemon default.
        state_dir: give each daemon a ``--state-dir`` (a per-role
            subdirectory of the scratch dir, or of the supplied path) so
            mailbox/reply journals and the provision manifest survive a
            crash — a restarted role then serves fetch/replay traffic
            without re-provisioning.
        shards: additionally spawn this many C1 *shard daemons* (logical
            names ``c1-shard0`` … ``c1-shardN-1``, started with ``--role c1
            --shard-index i --shard-count N``); :meth:`connect` then hands
            out shard-aware clients whose :meth:`RemoteCloud.provision`
            slices the table across them.
        peer_connections: forwarded to every C1-role daemon as
            ``--peer-connections`` (size of its pipelined C1↔C2 connection
            pool); ``None`` keeps the daemon default of 1.
    """

    def __init__(self, pool_cache: bool | str | Path = False,
                 metrics: bool = False,
                 python: str | None = None,
                 io_deadline: float | None = None,
                 state_dir: bool | str | Path = False,
                 profile: bool = False,
                 shards: int = 0,
                 peer_connections: int | None = None) -> None:
        self._python = python or sys.executable
        self._pool_cache = pool_cache
        self._metrics = metrics
        self._profile = profile
        self._io_deadline = io_deadline
        self._state_dir = state_dir
        self.shard_count = int(shards)
        self._peer_connections = peer_connections
        self._tempdir: tempfile.TemporaryDirectory | None = None
        self._processes: dict[str, subprocess.Popen] = {}
        self.addresses: dict[str, tuple[str, int]] = {}
        self._remote: RemoteCloud | None = None
        self._monitor_thread: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._restart_lock = threading.Lock()
        self.restarts: dict[str, int] = {name: 0
                                         for name in self.role_names()}

    def role_names(self) -> list[str]:
        """Every logical daemon this supervisor owns, in start order.

        C2 first (the party C1 peers dial), then the shard daemons, then
        the coordinator C1.  Logical names key ``addresses``, ``restarts``,
        port/log/state files and :meth:`restart_role`.
        """
        return (["c2"]
                + [f"c1-shard{index}" for index in range(self.shard_count)]
                + ["c1"])

    def _role_args(self, name: str) -> list[str]:
        """CLI arguments that turn a logical name into a daemon role."""
        if name == "c2":
            return ["--role", "c2"]
        args = ["--role", "c1"]
        if name.startswith("c1-shard"):
            args += ["--shard-index", name[len("c1-shard"):],
                     "--shard-count", str(self.shard_count)]
        if self._peer_connections is not None:
            args += ["--peer-connections", str(self._peer_connections)]
        return args

    # -- lifecycle ------------------------------------------------------------
    def _scratch(self) -> Path:
        assert self._tempdir is not None
        return Path(self._tempdir.name)

    def _cache_dir(self) -> Path:
        if isinstance(self._pool_cache, (str, Path)):
            cache_dir = Path(self._pool_cache)
            cache_dir.mkdir(parents=True, exist_ok=True)
            return cache_dir
        return self._scratch()

    def _role_state_dir(self, role: str) -> Path:
        base = (Path(self._state_dir)
                if isinstance(self._state_dir, (str, Path))
                else self._scratch() / "state")
        state = base / role
        state.mkdir(parents=True, exist_ok=True)
        return state

    def _spawn(self, role: str, listen: str) -> None:
        """Start one daemon process; the caller waits for port + health."""
        scratch = self._scratch()
        port_file = scratch / f"{role}.port"
        log_file = scratch / f"{role}.log"
        # A stale port file would satisfy the wait loop instantly with the
        # *previous* incarnation's line; remove it before spawning.
        port_file.unlink(missing_ok=True)
        command = [
            self._python, "-m", "repro", "party",
            *self._role_args(role),
            "--listen", listen,
            "--port-file", str(port_file),
        ]
        if self._pool_cache:
            command += ["--pool-cache",
                        str(self._cache_dir() / f"{role}.pools")]
        if self._state_dir:
            command += ["--state-dir", str(self._role_state_dir(role))]
        if self._metrics:
            command += ["--metrics-listen", "127.0.0.1:0"]
        if self._profile:
            command += ["--profile"]
        if self._io_deadline is not None:
            command += ["--io-deadline", str(self._io_deadline)]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [path for path in sys.path if path])
        with open(log_file, "ab") as log:
            process = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT,
                env=environment)
        self._processes[role] = process

    def start(self) -> "LocalSupervisor":
        """Spawn every daemon and wait until each is accepting connections
        *and* answering its control plane (hello + ping)."""
        if self._processes:
            return self
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-transport-")
        for role in self.role_names():
            self._spawn(role, "127.0.0.1:0")
            self.addresses[role] = self._wait_for_port(
                role, self._scratch() / f"{role}.port")
            wait_until_healthy(self.addresses[role], timeout=_START_TIMEOUT)
        return self

    def _wait_for_port(self, role: str, port_file: Path) -> tuple[str, int]:
        deadline = time.monotonic() + _START_TIMEOUT
        process = self._processes[role]
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise ConfigurationError(
                    f"{role} daemon exited with code {process.returncode} "
                    f"during startup:\n{self._tail_log(role)}")
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    host, port = text.split()
                    return host, int(port)
            time.sleep(0.02)
        raise ConfigurationError(
            f"{role} daemon did not start within {_START_TIMEOUT:.0f}s:\n"
            f"{self._tail_log(role)}")

    def _tail_log(self, role: str) -> str:
        if self._tempdir is None:
            return ""
        log_file = Path(self._tempdir.name) / f"{role}.log"
        if not log_file.exists():
            return "(no log output)"
        return log_file.read_text()[-2000:]

    def restart(self) -> "LocalSupervisor":
        """Stop both daemons and start a fresh, *health-checked* pair (pool
        caches survive when the supervisor was created with a persistent
        ``pool_cache`` path)."""
        pool_cache = self._pool_cache
        self.shutdown()
        self._pool_cache = pool_cache
        self._processes = {}
        self.addresses = {}
        return self.start()

    # -- single-role crash recovery -------------------------------------------
    def kill(self, role: str) -> None:
        """SIGKILL one daemon (chaos testing: an abrupt crash, no cleanup)."""
        process = self._processes.get(role)
        if process is None:
            raise ConfigurationError(f"no {role!r} daemon to kill")
        process.kill()
        process.wait()
        # The dead daemon's port file is now a lie: a health probe (or the
        # port-wait loop of a concurrent restart) reading it would bind to
        # the previous incarnation's line.  Remove it with the process.
        if self._tempdir is not None:
            (self._scratch() / f"{role}.port").unlink(missing_ok=True)

    def restart_role(self, role: str,
                     timeout: float = _START_TIMEOUT) -> tuple[str, int]:
        """Respawn one daemon **on its previous port** and gate on health.

        The stable address is what makes single-role recovery transparent:
        clients and the peer daemon reconnect to the ``(host, port)`` they
        already hold.  The daemon's listener sets ``SO_REUSEADDR``, so the
        rebind succeeds as soon as the old process is gone.  Returns the
        (unchanged) address once the daemon answers hello + ping.

        The new process starts *unprovisioned*: the client's retry layer
        (``RemoteCloud.ensure_provisioned``) re-ships the key/table on its
        next attempt, and a ``--pool-cache`` makes it warm again.
        """
        with self._restart_lock:
            process = self._processes.get(role)
            if process is None:
                raise ConfigurationError(f"no {role!r} daemon to restart")
            if process.poll() is None:
                process.kill()
                process.wait()
            # Remove the stale port file *before* respawning: between the
            # old process dying and the new one binding, nothing may serve
            # a probe the dead daemon's port line.
            (self._scratch() / f"{role}.port").unlink(missing_ok=True)
            previous = self.addresses.get(role)
            listen = (f"{previous[0]}:{previous[1]}" if previous
                      else "127.0.0.1:0")
            self._spawn(role, listen)
            self.addresses[role] = self._wait_for_port(
                role, self._scratch() / f"{role}.port")
            try:
                wait_until_healthy(self.addresses[role], timeout=timeout)
            except DeadlineExceeded as exc:
                raise ConfigurationError(
                    f"restarted {role} daemon never became healthy: {exc}\n"
                    f"{self._tail_log(role)}") from exc
            self.restarts[role] = self.restarts.get(role, 0) + 1
            telemetry_metrics.get_registry().counter(
                "repro_daemon_restarts_total",
                "Party daemons restarted by a supervisor.",
                ("role",)).inc(role=role)
            return self.addresses[role]

    # -- liveness monitor ------------------------------------------------------
    def start_monitor(self, interval: float = 0.5) -> None:
        """Watch both processes; auto-restart any that die.

        The monitor only handles *process death* (crash, OOM-kill); a hung
        daemon is the deadline layer's problem.  Idempotent.
        """
        if self._monitor_thread is not None:
            return
        self._monitor_stop.clear()

        def watch() -> None:
            while not self._monitor_stop.wait(interval):
                for role in list(self._processes):
                    process = self._processes.get(role)
                    if process is None or process.poll() is None:
                        continue
                    if self._monitor_stop.is_set():
                        return
                    try:
                        self.restart_role(role)
                    except ConfigurationError:
                        return  # unrecoverable; leave evidence in the log

        self._monitor_thread = threading.Thread(
            target=watch, name="sknn-supervisor-monitor", daemon=True)
        self._monitor_thread.start()

    def stop_monitor(self) -> None:
        """Stop the liveness monitor (idempotent)."""
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None

    # -- provisioning / clients ------------------------------------------------
    def connect(self, **client_options: Any) -> RemoteCloud:
        """Open a fresh client connection set to the daemons.

        ``client_options`` (``retry``, ``request_deadline``, ``rng``,
        ``fetch_timeout``) pass through to :class:`RemoteCloud`.  With
        shard daemons configured, the client learns their addresses so
        provisioning slices the table across them.
        """
        if not self.addresses:
            self.start()
        shard_addresses = ([self.addresses[f"c1-shard{index}"]
                            for index in range(self.shard_count)]
                           or None)
        return RemoteCloud(self.addresses["c1"], self.addresses["c2"],
                           shard_addresses=shard_addresses,
                           **client_options)

    def provision_from_owner(self, owner: DataOwner,
                             distance_bits: int | None = None,
                             seed: int | None = None,
                             precompute_queries: int = 0,
                             k_default: int = 1,
                             **client_options: Any) -> RemoteCloud:
        """Play Alice: encrypt the owner's table and provision both daemons."""
        remote = self.connect(**client_options)
        remote.provision(
            owner.keypair, owner.encrypt_database(),
            distance_bits=(distance_bits if distance_bits is not None
                           else owner.distance_bit_length()),
            seed=seed, precompute_queries=precompute_queries,
            k_default=k_default)
        self._remote = remote
        return remote

    # -- shutdown --------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop both daemons: graceful request, SIGTERM, then SIGKILL."""
        self.stop_monitor()
        if self._remote is not None:
            self._remote.shutdown_daemons()
            self._remote.close()
            self._remote = None
        elif self._processes:
            try:
                remote = self.connect()
                remote.shutdown_daemons()
                remote.close()
            except Exception:
                pass  # fall through to signals
        for role, process in self._processes.items():
            if process.poll() is None:
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=timeout)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
        self._processes = {}
        self.addresses = {}
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def daemon_log(self, role: str) -> str:
        """The captured stdout/stderr of one daemon (debugging aid)."""
        return self._tail_log(role)

    @property
    def running(self) -> bool:
        """Whether both subprocesses are alive."""
        return bool(self._processes) and all(
            process.poll() is None for process in self._processes.values())

    def __enter__(self) -> "LocalSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
