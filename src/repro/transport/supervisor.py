"""Local supervisor: spawn a C1+C2 daemon pair as real OS processes.

Tests, examples and ``SkNNSystem`` ``mode="distributed"`` use this to stand
up the distributed runtime on one machine: two ``repro party`` subprocesses
listening on ephemeral localhost ports (discovered through port files), a
provisioning step that ships the secret key to C2 and the encrypted table to
C1, and a hardened shutdown path (graceful ``transport.shutdown`` request,
then SIGTERM, then SIGKILL) that never leaks child processes — each daemon
additionally installs its own SIGTERM/atexit cleanup, so even a supervisor
crash leaves no orphaned listeners.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.core.roles import DataOwner
from repro.exceptions import ConfigurationError
from repro.transport.client import RemoteCloud

__all__ = ["LocalSupervisor"]

_START_TIMEOUT = 30.0


class LocalSupervisor:
    """Owns two party-daemon subprocesses and their scratch directory.

    Usage::

        with LocalSupervisor() as supervisor:
            remote = supervisor.provision_from_owner(owner, distance_bits=l)
            shares, report = remote.query(encrypted_query, k=2, mode="secure")

    Args:
        pool_cache: give each daemon a ``--pool-cache`` file inside the
            scratch directory (or, when a path is supplied, inside it) so a
            restarted pair starts hot.
        metrics: start each daemon with ``--metrics-listen 127.0.0.1:0``
            (an ephemeral Prometheus/stats HTTP listener, discoverable via
            ``transport.stats`` → ``metrics_address``).
        python: interpreter for the subprocesses (defaults to this one).
    """

    def __init__(self, pool_cache: bool | str | Path = False,
                 metrics: bool = False,
                 python: str | None = None) -> None:
        self._python = python or sys.executable
        self._pool_cache = pool_cache
        self._metrics = metrics
        self._tempdir: tempfile.TemporaryDirectory | None = None
        self._processes: dict[str, subprocess.Popen] = {}
        self.addresses: dict[str, tuple[str, int]] = {}
        self._remote: RemoteCloud | None = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "LocalSupervisor":
        """Spawn both daemons and wait until they are accepting connections."""
        if self._processes:
            return self
        self._tempdir = tempfile.TemporaryDirectory(prefix="repro-transport-")
        scratch = Path(self._tempdir.name)
        if isinstance(self._pool_cache, (str, Path)):
            cache_dir = Path(self._pool_cache)
            cache_dir.mkdir(parents=True, exist_ok=True)
        else:
            cache_dir = scratch
        for role in ("c2", "c1"):
            port_file = scratch / f"{role}.port"
            log_file = scratch / f"{role}.log"
            command = [
                self._python, "-m", "repro", "party",
                "--role", role,
                "--listen", "127.0.0.1:0",
                "--port-file", str(port_file),
            ]
            if self._pool_cache:
                command += ["--pool-cache", str(cache_dir / f"{role}.pools")]
            if self._metrics:
                command += ["--metrics-listen", "127.0.0.1:0"]
            environment = dict(os.environ)
            environment["PYTHONPATH"] = os.pathsep.join(
                [path for path in sys.path if path])
            with open(log_file, "wb") as log:
                process = subprocess.Popen(
                    command, stdout=log, stderr=subprocess.STDOUT,
                    env=environment)
            self._processes[role] = process
            self.addresses[role] = self._wait_for_port(role, port_file)
        return self

    def _wait_for_port(self, role: str, port_file: Path) -> tuple[str, int]:
        deadline = time.monotonic() + _START_TIMEOUT
        process = self._processes[role]
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise ConfigurationError(
                    f"{role} daemon exited with code {process.returncode} "
                    f"during startup:\n{self._tail_log(role)}")
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    host, port = text.split()
                    return host, int(port)
            time.sleep(0.02)
        raise ConfigurationError(
            f"{role} daemon did not start within {_START_TIMEOUT:.0f}s:\n"
            f"{self._tail_log(role)}")

    def _tail_log(self, role: str) -> str:
        if self._tempdir is None:
            return ""
        log_file = Path(self._tempdir.name) / f"{role}.log"
        if not log_file.exists():
            return "(no log output)"
        return log_file.read_text()[-2000:]

    def restart(self) -> "LocalSupervisor":
        """Stop both daemons and start a fresh pair (pool caches survive
        when the supervisor was created with a persistent ``pool_cache``
        path)."""
        pool_cache = self._pool_cache
        self.shutdown()
        self._pool_cache = pool_cache
        self._processes = {}
        self.addresses = {}
        return self.start()

    # -- provisioning / clients ------------------------------------------------
    def connect(self) -> RemoteCloud:
        """Open a fresh client connection pair to the daemons."""
        if not self.addresses:
            self.start()
        return RemoteCloud(self.addresses["c1"], self.addresses["c2"])

    def provision_from_owner(self, owner: DataOwner,
                             distance_bits: int | None = None,
                             seed: int | None = None,
                             precompute_queries: int = 0,
                             k_default: int = 1) -> RemoteCloud:
        """Play Alice: encrypt the owner's table and provision both daemons."""
        remote = self.connect()
        remote.provision(
            owner.keypair, owner.encrypt_database(),
            distance_bits=(distance_bits if distance_bits is not None
                           else owner.distance_bit_length()),
            seed=seed, precompute_queries=precompute_queries,
            k_default=k_default)
        self._remote = remote
        return remote

    # -- shutdown --------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop both daemons: graceful request, SIGTERM, then SIGKILL."""
        if self._remote is not None:
            self._remote.shutdown_daemons()
            self._remote.close()
            self._remote = None
        elif self._processes:
            try:
                remote = self.connect()
                remote.shutdown_daemons()
                remote.close()
            except Exception:
                pass  # fall through to signals
        for role, process in self._processes.items():
            if process.poll() is None:
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=timeout)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
        self._processes = {}
        self.addresses = {}
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def daemon_log(self, role: str) -> str:
        """The captured stdout/stderr of one daemon (debugging aid)."""
        return self._tail_log(role)

    @property
    def running(self) -> bool:
        """Whether both subprocesses are alive."""
        return bool(self._processes) and all(
            process.poll() is None for process in self._processes.values())

    def __enter__(self) -> "LocalSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
