"""Wire codec: tagged protocol messages <-> framed bytes.

Layered on the payload codec of :mod:`repro.crypto.serialization`: a
:class:`~repro.network.channel.Message` becomes the four-element JSON array
``[sender, recipient, tag, encoded-payload]``, serialized compactly (no
whitespace) and encoded as UTF-8.  The in-memory channel sizes its traffic
accounting with the same encoding, so byte counts are comparable across the
in-memory and TCP transports.

The codec is bound to a (mutable) public key: ciphertext nodes need the key
to decode, but the provisioning control messages that *deliver* the key
material contain no ciphertexts and decode with the key still unset.
"""

from __future__ import annotations

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.serialization import (
    message_envelope_from_bytes,
    message_envelope_to_bytes,
)
from repro.exceptions import ChannelError, SerializationError
from repro.network.channel import Message

__all__ = ["WireCodec"]


class WireCodec:
    """Encode/decode :class:`Message` objects for the TCP transport."""

    def __init__(self, public_key: PaillierPublicKey | None = None) -> None:
        #: set (or replaced) when the party learns its key at provisioning
        self.public_key = public_key

    def encode_message(self, message: Message) -> bytes:
        """Encode a full message (sender, recipient, tag, payload[, trace])."""
        try:
            return message_envelope_to_bytes(
                message.sender, message.recipient, message.tag,
                message.payload, trace=message.trace,
                context=message.context)
        except SerializationError as exc:
            raise ChannelError(str(exc)) from exc

    def decode_message(self, body: bytes) -> Message:
        """Decode :meth:`encode_message` output."""
        try:
            sender, recipient, tag, payload, trace, context = (
                message_envelope_from_bytes(body, self.public_key))
        except SerializationError as exc:
            raise ChannelError(str(exc)) from exc
        return Message(sender=sender, recipient=recipient, tag=tag,
                       payload=payload,
                       trace=tuple(trace) if trace else None,
                       context=context)
