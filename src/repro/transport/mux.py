"""Multiplexed peer connections: pipelined queries over shared C1<->C2 links.

The PR-4 transport gave each C1 daemon exactly one :class:`TcpChannel` to C2
and serialized every query behind a lock: protocol frames carry no query
identity, so two in-flight queries would interleave their frames and desync
both.  This module removes that bottleneck.  Every frame of a pipelined
query carries a *context id* (the sixth envelope element, see
:func:`repro.crypto.serialization.message_envelope_to_bytes`), and a
:class:`MuxConnection` demultiplexes the shared socket into per-context
:class:`MuxChannel` objects — each one a drop-in ``DuplexChannel`` surface,
so the protocol stack (``protocols/*``, ``core/*``) runs over a multiplexed
link unchanged.

Topology of one C1<->C2 peer connection:

* **C1 side** — a :class:`PeerPool` owns N persistent :class:`MuxConnection`
  dials; every query leases a fresh context (a :class:`MuxChannel`) from the
  least-loaded live connection, so N*M queries overlap on M sockets.
* **C2 side** — the daemon wraps each accepted cloud-peer socket in a
  :class:`MuxConnection` whose ``on_new_context`` callback spawns one worker
  thread per context; each worker runs the ordinary P2 dispatch loop over
  its own channel, so concurrent queries execute their C2 steps in parallel.

Frames without a context id (a pre-pipelining C1, or control traffic) route
to the reserved ``None`` context, which keeps old peers interoperable.

Byte accounting follows :class:`~repro.transport.channel.TcpChannel` exactly
— outbound traffic records the actual framed bytes under the sending role,
inbound records ``FRAME_HEADER_BYTES + len(body)`` under the remote role —
at *both* levels: each context's channel counts only its own frames (the
per-query numbers the run reports use) and the connection counts everything
(the per-connection rows ``/stats`` shows), so the context totals of a
connection always sum to its wire totals.

Failure semantics: a failed **send** (deadline or socket error) may leave a
partial frame on the stream, which desynchronises every context sharing the
socket — the whole connection is failed and every live context wakes with
the error.  A failed **receive** on one context (its deadline expiring)
affects only that context.  A dead connection is pruned from the pool and
re-dialled on the next lease, so one dropped link degrades the pipeline
instead of stalling it.
"""

from __future__ import annotations

import errno
import itertools
import socket
import struct
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.exceptions import ChannelError, DeadlineExceeded, PeerUnavailable
from repro.network.channel import Message, _ambient_trace_context, _count_payload
from repro.network.stats import TrafficStats
from repro.telemetry import metrics as _metrics
from repro.transport.framing import (
    FRAME_HEADER_BYTES,
    deadline_at,
    recv_frame,
    send_frame,
)
from repro.transport.wire import WireCodec

__all__ = ["MuxChannel", "MuxConnection", "PeerPool", "CONTEXT_CLOSE_TAG"]

#: control tag announcing that the sender is done with a context; the
#: receiving side tears down the matching channel (and its worker thread).
CONTEXT_CLOSE_TAG = "transport.context_close"


def _set_send_timeout(sock: socket.socket, seconds: float) -> None:
    """Kernel-level send timeout (``SO_SNDTIMEO``) on a shared socket.

    A multiplexed socket has one thread blocked in ``recv`` while others
    send; ``sock.settimeout`` would flip the shared fd non-blocking and the
    concurrent ``recv`` would surface ``EAGAIN``.  ``SO_SNDTIMEO`` bounds
    only the send direction and leaves blocking mode alone — a wedged peer
    makes ``sendall`` fail with ``EAGAIN`` after ``seconds``.
    """
    whole = int(seconds)
    fraction = int((seconds - whole) * 1_000_000)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                        struct.pack("@ll", whole, fraction))
    except (OSError, OverflowError, struct.error):  # pragma: no cover
        pass  # exotic platform: sends unbounded, receive deadlines remain


class MuxChannel:
    """One query context on a multiplexed peer connection.

    Implements the same ``send``/``receive``/``pending``/``next_tag``/
    accounting surface as :class:`~repro.transport.channel.TcpChannel`, but
    bound to a single context id: ``send`` stamps every outgoing frame with
    the context, and only frames carrying the same context are delivered to
    :meth:`receive`.  The connection's reader thread fills the inbox, so a
    receive is a condition wait, not a socket read.
    """

    #: the remote endpoint is a separate OS process — see
    #: :class:`~repro.network.channel.DuplexChannel.runs_both_parties`.
    runs_both_parties = False

    def __init__(self, connection: "MuxConnection",
                 context: str | None) -> None:
        self._connection = connection
        self.context = context
        self.local_role = connection.local_role
        self.remote_role = connection.remote_role
        self.endpoint_a, self.endpoint_b = sorted(
            (self.local_role, self.remote_role))
        self.io_deadline = connection.io_deadline
        self.traffic: dict[str, TrafficStats] = {
            self.local_role: TrafficStats(),
            self.remote_role: TrafficStats(),
        }
        #: interface parity with the in-memory channel
        self.simulated_delay_seconds = 0.0
        self._inbox: deque[Message] = deque()
        self._condition = threading.Condition()
        self._failure: Exception | None = None

    # -- connection plumbing ---------------------------------------------------
    @property
    def connection(self) -> "MuxConnection":
        """The shared connection this context multiplexes over."""
        return self._connection

    def _deliver(self, message: Message) -> None:
        """Reader thread: file one inbound frame for this context."""
        with self._condition:
            self._inbox.append(message)
            self._condition.notify_all()

    def _fail(self, exc: Exception) -> None:
        """Wake every waiter with a terminal error (connection died)."""
        with self._condition:
            if self._failure is None:
                self._failure = exc
            self._condition.notify_all()

    # -- primary API ----------------------------------------------------------
    def send(self, sender: str, payload: Any, tag: str = "") -> None:
        """Send ``payload`` from the local role, stamped with this context."""
        if sender != self.local_role:
            raise ChannelError(
                f"cannot send as {sender!r}: this process is "
                f"{self.local_role!r}")
        self._connection.send_on(self, payload, tag)

    def receive(self, recipient: str, expected_tag: str | None = None) -> Any:
        """Receive this context's next message (bounded by the io deadline)."""
        if recipient != self.local_role:
            raise ChannelError(
                f"cannot receive as {recipient!r}: this process is "
                f"{self.local_role!r}")
        message = self._next_message(deadline_at(self.io_deadline))
        if message.tag == "transport.error":
            # The remote party failed mid-protocol and told us why instead
            # of leaving this context blocked on a frame that never comes.
            raise ChannelError(f"remote {self.remote_role} reported: "
                               f"{message.payload}")
        if expected_tag is not None and message.tag != expected_tag:
            raise ChannelError(
                f"expected message tagged {expected_tag!r} but got "
                f"{message.tag!r}")
        return message.payload

    def pending(self, recipient: str) -> int:
        """Frames routed to this context but not yet consumed."""
        if recipient != self.local_role:
            raise ChannelError(
                f"unknown local endpoint {recipient!r} (this process is "
                f"{self.local_role!r})")
        with self._condition:
            return len(self._inbox)

    # -- daemon dispatch support ----------------------------------------------
    def next_tag(self, timeout: float | None = None) -> str:
        """Block for this context's next message and return its tag.

        Waiting here is idleness (the context's worker awaiting the next
        protocol frame), so it is unbounded by default, exactly like
        :meth:`TcpChannel.next_tag`; the connection failing unblocks it.
        """
        deadline = deadline_at(timeout)
        with self._condition:
            self._wait_for_message(deadline)
            return self._inbox[0].tag

    def next_trace(self) -> tuple[str, str] | None:
        """Trace context of the queued head message (after ``next_tag``)."""
        with self._condition:
            return self._inbox[0].trace if self._inbox else None

    def _wait_for_message(self, deadline: float | None) -> None:
        """Wait (under the lock) until the inbox is non-empty."""
        while not self._inbox:
            if self._failure is not None:
                raise self._wrap_failure()
            if deadline is None:
                self._condition.wait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._count_deadline_hit("receive")
                    raise DeadlineExceeded(
                        f"no frame for context {self.context!r} from "
                        f"{self.remote_role} within the io deadline")
                self._condition.wait(remaining)

    def _next_message(self, deadline: float | None) -> Message:
        with self._condition:
            self._wait_for_message(deadline)
            return self._inbox.popleft()

    def _wrap_failure(self) -> Exception:
        failure = self._failure
        if isinstance(failure, (PeerUnavailable, DeadlineExceeded)):
            return type(failure)(str(failure))
        return ChannelError(f"peer connection to {self.remote_role} failed: "
                            f"{failure}")

    def _count_deadline_hit(self, direction: str) -> None:
        _metrics.get_registry().counter(
            "repro_deadline_hits_total",
            "Blocking channel operations that hit their deadline.",
            ("role", "direction")).inc(role=self.local_role,
                                       direction=direction)

    # -- accounting -----------------------------------------------------------
    def total_traffic(self) -> TrafficStats:
        """Aggregate this context's traffic over both directions."""
        return self.traffic[self.local_role].merged_with(
            self.traffic[self.remote_role])

    def reset_accounting(self) -> None:
        """Clear this context's traffic statistics."""
        for stats in self.traffic.values():
            stats.reset()
        self.simulated_delay_seconds = 0.0

    # -- lifecycle ------------------------------------------------------------
    def release(self) -> None:
        """Detach this context from the connection (the connection lives on).

        Best-effort notifies the peer (so its per-context worker exits)
        before detaching; a dead connection just detaches.
        """
        self._connection.release_context(self, notify_peer=True)

    def close(self) -> None:
        """Alias of :meth:`release` — contexts never close the socket."""
        self._connection.release_context(self, notify_peer=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MuxChannel(context={self.context!r}, "
                f"local={self.local_role!r}, remote={self.remote_role!r})")


class MuxConnection:
    """One peer socket carrying many interleaved query contexts.

    The reader (either :meth:`serve` inline or the :meth:`start_reader`
    background thread) is the only consumer of the socket: it decodes each
    frame, accounts its bytes, and routes it to the :class:`MuxChannel` of
    the frame's context id, creating the channel on first sight.  On the
    accepting side (C2), ``on_new_context`` is called with each newly
    created channel so the daemon can spawn a per-context worker.
    """

    def __init__(self, sock: socket.socket, codec: WireCodec,
                 local_role: str, remote_role: str,
                 io_deadline: float | None = None,
                 on_new_context: Callable[["MuxChannel"], None] | None = None,
                 ) -> None:
        self._sock = sock
        self._codec = codec
        self.local_role = local_role
        self.remote_role = remote_role
        self.io_deadline = io_deadline
        # The reader owns the socket's (blocking) mode; send deadlines are
        # enforced by the kernel so they never perturb a concurrent recv.
        sock.settimeout(None)
        if io_deadline is not None:
            _set_send_timeout(sock, io_deadline)
        self._on_new_context = on_new_context
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._contexts: dict[str | None, MuxChannel] = {}
        self._failure: Exception | None = None
        self._reader: threading.Thread | None = None
        #: connection-level traffic: everything on this socket, all contexts
        self.traffic: dict[str, TrafficStats] = {
            local_role: TrafficStats(),
            remote_role: TrafficStats(),
        }

    # -- introspection --------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the connection can still carry frames."""
        with self._lock:
            return self._failure is None

    def active_contexts(self) -> int:
        """Number of attached contexts (the pool's load metric)."""
        with self._lock:
            return len(self._contexts)

    def total_traffic(self) -> TrafficStats:
        """Aggregate connection traffic over both directions."""
        return self.traffic[self.local_role].merged_with(
            self.traffic[self.remote_role])

    # -- context management ---------------------------------------------------
    def channel(self, context: str | None) -> MuxChannel:
        """The channel for ``context``, created if unseen (local initiative)."""
        created = None
        with self._lock:
            if self._failure is not None:
                raise ChannelError(
                    f"peer connection to {self.remote_role} failed: "
                    f"{self._failure}")
            existing = self._contexts.get(context)
            if existing is None:
                existing = created = MuxChannel(self, context)
                self._contexts[context] = existing
        return existing if created is None else created

    def release_context(self, channel: MuxChannel,
                        notify_peer: bool = False) -> None:
        """Detach one context; optionally tell the peer to drop it too."""
        with self._lock:
            current = self._contexts.get(channel.context)
            attached = current is channel
            if attached:
                del self._contexts[channel.context]
            dead = self._failure is not None
        if attached and notify_peer and not dead:
            try:
                self._send_raw(channel.context, None, CONTEXT_CLOSE_TAG)
            except (ChannelError, DeadlineExceeded):
                pass  # best-effort: the peer reaps the context on its own

    # -- sending --------------------------------------------------------------
    def send_on(self, channel: MuxChannel, payload: Any, tag: str) -> None:
        """Send one frame on behalf of a context, with full accounting."""
        with self._lock:
            failure = self._failure
        if failure is not None:
            if isinstance(failure, (PeerUnavailable, DeadlineExceeded)):
                raise type(failure)(str(failure))
            raise ChannelError(f"peer connection to {self.remote_role} "
                               f"failed: {failure}")
        sent = self._send_raw(channel.context, payload, tag)
        ciphertexts, plaintexts = _count_payload(payload)
        channel.traffic[self.local_role].record(
            ciphertexts, plaintexts, sent, tag=tag)
        self.traffic[self.local_role].record(
            ciphertexts, plaintexts, sent, tag=tag)

    def _send_raw(self, context: str | None, payload: Any, tag: str) -> int:
        message = Message(sender=self.local_role, recipient=self.remote_role,
                          tag=tag, payload=payload,
                          trace=_ambient_trace_context(), context=context)
        body = self._codec.encode_message(message)
        try:
            # No framing-level deadline here: that would settimeout() the
            # socket, flipping the fd non-blocking under the reader thread's
            # concurrent recv().  The send bound is SO_SNDTIMEO (set once in
            # __init__), which the kernel enforces per-direction.
            with self._send_lock:
                return send_frame(self._sock, body)
        except (PeerUnavailable, ChannelError, OSError) as exc:
            cause = exc.__cause__ if isinstance(exc, PeerUnavailable) else exc
            if (isinstance(cause, OSError) and cause.errno in
                    (errno.EAGAIN, errno.EWOULDBLOCK)):
                # SO_SNDTIMEO expired: a timed-out sendall may have written
                # a partial frame, desynchronising the stream for every
                # context, so the whole connection is failed.
                _metrics.get_registry().counter(
                    "repro_deadline_hits_total",
                    "Blocking channel operations that hit their deadline.",
                    ("role", "direction")).inc(role=self.local_role,
                                               direction="send")
                timeout_exc = DeadlineExceeded(
                    "send blocked past the io deadline "
                    f"(peer {self.remote_role} not draining)")
                self.fail(timeout_exc)
                raise timeout_exc from exc
            self.fail(exc)
            if isinstance(exc, (PeerUnavailable, ChannelError)):
                raise
            raise PeerUnavailable(
                f"peer connection to {self.remote_role} failed: {exc}"
            ) from exc

    # -- receiving ------------------------------------------------------------
    def serve(self) -> None:
        """Read frames until the connection dies (runs on current thread)."""
        while self._read_one():
            pass

    def start_reader(self) -> None:
        """Run :meth:`serve` on a background daemon thread (C1 side)."""
        if self._reader is not None:
            return
        self._reader = threading.Thread(
            target=self.serve,
            name=f"sknn-mux-{self.local_role.lower()}-reader", daemon=True)
        self._reader.start()

    def _read_one(self) -> bool:
        """Read, account, and route one frame; ``False`` ends the loop."""
        try:
            # No deadline: waiting for the peer's next frame is idleness;
            # close() unblocks it by shutting the socket down.
            body = recv_frame(self._sock, deadline=None)
        except (ChannelError, OSError) as exc:
            self.fail(exc)
            return False
        if body is None:
            self.fail(PeerUnavailable(
                f"connection to {self.remote_role} closed"))
            return False
        try:
            message = self._codec.decode_message(body)
            ciphertexts, plaintexts = _count_payload(message.payload)
        except ChannelError as exc:
            self.fail(exc)
            return False
        size = FRAME_HEADER_BYTES + len(body)
        self.traffic[self.remote_role].record(
            ciphertexts, plaintexts, size, tag=message.tag)
        if message.tag == CONTEXT_CLOSE_TAG:
            self._drop_context(message.context)
            return True
        channel, created = self._route(message.context)
        if channel is None:
            return True  # unknown context on a pool connection: drop
        channel.traffic[self.remote_role].record(
            ciphertexts, plaintexts, size, tag=message.tag)
        channel._deliver(message)
        if created and self._on_new_context is not None:
            self._on_new_context(channel)
        return True

    def _route(self, context: str | None
               ) -> tuple[MuxChannel | None, bool]:
        """Find (or, on the accepting side, create) a context's channel."""
        with self._lock:
            channel = self._contexts.get(context)
            if channel is not None:
                return channel, False
            if self._on_new_context is None:
                # C1 pool side: a frame for a released context (e.g. a
                # late reply after the query timed out) has no consumer.
                return None, False
            channel = MuxChannel(self, context)
            self._contexts[context] = channel
            return channel, True

    def _drop_context(self, context: str | None) -> None:
        """Peer closed a context: fail its channel so its worker exits."""
        with self._lock:
            channel = self._contexts.pop(context, None)
        if channel is not None:
            channel._fail(ChannelError(
                f"context {context!r} closed by {self.remote_role}"))

    # -- failure & lifecycle ---------------------------------------------------
    def fail(self, exc: Exception) -> None:
        """Mark the connection dead and wake every context with the error."""
        with self._lock:
            if self._failure is not None:
                return
            self._failure = exc
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for channel in contexts:
            channel._fail(exc)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Shut the connection down (idempotent); unblocks the reader."""
        self.fail(PeerUnavailable(
            f"connection to {self.remote_role} closed locally"))
        reader = self._reader
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MuxConnection(local={self.local_role!r}, "
                f"remote={self.remote_role!r}, "
                f"contexts={self.active_contexts()})")


class PeerPool:
    """N persistent multiplexed connections to the peer cloud (C1 side).

    ``lease()`` hands out a fresh context on the least-loaded live
    connection, re-dialling dead ones on demand: one dropped socket fails
    only the queries that were in flight on it, and the pool heals on the
    next lease.  ``size=1`` still pipelines — contexts, not connections,
    provide the concurrency — extra connections spread the socket-level
    send serialization across links.
    """

    def __init__(self, dial: Callable[[], MuxConnection], size: int = 1,
                 role: str = "c1") -> None:
        if size < 1:
            raise ChannelError("peer pool needs at least one connection")
        self._dial = dial
        self.size = size
        self._role = role
        self._lock = threading.Lock()
        self._connections: list[MuxConnection] = []
        self._context_ids = itertools.count(1)
        self._dialed_once = False
        self._closed = False

    def lease(self) -> MuxChannel:
        """A fresh context channel on the healthiest connection."""
        with self._lock:
            if self._closed:
                raise ChannelError("peer pool is closed")
            self._connections = [connection for connection in
                                 self._connections if connection.alive]
            redialled = 0
            while len(self._connections) < self.size:
                self._connections.append(self._dial())
                redialled += 1
            if redialled and self._dialed_once:
                _metrics.get_registry().counter(
                    "repro_reconnects_total",
                    "Peer/daemon connections re-established after a "
                    "failure.", ("role",)).inc(redialled, role=self._role)
            self._dialed_once = True
            connection = min(self._connections,
                             key=lambda item: item.active_contexts())
            context = f"q{next(self._context_ids)}"
        return connection.channel(context)

    def ensure(self) -> None:
        """Eagerly dial the pool up to ``size`` live connections.

        Called at provision time so an unreachable C2 surfaces as
        :class:`PeerUnavailable` to the provisioning client immediately,
        matching the pre-pipelining eager-dial behaviour.
        """
        with self._lock:
            if self._closed:
                raise ChannelError("peer pool is closed")
            self._connections = [connection for connection in
                                 self._connections if connection.alive]
            while len(self._connections) < self.size:
                self._connections.append(self._dial())
            self._dialed_once = True

    def discard(self, connection: MuxConnection) -> None:
        """Drop (and close) one connection after a mid-query failure."""
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
        connection.close()

    def connections(self) -> list[MuxConnection]:
        """Snapshot of the live connections (stats/introspection)."""
        with self._lock:
            return list(self._connections)

    def inflight(self) -> int:
        """Total active contexts across the pool."""
        return sum(connection.active_contexts()
                   for connection in self.connections())

    def close(self) -> None:
        """Close every connection and refuse further leases."""
        with self._lock:
            self._closed = True
            connections = self._connections
            self._connections = []
        for connection in connections:
            connection.close()
