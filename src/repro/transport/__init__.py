"""Distributed runtime: C1, C2 and Bob as real networked processes.

The rest of the library simulates the paper's two non-colluding clouds inside
one Python process (:class:`~repro.network.channel.DuplexChannel`).  This
package provides the real thing:

* :mod:`repro.transport.framing` — length-prefixed frames over TCP;
* :mod:`repro.transport.wire` — the message codec (layered on
  :mod:`repro.crypto.serialization`);
* :mod:`repro.transport.channel` — :class:`TcpChannel`, a drop-in
  implementation of the ``DuplexChannel`` send/recv interface over a socket;
* :mod:`repro.transport.daemon` — the C1/C2 party daemons
  (``repro party --role c1|c2 --listen HOST:PORT``);
* :mod:`repro.transport.supervisor` — spawns both daemons locally as
  subprocesses (tests, examples, ``SkNNSystem`` ``mode="distributed"``);
* :mod:`repro.transport.client` — Bob's client: provisioning, remote
  queries, share fetching, and the ``RemoteStore`` backing a distributed
  :class:`~repro.service.scheduler.QueryServer`.
"""

from repro.transport.channel import TcpChannel
from repro.transport.client import RemoteCloud, RemoteProtocol, RemoteStore
from repro.transport.daemon import PartyDaemon, ShareMailbox, parse_address
from repro.transport.framing import recv_frame, send_frame
from repro.transport.supervisor import LocalSupervisor
from repro.transport.wire import WireCodec

__all__ = [
    "TcpChannel",
    "WireCodec",
    "PartyDaemon",
    "ShareMailbox",
    "LocalSupervisor",
    "RemoteCloud",
    "RemoteProtocol",
    "RemoteStore",
    "parse_address",
    "send_frame",
    "recv_frame",
]
