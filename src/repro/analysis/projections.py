"""Paper-scale projection builders shared by the benchmark modules.

Each function returns an :class:`~repro.analysis.reporting.ExperimentSeries`
whose rows correspond one-to-one to a figure of the paper's Section 5,
computed as (exact operation counts) x (calibrated per-operation timings at
the requested key size).
"""

from __future__ import annotations

from repro.analysis.calibration import Calibrator
from repro.analysis.cost_model import (
    sknn_basic_counts,
    sknn_secure_breakdown,
    sknn_secure_counts,
)
from repro.analysis.reporting import ExperimentSeries

__all__ = [
    "figure_2a_series",
    "figure_2c_series",
    "figure_2d_series",
    "figure_2f_series",
    "figure_3_series",
    "sminn_share_series",
]


def figure_2a_series(calibrator: Calibrator, key_size: int, n_values: list[int],
                     m_values: list[int], k: int = 5) -> ExperimentSeries:
    """Figures 2(a)/2(b): SkNN_b time vs. n for several m, fixed k and K."""
    series = ExperimentSeries(
        title=f"SkNNb: time vs n (k={k}, K={key_size})",
        x_label="n",
        x_values=list(n_values),
        y_label="time (seconds)",
    )
    for dimensions in m_values:
        times = [
            calibrator.predict_seconds(sknn_basic_counts(n, dimensions, k), key_size)
            for n in n_values
        ]
        series.add_series(f"m={dimensions}", times)
    return series


def figure_2c_series(calibrator: Calibrator, key_sizes: list[int],
                     k_values: list[int], n: int = 2000,
                     dimensions: int = 6) -> ExperimentSeries:
    """Figure 2(c): SkNN_b time vs. k for both key sizes (n=2000, m=6)."""
    series = ExperimentSeries(
        title=f"SkNNb: time vs k (n={n}, m={dimensions})",
        x_label="k",
        x_values=list(k_values),
        y_label="time (seconds)",
    )
    for key_size in key_sizes:
        times = [
            calibrator.predict_seconds(sknn_basic_counts(n, dimensions, k), key_size)
            for k in k_values
        ]
        series.add_series(f"K={key_size}", times)
    return series


def figure_2d_series(calibrator: Calibrator, key_size: int, k_values: list[int],
                     l_values: list[int], n: int = 2000,
                     dimensions: int = 6) -> ExperimentSeries:
    """Figures 2(d)/2(e): SkNN_m time vs. k for several l (n=2000, m=6)."""
    series = ExperimentSeries(
        title=f"SkNNm: time vs k (n={n}, m={dimensions}, K={key_size})",
        x_label="k",
        x_values=list(k_values),
        y_label="time (minutes)",
    )
    for bit_length in l_values:
        times = [
            calibrator.predict_seconds(
                sknn_secure_counts(n, dimensions, k, bit_length), key_size) / 60.0
            for k in k_values
        ]
        series.add_series(f"l={bit_length}", times)
    return series


def figure_2f_series(calibrator: Calibrator, key_size: int, k_values: list[int],
                     n: int = 2000, dimensions: int = 6,
                     bit_length: int = 6) -> ExperimentSeries:
    """Figure 2(f): SkNN_b vs SkNN_m time vs. k (n=2000, m=6, l=6, K=512)."""
    series = ExperimentSeries(
        title=f"SkNNb vs SkNNm: time vs k (n={n}, m={dimensions}, "
              f"l={bit_length}, K={key_size})",
        x_label="k",
        x_values=list(k_values),
        y_label="time (minutes)",
    )
    series.add_series("SkNNb", [
        calibrator.predict_seconds(sknn_basic_counts(n, dimensions, k),
                                   key_size) / 60.0
        for k in k_values
    ])
    series.add_series("SkNNm", [
        calibrator.predict_seconds(
            sknn_secure_counts(n, dimensions, k, bit_length), key_size) / 60.0
        for k in k_values
    ])
    return series


def figure_3_series(calibrator: Calibrator, key_size: int, n_values: list[int],
                    workers: int = 6, dimensions: int = 6,
                    k: int = 5) -> ExperimentSeries:
    """Figure 3: serial vs parallel SkNN_b time vs. n (m=6, k=5, K=512).

    The parallel projection divides the parallelizable distance phase by the
    worker count, mirroring the record-level independence the paper exploits;
    the (tiny) selection and delivery phases are left serial.
    """
    series = ExperimentSeries(
        title=f"SkNNb serial vs parallel ({workers} workers), m={dimensions}, "
              f"k={k}, K={key_size}",
        x_label="n",
        x_values=list(n_values),
        y_label="time (seconds)",
    )
    serial_times = [
        calibrator.predict_seconds(sknn_basic_counts(n, dimensions, k), key_size)
        for n in n_values
    ]
    series.add_series("serial", serial_times)
    series.add_series("parallel", [value / workers for value in serial_times])
    return series


def sminn_share_series(k_values: list[int], n: int = 2000, dimensions: int = 6,
                       bit_length: int = 6) -> ExperimentSeries:
    """Section 5.2: the share of SkNN_m cost spent inside SMIN_n, vs. k."""
    series = ExperimentSeries(
        title=f"SMINn share of SkNNm cost (n={n}, m={dimensions}, l={bit_length})",
        x_label="k",
        x_values=list(k_values),
        y_label="share of total operations (%)",
    )
    shares = []
    for k in k_values:
        breakdown = sknn_secure_breakdown(n, dimensions, k, bit_length)
        shares.append(100.0 * breakdown["sminn"].total / breakdown["total"].total)
    series.add_series("SMINn share", shares)
    return series
