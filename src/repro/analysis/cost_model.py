"""Analytic operation-count model — Section 4.4 of the paper, made executable.

The paper expresses protocol complexity as counts of Paillier *encryptions*,
*decryptions* and *exponentiations*.  This module turns those asymptotic
statements into exact per-protocol formulas derived from this repository's
implementations, so that

* tests can check the implementation against the model (the counters recorded
  by the crypto layer must match the formulas), and
* the calibrated runtime predictor (:mod:`repro.analysis.calibration`) can
  project paper-scale running times (n = 2000..10000, K = 512/1024) that a
  pure-Python single run could not measure in reasonable time.

All formulas count the operations of both clouds together, matching the way
the paper reports a single per-query time.

Randomized branches (e.g. SBD flips an extra encryption only when its mask is
odd) are counted at their expected value; the model therefore predicts the
*expected* cost, and comparisons against measured counters use a small
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "OperationCounts",
    "OfflineOnlineCounts",
    "sm_counts",
    "ssed_counts",
    "ssed_scan_counts",
    "ssed_scan_split_counts",
    "sbd_counts",
    "smin_counts",
    "sminn_counts",
    "sbor_counts",
    "sknn_basic_counts",
    "sknn_basic_split_counts",
    "sknn_secure_counts",
    "sknn_secure_breakdown",
]


@dataclass(frozen=True)
class OperationCounts:
    """Expected numbers of primitive Paillier operations for one protocol run."""

    encryptions: float = 0.0
    decryptions: float = 0.0
    exponentiations: float = 0.0

    # -- algebra ------------------------------------------------------------------
    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            self.encryptions + other.encryptions,
            self.decryptions + other.decryptions,
            self.exponentiations + other.exponentiations,
        )

    def __mul__(self, factor: float) -> "OperationCounts":
        return OperationCounts(
            self.encryptions * factor,
            self.decryptions * factor,
            self.exponentiations * factor,
        )

    __rmul__ = __mul__

    @property
    def total(self) -> float:
        """Total primitive operations (all three kinds weighted equally)."""
        return self.encryptions + self.decryptions + self.exponentiations

    def as_dict(self) -> dict[str, float]:
        """Plain-dictionary view used by the reporting helpers."""
        return {
            "encryptions": self.encryptions,
            "decryptions": self.decryptions,
            "exponentiations": self.exponentiations,
        }


@dataclass(frozen=True)
class OfflineOnlineCounts:
    """Operation counts split by when a precomputing deployment pays them.

    ``offline`` holds the work a :class:`~repro.crypto.precompute.
    PrecomputeEngine` moves off the query critical path — each offline
    *encryption* is one ``r^N mod N^2`` obfuscator exponentiation performed
    during a pool refill.  ``online`` holds the residual query-time work:
    decryptions and the exponentiations whose base is query-dependent (and
    therefore cannot be precomputed).  Hot-path modular multiplications are
    not counted, matching the paper's Section 4.4 accounting.
    """

    offline: OperationCounts
    online: OperationCounts

    @property
    def total(self) -> float:
        """Total primitive operations across both phases."""
        return self.offline.total + self.online.total

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Plain-dictionary view used by the reporting helpers."""
        return {"offline": self.offline.as_dict(),
                "online": self.online.as_dict()}

    @classmethod
    def from_measurements(cls, run_stats,
                          *engine_stats: dict) -> "OfflineOnlineCounts":
        """The split a deployment *actually measured*, from live telemetry.

        Args:
            run_stats: anything with the ``total_encryptions`` /
                ``total_decryptions`` / ``total_exponentiations`` surface of
                :class:`~repro.network.stats.ProtocolRunStats`.
            engine_stats: one :meth:`~repro.crypto.precompute.
                PrecomputeEngine.stats` snapshot per attached engine
                (deltas over the measured window).

        The run's counters attribute a *pooled* encryption to the consumer
        (one counter increment, but only a modular multiplication online);
        subtracting the pool hits recovers the true online powmod count,
        while the engines' refill work is the offline price.  The result is
        directly comparable with the analytic ``*_split_counts`` formulas.
        """
        offline_encryptions = sum(
            float(stats.get("offline_encryptions", 0))
            for stats in engine_stats)
        pooled_hits = sum(
            sum(stats.get("hits", {}).values())
            + float(stats.get("obfuscator_hits", 0))
            for stats in engine_stats)
        return cls(
            offline=OperationCounts(encryptions=offline_encryptions),
            online=OperationCounts(
                encryptions=max(
                    float(run_stats.total_encryptions) - pooled_hits, 0.0),
                decryptions=float(run_stats.total_decryptions),
                exponentiations=float(run_stats.total_exponentiations),
            ),
        )


# ---------------------------------------------------------------------------
# Sub-protocol formulas (Section 3)
# ---------------------------------------------------------------------------

def sm_counts() -> OperationCounts:
    """Secure Multiplication: 3 encryptions, 2 decryptions, 2 exponentiations."""
    return OperationCounts(encryptions=3, decryptions=2, exponentiations=2)


def ssed_counts(dimensions: int) -> OperationCounts:
    """Secure Squared Euclidean Distance over ``m``-dimensional vectors.

    One homomorphic subtraction (an exponentiation by ``N - 1``) plus one SM
    per attribute.
    """
    _require_positive(dimensions, "dimensions")
    per_attribute = sm_counts() + OperationCounts(exponentiations=1)
    return per_attribute * dimensions


def ssed_scan_counts(n_records: int, dimensions: int,
                     precomputed: bool = False) -> OperationCounts:
    """The batched SSED distance scan: one query against ``n`` records.

    The vectorized kernel (:meth:`~repro.protocols.ssed.
    SecureSquaredEuclideanDistance.run_many`) negates the shared query once
    per attribute instead of once per (record, attribute) pair, so the scan
    costs ``m`` exponentiations plus ``n`` SSED bodies of 2 exponentiations
    each — ``2*n*m + m`` total instead of the textbook ``3*n*m``.
    Encryption and decryption counts are unchanged.

    With ``precomputed=True`` the scan runs the squaring specialization
    (:meth:`~repro.protocols.sm.SecureMultiplication.run_square_batch`)
    that a precomputation engine enables: one engine mask tuple and one
    pooled re-encryption per attribute (2 encryptions, both payable
    offline), one decryption of the masked difference and one unmasking
    exponentiation — ``2*n*m`` encryptions, ``n*m`` decryptions and
    ``n*m + m`` exponentiations.
    """
    _require_positive(n_records, "n_records")
    _require_positive(dimensions, "dimensions")
    if precomputed:
        per_attribute = OperationCounts(encryptions=2, decryptions=1,
                                        exponentiations=1)
        return (per_attribute * (n_records * dimensions)
                + OperationCounts(exponentiations=dimensions))
    squarings = sm_counts() * (n_records * dimensions)
    return squarings + OperationCounts(exponentiations=dimensions)


def ssed_scan_split_counts(n_records: int,
                           dimensions: int) -> OfflineOnlineCounts:
    """Offline/online split of the precomputed SSED distance scan.

    All ``2*n*m`` encryptions of the squaring pipeline are obfuscator
    exponentiations payable during pool refills; the decryptions and the
    unmasking/negation exponentiations remain query-time work.
    """
    counts = ssed_scan_counts(n_records, dimensions, precomputed=True)
    return OfflineOnlineCounts(
        offline=OperationCounts(encryptions=counts.encryptions),
        online=OperationCounts(decryptions=counts.decryptions,
                               exponentiations=counts.exponentiations),
    )


def sbd_counts(bit_length: int) -> OperationCounts:
    """Secure Bit Decomposition of an ``l``-bit value.

    Per extracted bit: P1 encrypts its mask, P2 decrypts and encrypts the
    parity, P1 flips the parity for odd masks (expected 0.5 extra encryptions
    and exponentiations) and halves the value (2 exponentiations).
    """
    _require_positive(bit_length, "bit_length")
    per_bit = OperationCounts(encryptions=2.5, decryptions=1, exponentiations=2.5)
    return per_bit * bit_length


def smin_counts(bit_length: int) -> OperationCounts:
    """Secure Minimum of two ``l``-bit values (Algorithm 3).

    Per bit: one SM plus the W/Gamma/G/H/Phi/L bookkeeping on P1's side
    (6 exponentiations, 1 encryption), one decryption and one exponentiation
    on P2's side for the permuted L and M' vectors, and one final
    exponentiation by P1 to strip the Gamma mask.  Constant terms: the H_0
    encryption and P2's encryption of alpha.
    """
    _require_positive(bit_length, "bit_length")
    per_bit = (
        sm_counts()
        + OperationCounts(encryptions=1, exponentiations=6)   # W, Gamma, G, H, L
        + OperationCounts(decryptions=1, exponentiations=1)   # P2: decrypt L', M'
        + OperationCounts(exponentiations=1)                  # P1: strip Gamma mask
    )
    constant = OperationCounts(encryptions=2)                 # H_0 and E(alpha)
    return per_bit * bit_length + constant


def sminn_counts(count: int, bit_length: int) -> OperationCounts:
    """Secure Minimum of ``n`` values: ``n - 1`` SMIN invocations."""
    _require_positive(count, "count")
    return smin_counts(bit_length) * max(count - 1, 0)


def sbor_counts() -> OperationCounts:
    """Secure Bit-OR: one SM plus one homomorphic subtraction."""
    return sm_counts() + OperationCounts(exponentiations=1)


# ---------------------------------------------------------------------------
# Query-protocol formulas (Section 4)
# ---------------------------------------------------------------------------

def sknn_basic_counts(n_records: int, dimensions: int, k: int,
                      batched: bool = False,
                      precomputed: bool = False) -> OperationCounts:
    """SkNN_b (Algorithm 5): ``O(n * m + k)`` operations.

    The distance phase dominates: one SSED per record.  C2 additionally
    decrypts the ``n`` distances, and the delivery phase costs one encryption
    and one decryption per returned attribute.

    Args:
        n_records: table size ``n``.
        dimensions: attribute count ``m``.
        k: neighbors returned.
        batched: ``False`` (default) models the paper's textbook protocol
            (used by the paper-scale projections); ``True`` models this
            repository's vectorized implementation, whose distance scan
            hoists the shared query negation (:func:`ssed_scan_counts`).
        precomputed: model the warm-pool pipeline (squaring-specialized
            scan, engine mask tuples); implies the batched scan shape.
    """
    _require_positive(n_records, "n_records")
    _require_positive(dimensions, "dimensions")
    _require_positive(k, "k")
    if precomputed:
        distance_phase = ssed_scan_counts(n_records, dimensions,
                                          precomputed=True)
    elif batched:
        distance_phase = ssed_scan_counts(n_records, dimensions)
    else:
        distance_phase = ssed_counts(dimensions) * n_records
    selection_phase = OperationCounts(decryptions=n_records)
    delivery_phase = OperationCounts(encryptions=k * dimensions,
                                     decryptions=k * dimensions)
    return distance_phase + selection_phase + delivery_phase


def sknn_basic_split_counts(n_records: int, dimensions: int,
                            k: int) -> OfflineOnlineCounts:
    """Offline/online split of a warm-pool SkNN_b query.

    Offline (pool refills): every encryption of the precomputed pipeline —
    ``n*m`` scan mask tuples, ``n*m`` square re-encryptions and ``k*m``
    delivery mask tuples, one obfuscator exponentiation each.  Online: the
    ``n*m`` masked-difference and ``n + k*m`` distance/delivery decryptions,
    plus the ``n*m`` unmasking and ``m`` query-negation exponentiations.
    The sum equals ``sknn_basic_counts(..., precomputed=True)``.
    """
    counts = sknn_basic_counts(n_records, dimensions, k, precomputed=True)
    return OfflineOnlineCounts(
        offline=OperationCounts(encryptions=counts.encryptions),
        online=OperationCounts(decryptions=counts.decryptions,
                               exponentiations=counts.exponentiations),
    )


def sknn_secure_breakdown(n_records: int, dimensions: int, k: int,
                          bit_length: int) -> dict[str, OperationCounts]:
    """Per-phase operation counts of SkNN_m (Algorithm 6).

    Returns a dictionary with one entry per phase so that the SMIN_n share of
    the total (the paper reports 69.7%-75%) can be reproduced, plus the total
    under the key ``"total"``.
    """
    _require_positive(n_records, "n_records")
    _require_positive(dimensions, "dimensions")
    _require_positive(k, "k")
    _require_positive(bit_length, "bit_length")

    distance_phase = ssed_counts(dimensions) * n_records
    sbd_phase = sbd_counts(bit_length) * n_records
    sminn_phase = sminn_counts(n_records, bit_length) * k

    # Per iteration: recompose E(d_min) (l exponentiations), re-expand E(d_i)
    # in iterations 2..k (n*l exponentiations each), randomize the n
    # differences (2 exponentiations each), C2 decrypts n values and encrypts
    # the n indicator bits.
    localisation_per_iteration = OperationCounts(
        encryptions=n_records,
        decryptions=n_records,
        exponentiations=bit_length + 2 * n_records,
    )
    reexpansion = OperationCounts(
        exponentiations=n_records * bit_length
    ) * max(k - 1, 0)
    localisation_phase = localisation_per_iteration * k + reexpansion

    extraction_phase = sm_counts() * (n_records * dimensions * k)
    elimination_phase = sbor_counts() * (n_records * bit_length * max(k - 1, 0))
    delivery_phase = OperationCounts(encryptions=k * dimensions,
                                     decryptions=k * dimensions)

    phases = {
        "ssed": distance_phase,
        "sbd": sbd_phase,
        "sminn": sminn_phase,
        "localisation": localisation_phase,
        "extraction": extraction_phase,
        "elimination": elimination_phase,
        "delivery": delivery_phase,
    }
    total = OperationCounts()
    for counts in phases.values():
        total = total + counts
    phases["total"] = total
    return phases


def sknn_secure_counts(n_records: int, dimensions: int, k: int,
                       bit_length: int) -> OperationCounts:
    """Total operation counts of SkNN_m (Algorithm 6)."""
    return sknn_secure_breakdown(n_records, dimensions, k, bit_length)["total"]


def _require_positive(value: int, name: str) -> None:
    """Validate a positive integer parameter."""
    if not isinstance(value, int) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
