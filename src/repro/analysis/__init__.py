"""Analysis: analytic cost model, runtime calibration, experiment reporting."""

from repro.analysis.calibration import Calibrator, PaillierTimings
from repro.analysis.projections import (
    figure_2a_series,
    figure_2c_series,
    figure_2d_series,
    figure_2f_series,
    figure_3_series,
    sminn_share_series,
)
from repro.analysis.cost_model import (
    OperationCounts,
    sbd_counts,
    sbor_counts,
    sknn_basic_counts,
    sknn_secure_breakdown,
    sknn_secure_counts,
    sm_counts,
    smin_counts,
    sminn_counts,
    ssed_counts,
    ssed_scan_counts,
)
from repro.analysis.reporting import (
    ExperimentSeries,
    ascii_plot,
    format_markdown_table,
    format_table,
)

__all__ = [
    "OperationCounts",
    "sm_counts",
    "ssed_counts",
    "ssed_scan_counts",
    "sbd_counts",
    "smin_counts",
    "sminn_counts",
    "sbor_counts",
    "sknn_basic_counts",
    "sknn_secure_counts",
    "sknn_secure_breakdown",
    "Calibrator",
    "PaillierTimings",
    "ExperimentSeries",
    "format_table",
    "format_markdown_table",
    "ascii_plot",
    "figure_2a_series",
    "figure_2c_series",
    "figure_2d_series",
    "figure_2f_series",
    "figure_3_series",
    "sminn_share_series",
]
