"""Calibrated runtime prediction for paper-scale parameters.

The paper's evaluation runs SkNN_b on up to 10,000 records and SkNN_m for tens
of minutes per query on a C implementation.  A pure-Python re-implementation
cannot rerun every such configuration in a reasonable benchmark budget, so the
benchmark harness combines two sources of numbers:

1. *Measured* runs at reduced scale (small ``n``, small key sizes), which
   validate correctness and the constant factors, and
2. *Projected* runs at the paper's scale, obtained by multiplying the exact
   operation counts of :mod:`repro.analysis.cost_model` by per-operation
   timings measured on this machine at the requested key size.

The projection preserves exactly what the paper's figures are about — how the
cost *scales* with ``n``, ``m``, ``k``, ``l`` and ``K`` — because those curves
are determined by the operation counts, while the per-operation constant only
moves the curves up or down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random

from repro.analysis.cost_model import OperationCounts
from repro.crypto.paillier import PaillierKeyPair, generate_keypair
from repro.exceptions import ConfigurationError

__all__ = ["PaillierTimings", "Calibrator"]


@dataclass(frozen=True)
class PaillierTimings:
    """Measured per-operation wall-clock costs at one key size (seconds)."""

    key_size: int
    encryption_seconds: float
    decryption_seconds: float
    exponentiation_seconds: float

    def predict_seconds(self, counts: OperationCounts) -> float:
        """Predicted runtime for a protocol with the given operation counts."""
        return (
            counts.encryptions * self.encryption_seconds
            + counts.decryptions * self.decryption_seconds
            + counts.exponentiations * self.exponentiation_seconds
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dictionary view for reporting."""
        return {
            "key_size": self.key_size,
            "encryption_seconds": self.encryption_seconds,
            "decryption_seconds": self.decryption_seconds,
            "exponentiation_seconds": self.exponentiation_seconds,
        }


class Calibrator:
    """Measures Paillier per-operation costs and caches them per key size."""

    def __init__(self, samples: int = 20, rng_seed: int = 2014) -> None:
        """Create a calibrator.

        Args:
            samples: number of operations timed per primitive; the median of
                individual timings is robust against scheduler noise.
            rng_seed: seed for the deterministic key generation used during
                calibration (keys do not affect timing materially).
        """
        if samples < 3:
            raise ConfigurationError("samples must be at least 3")
        self.samples = samples
        self.rng_seed = rng_seed
        self._cache: dict[int, PaillierTimings] = {}
        self._keypairs: dict[int, PaillierKeyPair] = {}

    # -- measurement ---------------------------------------------------------------
    def keypair_for(self, key_size: int) -> PaillierKeyPair:
        """A cached key pair of the requested size (reused across calls)."""
        if key_size not in self._keypairs:
            self._keypairs[key_size] = generate_keypair(
                key_size, Random(self.rng_seed + key_size)
            )
        return self._keypairs[key_size]

    def timings_for(self, key_size: int) -> PaillierTimings:
        """Measure (or return cached) per-operation timings at ``key_size`` bits."""
        if key_size in self._cache:
            return self._cache[key_size]

        keypair = self.keypair_for(key_size)
        public_key, private_key = keypair.public_key, keypair.private_key
        rng = Random(self.rng_seed)
        plaintexts = [rng.randrange(1, 2**32) for _ in range(self.samples)]

        encryption_times = []
        ciphertexts = []
        for value in plaintexts:
            started = time.perf_counter()
            ciphertexts.append(public_key.encrypt(value))
            encryption_times.append(time.perf_counter() - started)

        decryption_times = []
        for ciphertext in ciphertexts:
            started = time.perf_counter()
            private_key.decrypt(ciphertext)
            decryption_times.append(time.perf_counter() - started)

        exponentiation_times = []
        for ciphertext in ciphertexts:
            exponent = rng.randrange(1, public_key.n)
            started = time.perf_counter()
            _ = ciphertext * exponent
            exponentiation_times.append(time.perf_counter() - started)

        timings = PaillierTimings(
            key_size=key_size,
            encryption_seconds=_median(encryption_times),
            decryption_seconds=_median(decryption_times),
            exponentiation_seconds=_median(exponentiation_times),
        )
        self._cache[key_size] = timings
        return timings

    # -- prediction ------------------------------------------------------------------
    def predict_seconds(self, counts: OperationCounts, key_size: int) -> float:
        """Project the runtime of a protocol at the given key size."""
        return self.timings_for(key_size).predict_seconds(counts)

    def key_size_slowdown(self, small: int = 512, large: int = 1024) -> float:
        """Measured cost ratio between two key sizes (the paper reports ~7x)."""
        small_timings = self.timings_for(small)
        large_timings = self.timings_for(large)
        small_total = (
            small_timings.encryption_seconds
            + small_timings.decryption_seconds
            + small_timings.exponentiation_seconds
        )
        large_total = (
            large_timings.encryption_seconds
            + large_timings.decryption_seconds
            + large_timings.exponentiation_seconds
        )
        if small_total == 0:
            raise ConfigurationError("calibration produced zero timings")
        return large_total / small_total


def _median(values: list[float]) -> float:
    """Median of a non-empty list of floats."""
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0
