"""Reporting helpers: experiment series, plain-text tables, Markdown export.

The benchmark harness regenerates every figure of the paper as a *data
series* (x values, one or more named y series).  Matplotlib is deliberately
not a dependency — the harness prints aligned text tables (the same rows one
would plot) and can emit Markdown for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["ExperimentSeries", "format_table", "format_markdown_table",
           "ascii_plot", "metrics_table", "trace_timeline"]


@dataclass
class ExperimentSeries:
    """One figure's worth of data: an x axis and one or more named y series.

    Attributes:
        title: figure title, e.g. ``"Figure 2(a): SkNNb, k=5, K=512"``.
        x_label: label of the x axis (e.g. ``"n"``).
        x_values: the x axis values.
        series: mapping from series label (e.g. ``"m=6"``) to y values.
        y_label: label of the y axis (e.g. ``"time (seconds)"``).
    """

    title: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    y_label: str = "time (seconds)"

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Add one named y series (must match the x axis length)."""
        if len(values) != len(self.x_values):
            raise ConfigurationError(
                f"series {label!r} has {len(values)} points, x axis has "
                f"{len(self.x_values)}"
            )
        self.series[label] = list(values)

    def rows(self) -> list[dict[str, float]]:
        """Row-wise view: one dictionary per x value."""
        result = []
        for index, x_value in enumerate(self.x_values):
            row: dict[str, float] = {self.x_label: x_value}
            for label, values in self.series.items():
                row[label] = values[index]
            result.append(row)
        return result

    def to_text(self) -> str:
        """Aligned plain-text rendering (what the bench prints)."""
        header = f"== {self.title} ==\n"
        return header + format_table(self.rows())

    def to_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        header = f"### {self.title}\n\n"
        return header + format_markdown_table(self.rows())


def _format_value(value: object) -> str:
    """Human-friendly formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.6f}"
    return str(value)


def format_table(rows: Iterable[dict[str, object]]) -> str:
    """Render rows (list of dicts) as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no data)\n"
    columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    lines = [
        "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for line in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines) + "\n"


def format_markdown_table(rows: Iterable[dict[str, object]]) -> str:
    """Render rows (list of dicts) as a Markdown table."""
    rows = list(rows)
    if not rows:
        return "(no data)\n"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column, "")) for column in columns)
            + " |"
        )
    return "\n".join(lines) + "\n"


def metrics_table(snapshot: dict[str, dict]) -> str:
    """Render a :meth:`~repro.telemetry.MetricsRegistry.snapshot` as a table.

    One row per (family, label-set) sample; histogram samples show their
    count and mean.  Families with no samples yet are skipped.
    """
    rows: list[dict[str, object]] = []
    for name, family in sorted(snapshot.items()):
        for labels, value in family.get("values", {}).items():
            if isinstance(value, dict):  # histogram child
                rendered = (f"count={value.get('count', 0)} "
                            f"mean={value.get('mean', 0.0):.6f}s")
            else:
                rendered = _format_value(value)
            rows.append({"metric": name, "type": family.get("type", "?"),
                         "labels": labels or "-", "value": rendered})
    return format_table(rows)


def trace_timeline(trace: dict, width: int = 48) -> str:
    """ASCII Gantt rendering of one ``SkNNRunReport.trace`` payload.

    Each span is one line: its bar is positioned on a shared time axis
    spanning the whole trace, so cross-cloud timelines (C1 protocol rounds
    interleaved with C2 handler dispatches) read at a glance.
    """
    spans = trace.get("spans") or []
    if not spans:
        return "(empty trace)\n"
    start = min(span.get("start", 0.0) for span in spans)
    end = max(span.get("start", 0.0) + span.get("duration", 0.0)
              for span in spans)
    total = max(end - start, 1e-9)
    name_width = min(max(len(span.get("name", "")) for span in spans), 36)
    lines = [f"trace {trace.get('trace_id', '?')} "
             f"({len(spans)} spans, {total * 1000:.1f} ms)"]
    for span in sorted(spans, key=lambda item: item.get("start", 0.0)):
        offset = int((span.get("start", 0.0) - start) / total * width)
        length = max(int(span.get("duration", 0.0) / total * width), 1)
        bar = " " * offset + "#" * min(length, width - offset)
        lines.append(
            f"{span.get('party', '?'):>3} "
            f"{span.get('name', ''):<{name_width}.{name_width}} "
            f"|{bar:<{width}}| {span.get('duration', 0.0) * 1000:8.2f} ms")
    return "\n".join(lines) + "\n"


def ascii_plot(series: ExperimentSeries, width: int = 60, height: int = 12) -> str:
    """Very small ASCII line plot, enough to eyeball a figure's shape.

    Each series is drawn with a distinct marker; the y axis is linear and
    shared across series, matching how the paper's figures overlay curves.
    """
    if not series.x_values or not series.series:
        return "(no data)\n"
    markers = "*o+x#@%"
    all_values = [value for values in series.series.values() for value in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(series.x_values), max(series.x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for series_index, (label, values) in enumerate(series.series.items()):
        marker = markers[series_index % len(markers)]
        for x_value, y_value in zip(series.x_values, values):
            column = int((x_value - x_min) / (x_max - x_min) * (width - 1))
            row = int((y_value - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}"
        for i, label in enumerate(series.series)
    )
    lines = [f"{series.title}  [{series.y_label}: {y_min:.3g} .. {y_max:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {series.x_label}: {x_min:g} .. {x_max:g}    {legend}")
    return "\n".join(lines) + "\n"
