"""Secure kNN classification over encrypted data.

The paper points out (Section 2.1.1) that a protocol which finds the exact
k nearest neighbors of an encrypted query "can also be used in other relevant
data mining tasks such as secure clustering, classification, and outlier
detection".  This module implements the most direct of those: a **secure kNN
classifier**.

The training table contains feature columns plus one label column.  The label
column is excluded from the distance computation (exactly as the paper's
Example 1 excludes the diagnosis column ``num`` from the query) but is
returned, still under encryption, with each neighbor; after reconstructing the
k neighbors locally, the query user takes a majority vote over their labels.
Neither cloud learns the features, the labels, the query, or — with the
``"secure"`` mode — which records voted.

Usage::

    from repro.db import heart_disease_table
    from repro.extensions import SecureKNNClassifier

    classifier = SecureKNNClassifier(heart_disease_table(), label_column="num",
                                     key_size=256, mode="basic")
    predicted = classifier.classify([58, 1, 4, 133, 196, 1, 2, 1, 6], k=3)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from random import Random
from typing import Literal, Sequence

from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.db.schema import Schema
from repro.db.table import Record, Table
from repro.exceptions import ConfigurationError, QueryError

__all__ = ["ClassificationResult", "SecureKNNClassifier"]

Mode = Literal["basic", "secure"]


@dataclass
class ClassificationResult:
    """Outcome of one secure classification query.

    Attributes:
        label: the majority label among the k nearest neighbors.
        votes: label -> number of neighbors carrying that label.
        neighbors: the k neighbor records (feature values + label, in the
            classifier's internal feature-first column order).
    """

    label: int
    votes: dict[int, int]
    neighbors: list[tuple[int, ...]]

    @property
    def confidence(self) -> float:
        """Fraction of neighbors that voted for the winning label."""
        total = sum(self.votes.values())
        return self.votes[self.label] / total if total else 0.0


class SecureKNNClassifier:
    """kNN classification where the training data stays encrypted in the cloud."""

    def __init__(self, table: Table, label_column: str, key_size: int = 256,
                 mode: Mode = "basic", rng: Random | None = None,
                 distance_bits: int | None = None) -> None:
        """Create (and outsource) a secure kNN classifier.

        Args:
            table: training data; one column holds the class label.
            label_column: name of the label column.
            key_size: Paillier key size in bits.
            mode: ``"basic"`` (SkNN_b — faster, leaks access patterns) or
                ``"secure"`` (SkNN_m — hides access patterns).
            rng: optional deterministic randomness source (tests only).
            distance_bits: override for the distance-domain parameter ``l``
                (defaults to the value derived from the feature columns).
        """
        if mode not in ("basic", "secure"):
            raise ConfigurationError(f"unknown classifier mode {mode!r}")
        if label_column not in table.schema.names:
            raise ConfigurationError(f"unknown label column {label_column!r}")
        if table.dimensions < 2:
            raise ConfigurationError(
                "classification needs at least one feature column and a label"
            )
        self.mode = mode
        self.label_column = label_column
        self._reordered = _move_label_last(table, label_column)
        self.feature_count = self._reordered.dimensions - 1

        feature_schema = Schema(self._reordered.schema.attributes[:-1])
        self.distance_bits = (distance_bits if distance_bits is not None
                              else feature_schema.distance_bit_length())

        owner = DataOwner(self._reordered, key_size=key_size, rng=rng)
        self._cloud: FederatedCloud = FederatedCloud.deploy(owner.keypair, rng=rng)
        self._cloud.c1.host_database(owner.encrypt_database())
        self._client = QueryClient(owner.public_key, self.feature_count, rng=rng)

        if mode == "basic":
            self._protocol = SkNNBasic(self._cloud,
                                       feature_dimensions=self.feature_count)
        else:
            self._protocol = SkNNSecure(self._cloud,
                                        distance_bits=self.distance_bits,
                                        feature_dimensions=self.feature_count)

    # -- queries ------------------------------------------------------------------
    def classify(self, features: Sequence[int], k: int) -> int:
        """Return the majority label among the k nearest training records."""
        return self.classify_with_details(features, k).label

    def classify_with_details(self, features: Sequence[int],
                              k: int) -> ClassificationResult:
        """Classify and also return the vote counts and neighbor records."""
        if len(features) != self.feature_count:
            raise QueryError(
                f"query has {len(features)} features, classifier expects "
                f"{self.feature_count}"
            )
        encrypted_query = self._client.encrypt_query(list(features))
        shares = self._protocol.run(encrypted_query, k)
        neighbors = self._client.reconstruct(shares)
        labels = [record[-1] for record in neighbors]
        votes = Counter(labels)
        # Majority vote; ties broken toward the label of the closest neighbor
        # (neighbors are returned in non-decreasing distance order).
        best_count = max(votes.values())
        winning = next(label for label in labels if votes[label] == best_count)
        return ClassificationResult(label=winning, votes=dict(votes),
                                    neighbors=neighbors)


def _move_label_last(table: Table, label_column: str) -> Table:
    """Return a copy of ``table`` with the label column moved to the end.

    The SkNN protocols compute distances over the *leading* attributes, so the
    classifier internally reorders columns to (features..., label).
    """
    label_index = table.schema.index_of(label_column)
    attributes = list(table.schema.attributes)
    reordered_attributes = (attributes[:label_index] + attributes[label_index + 1:]
                            + [attributes[label_index]])
    reordered_schema = Schema(tuple(reordered_attributes))
    reordered = Table(reordered_schema)
    for record in table:
        values = list(record.values)
        reordered_values = (values[:label_index] + values[label_index + 1:]
                            + [values[label_index]])
        reordered.insert(Record(record.record_id, tuple(reordered_values)))
    return reordered
