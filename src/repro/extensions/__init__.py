"""Extensions built on the SkNN protocols (applications the paper motivates).

Currently: :class:`SecureKNNClassifier` — kNN classification over an encrypted
training table, the first of the data-mining applications (classification,
clustering, outlier detection) the paper cites as direct consumers of an exact
secure-kNN primitive.
"""

from repro.extensions.classifier import ClassificationResult, SecureKNNClassifier

__all__ = ["SecureKNNClassifier", "ClassificationResult"]
