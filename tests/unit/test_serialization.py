"""Unit tests for key/ciphertext serialization."""

from __future__ import annotations

import pytest

from repro.crypto import serialization as ser
from repro.exceptions import SerializationError


class TestPublicKeySerialization:
    def test_round_trip(self, public_key):
        data = ser.public_key_to_dict(public_key)
        restored = ser.public_key_from_dict(data)
        assert restored == public_key
        assert restored.g == public_key.g

    def test_json_round_trip(self, public_key):
        text = ser.dumps(ser.public_key_to_dict(public_key))
        restored = ser.public_key_from_dict(ser.loads(text))
        assert restored.n == public_key.n

    def test_rejects_wrong_kind(self, public_key):
        data = ser.public_key_to_dict(public_key)
        data["kind"] = "something-else"
        with pytest.raises(SerializationError):
            ser.public_key_from_dict(data)

    def test_rejects_wrong_version(self, public_key):
        data = ser.public_key_to_dict(public_key)
        data["format"] = 999
        with pytest.raises(SerializationError):
            ser.public_key_from_dict(data)


class TestPrivateKeySerialization:
    def test_round_trip_decrypts(self, small_keypair):
        data = ser.private_key_to_dict(small_keypair.private_key)
        restored = ser.private_key_from_dict(data)
        cipher = small_keypair.public_key.encrypt(4242)
        assert restored.decrypt(cipher) == 4242

    def test_keypair_round_trip(self, small_keypair):
        data = ser.keypair_to_dict(small_keypair)
        restored = ser.keypair_from_dict(data)
        cipher = restored.public_key.encrypt(-17)
        assert restored.private_key.decrypt(cipher) == -17

    def test_rejects_non_dict(self):
        with pytest.raises(SerializationError):
            ser.private_key_from_dict("nope")  # type: ignore[arg-type]


class TestCiphertextSerialization:
    def test_round_trip(self, public_key, private_key):
        cipher = public_key.encrypt(987654321)
        data = ser.ciphertext_to_dict(cipher)
        restored = ser.ciphertext_from_dict(data, public_key)
        assert private_key.decrypt(restored) == 987654321

    def test_json_round_trip(self, public_key, private_key):
        cipher = public_key.encrypt(13)
        text = ser.dumps(ser.ciphertext_to_dict(cipher))
        restored = ser.ciphertext_from_dict(ser.loads(text), public_key)
        assert private_key.decrypt(restored) == 13

    def test_rejects_wrong_kind(self, public_key):
        with pytest.raises(SerializationError):
            ser.ciphertext_from_dict({"kind": "bogus", "format": 1, "value": "ff"},
                                     public_key)


class TestJsonHelpers:
    def test_loads_rejects_invalid_json(self):
        with pytest.raises(SerializationError):
            ser.loads("{not json")

    def test_loads_rejects_non_object(self):
        with pytest.raises(SerializationError):
            ser.loads("[1, 2, 3]")

    def test_hex_round_trip_through_private_functions(self):
        assert ser._hex_to_int(ser._int_to_hex(2**200 + 5)) == 2**200 + 5

    def test_negative_integers_rejected(self):
        with pytest.raises(SerializationError):
            ser._int_to_hex(-1)

    def test_invalid_hex_rejected(self):
        with pytest.raises(SerializationError):
            ser._hex_to_int("zz")
