"""Unit tests for the reporting helpers (tables, series, ASCII plots)."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    ExperimentSeries,
    ascii_plot,
    format_markdown_table,
    format_table,
)
from repro.exceptions import ConfigurationError


class TestExperimentSeries:
    def make_series(self) -> ExperimentSeries:
        series = ExperimentSeries(title="Figure X", x_label="n",
                                  x_values=[1, 2, 3])
        series.add_series("m=6", [10.0, 20.0, 30.0])
        series.add_series("m=12", [15.0, 30.0, 45.0])
        return series

    def test_add_series_validates_length(self):
        series = ExperimentSeries(title="t", x_label="n", x_values=[1, 2])
        with pytest.raises(ConfigurationError):
            series.add_series("bad", [1.0])

    def test_rows_layout(self):
        rows = self.make_series().rows()
        assert rows[0] == {"n": 1, "m=6": 10.0, "m=12": 15.0}
        assert len(rows) == 3

    def test_to_text_contains_title_and_values(self):
        text = self.make_series().to_text()
        assert "Figure X" in text
        assert "m=6" in text
        assert "30" in text

    def test_to_markdown_is_pipe_table(self):
        markdown = self.make_series().to_markdown()
        assert markdown.startswith("### Figure X")
        assert "| n | m=6 | m=12 |" in markdown


class TestFormatters:
    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 100, "b": 0.0001}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_large_and_small_floats(self):
        text = format_table([{"v": 123456.789}, {"v": 0.000123}])
        assert "123,456.8" in text
        assert "0.000123" in text

    def test_format_markdown_table_empty(self):
        assert "(no data)" in format_markdown_table([])

    def test_format_markdown_table_rows(self):
        markdown = format_markdown_table([{"x": 1, "y": True}])
        assert "| x | y |" in markdown
        assert "| 1 | True |" in markdown


class TestAsciiPlot:
    def test_empty_series(self):
        series = ExperimentSeries(title="t", x_label="n")
        assert "(no data)" in ascii_plot(series)

    def test_plot_contains_markers_and_legend(self):
        series = ExperimentSeries(title="Fig", x_label="n", x_values=[0, 1, 2, 3])
        series.add_series("a", [0.0, 1.0, 2.0, 3.0])
        series.add_series("b", [3.0, 2.0, 1.0, 0.0])
        plot = ascii_plot(series, width=20, height=6)
        assert "*" in plot
        assert "o" in plot
        assert "a" in plot and "b" in plot

    def test_plot_with_constant_series(self):
        series = ExperimentSeries(title="Fig", x_label="n", x_values=[1, 1])
        series.add_series("a", [5.0, 5.0])
        plot = ascii_plot(series)
        assert "Fig" in plot
