"""Unit tests for the shared two-party protocol machinery (base class helpers)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError, ReproError
from repro.protocols.base import ProtocolResult, TwoPartyProtocol


class _EchoProtocol(TwoPartyProtocol):
    """Minimal protocol used to exercise the base-class instrumentation."""

    name = "ECHO"

    def run(self, value: int):
        encrypted = self.p1.encrypt(value)
        self.p1.send(encrypted, tag="ECHO.value")
        received = self.p2.receive(expected_tag="ECHO.value")
        return self.p2.decrypt_signed(received)


class TestCiphertextHelpers:
    def test_sub_is_homomorphic_subtraction(self, setting, private_key):
        protocol = TwoPartyProtocol(setting)
        result = protocol.sub(setting.public_key.encrypt(30),
                              setting.public_key.encrypt(12))
        assert private_key.decrypt(result) == 18

    def test_scale_multiplies_by_plaintext(self, setting, private_key):
        protocol = TwoPartyProtocol(setting)
        result = protocol.scale(setting.public_key.encrypt(7), 6)
        assert private_key.decrypt(result) == 42

    def test_scale_reduces_scalar_mod_n(self, setting, private_key):
        protocol = TwoPartyProtocol(setting)
        n = setting.public_key.n
        result = protocol.scale(setting.public_key.encrypt(7), n + 2)
        assert private_key.decrypt(result) == 14

    def test_add_plain_adds_constant(self, setting, private_key):
        protocol = TwoPartyProtocol(setting)
        result = protocol.add_plain(setting.public_key.encrypt(100), 23)
        assert private_key.decrypt(result) == 123

    def test_add_plain_handles_negative_constants_mod_n(self, setting, private_key):
        protocol = TwoPartyProtocol(setting)
        result = protocol.add_plain(setting.public_key.encrypt(100), -1)
        assert private_key.decrypt_raw_residue(result) == 99

    def test_encrypt_constant_is_fresh(self, setting):
        protocol = TwoPartyProtocol(setting)
        assert protocol.encrypt_constant(5).value != protocol.encrypt_constant(5).value

    def test_require_raises_protocol_error_with_name(self, setting):
        protocol = TwoPartyProtocol(setting)
        with pytest.raises(ProtocolError, match="two-party-protocol"):
            protocol.require(False, "something went wrong")
        protocol.require(True, "never raised")

    def test_run_is_abstract(self, setting):
        with pytest.raises(NotImplementedError):
            TwoPartyProtocol(setting).run()


class TestInstrumentation:
    def test_instrumented_run_returns_output_and_stats(self, setting):
        protocol = _EchoProtocol(setting)
        result = protocol.run_instrumented(-41)
        assert isinstance(result, ProtocolResult)
        assert result.output == -41
        assert result.stats.protocol == "ECHO"
        assert result.stats.total_encryptions == 1
        assert result.stats.total_decryptions == 1
        assert result.stats.messages == 1
        assert result.stats.wall_time_seconds > 0

    def test_instrumentation_is_incremental(self, setting):
        """A second run measures only its own operations, not the first run's."""
        protocol = _EchoProtocol(setting)
        protocol.run_instrumented(1)
        second = protocol.run_instrumented(2)
        assert second.stats.total_encryptions == 1
        assert second.stats.ciphertexts_exchanged == 1


class TestExceptionHierarchy:
    def test_protocol_error_is_repro_error(self):
        assert issubclass(ProtocolError, ReproError)

    def test_all_library_exceptions_share_the_base(self):
        from repro import exceptions as exc
        for name in ("CryptoError", "ChannelError", "DatabaseError", "QueryError",
                     "SchemaError", "SerializationError", "ConfigurationError",
                     "EncryptionError", "DecryptionError", "KeyMismatchError",
                     "KeyGenerationError", "DomainError", "ProtocolAbortError"):
            assert issubclass(getattr(exc, name), exc.ReproError)
