"""Tests for the pluggable bigint backend and the fixed-base window tables."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto.backend import (
    BACKEND_ENV_VAR,
    FixedBaseExp,
    Gmpy2Backend,
    PythonBackend,
    available_backends,
    backend_from_env,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.exceptions import ConfigurationError, CryptoError


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    yield
    set_backend(None)


class TestBackendSelection:
    def test_python_backend_always_available(self):
        assert "python" in available_backends()

    def test_resolve_python(self):
        assert resolve_backend("python").name == "python"

    def test_resolve_auto_returns_working_backend(self):
        backend = resolve_backend("auto")
        assert backend.name in ("python", "gmpy2")

    def test_resolve_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("mpmath")

    def test_resolve_gmpy2_errors_when_missing(self):
        if "gmpy2" in available_backends():
            assert resolve_backend("gmpy2").name == "gmpy2"
        else:
            with pytest.raises(ConfigurationError):
                resolve_backend("gmpy2")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert backend_from_env().name == "python"

    def test_set_backend_by_name_and_reset(self):
        assert set_backend("python").name == "python"
        assert get_backend().name == "python"
        set_backend(None)  # re-resolve lazily from the environment
        assert get_backend().name in ("python", "gmpy2")

    def test_set_backend_instance(self):
        backend = PythonBackend()
        assert set_backend(backend) is backend


class TestPythonBackendPrimitives:
    def test_powmod_matches_builtin(self):
        backend = PythonBackend()
        assert backend.powmod(7, 130, 1009) == pow(7, 130, 1009)

    def test_mulmod(self):
        backend = PythonBackend()
        assert backend.mulmod(123456, 654321, 997) == (123456 * 654321) % 997

    def test_invert_roundtrip(self):
        backend = PythonBackend()
        inverse = backend.invert(1234, 10007)
        assert (1234 * inverse) % 10007 == 1

    def test_invert_non_invertible_raises(self):
        backend = PythonBackend()
        with pytest.raises(CryptoError):
            backend.invert(6, 9)


@pytest.mark.skipif("gmpy2" not in available_backends(),
                    reason="gmpy2 not importable")
class TestGmpy2BackendPrimitives:
    def test_agrees_with_python_backend(self):
        gmp = Gmpy2Backend()
        py = PythonBackend()
        assert gmp.powmod(7, 130, 1009) == py.powmod(7, 130, 1009)
        assert gmp.mulmod(12345, 67890, 991) == py.mulmod(12345, 67890, 991)
        assert gmp.invert(1234, 10007) == py.invert(1234, 10007)

    def test_invert_non_invertible_raises(self):
        with pytest.raises(CryptoError):
            Gmpy2Backend().invert(6, 9)


class TestFixedBaseExp:
    def test_matches_pow_for_random_exponents(self):
        rng = Random(5)
        modulus = 0xFFFF_FFFB * 0xFFFF_FFEF
        base = rng.randrange(2, modulus)
        comb = FixedBaseExp(base, modulus, max_exponent_bits=64, window=4)
        for _ in range(50):
            exponent = rng.randrange(1 << 64)
            assert comb.pow(exponent) == pow(base, exponent, modulus)

    def test_edge_exponents(self):
        comb = FixedBaseExp(3, 1_000_003, max_exponent_bits=20)
        assert comb.pow(0) == 1
        assert comb.pow(1) == 3
        assert comb.pow((1 << 20) - 1) == pow(3, (1 << 20) - 1, 1_000_003)

    def test_oversized_exponent_rejected(self):
        comb = FixedBaseExp(3, 1_000_003, max_exponent_bits=8)
        with pytest.raises(CryptoError):
            comb.pow(1 << 9)

    def test_negative_exponent_rejected(self):
        comb = FixedBaseExp(3, 1_000_003, max_exponent_bits=8)
        with pytest.raises(CryptoError):
            comb.pow(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CryptoError):
            FixedBaseExp(3, 101, max_exponent_bits=0)
        with pytest.raises(CryptoError):
            FixedBaseExp(3, 101, max_exponent_bits=8, window=0)


class TestScalarMulRegression:
    def test_negative_scalar_reduces_into_zn(self, public_key, private_key):
        """Regression for the identical-branch bug in raw_scalar_mul: a
        negative scalar must follow the N - x convention, not reach pow()."""
        cipher = public_key.encrypt(21)
        assert private_key.decrypt(cipher * -3) == -63
        raw = public_key.raw_scalar_mul(cipher.value, -3)
        assert private_key.decrypt(type(cipher)(public_key, raw)) == -63

    def test_negation_via_inverse_matches_textbook(self, public_key,
                                                   private_key):
        cipher = public_key.encrypt(1234)
        via_inverse = public_key.raw_negate(cipher.value)
        via_pow = pow(cipher.value, public_key.n - 1, public_key.nsquare)
        decrypt = private_key.decrypt
        assert decrypt(type(cipher)(public_key, via_inverse)) == -1234
        assert decrypt(type(cipher)(public_key, via_pow)) == -1234

    def test_raw_negate_counts_as_exponentiation(self, public_key):
        cipher = public_key.encrypt(5)
        before = public_key.counter.exponentiations
        public_key.raw_negate(cipher.value)
        assert public_key.counter.exponentiations == before + 1
